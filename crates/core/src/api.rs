//! The uniform proxy APIs.
//!
//! These traits are MobiVine's consistent interface surface (the
//! "Consistent APIs" box of the paper's Fig. 4): one method shape per
//! capability, identical across Android, S60 and WebView bindings.
//! Platform-mandated attributes travel through
//! [`set_property`](ProxyBase::set_property) instead of the method
//! signatures.

use std::sync::Arc;

use crate::error::ProxyError;
use crate::property::PropertyValue;
use crate::types::{
    CalendarRecord, CallProgress, ContactRecord, DeliveryListener, HttpResult, Location,
    SharedProximityListener,
};

/// Behaviour common to every proxy: the generic property mechanism.
pub trait ProxyBase: Send + Sync {
    /// `setProperty(key, value)` — platform-specific configuration,
    /// validated against the proxy's binding-plane descriptor.
    ///
    /// # Errors
    ///
    /// See [`crate::property::PropertyBag::set`].
    fn set_property(&self, key: &str, value: PropertyValue) -> Result<(), ProxyError>;
}

/// The uniform Location proxy (paper Fig. 8/9).
pub trait LocationProxy: ProxyBase {
    /// `addProximityAlert(latitude, longitude, altitude, radius, timer,
    /// proximityListener)` — uniform semantics on every platform:
    /// repeated **enter and exit** events until `timer_s` seconds of
    /// registration lifetime elapse (negative = unlimited).
    ///
    /// # Errors
    ///
    /// Uniform [`ProxyError`]s; platform exceptions are wrapped with
    /// provenance.
    fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        altitude: f64,
        radius: f64,
        timer_s: i64,
        listener: SharedProximityListener,
    ) -> Result<(), ProxyError>;

    /// Removes a previously registered listener (by identity). Returns
    /// `true` if it was registered.
    ///
    /// # Errors
    ///
    /// Returns a [`ProxyError`] if the platform rejects the removal.
    fn remove_proximity_alert(
        &self,
        listener: &SharedProximityListener,
    ) -> Result<bool, ProxyError>;

    /// `getLocation()` — a fresh fix in the common [`Location`]
    /// structure.
    ///
    /// # Errors
    ///
    /// [`ProxyError`] with kind `Unavailable` when no fix is possible.
    fn get_location(&self) -> Result<Location, ProxyError>;

    /// `getLocationWithPower()` — the bridge-bound multi-read: a fresh
    /// fix plus the cumulative GPS energy drawn (millijoules). On the
    /// WebView platform this is serviced by the batched wire path (one
    /// bridge crossing for both reads); the default reports the fix
    /// with a zero power figure for platforms without a power ledger
    /// behind the proxy.
    ///
    /// # Errors
    ///
    /// Same as [`LocationProxy::get_location`].
    fn get_location_with_power(&self) -> Result<(Location, f64), ProxyError> {
        Ok((self.get_location()?, 0.0))
    }
}

/// The uniform SMS proxy.
pub trait SmsProxy: ProxyBase {
    /// `sendTextMessage(destination, text, deliveryListener)` — returns
    /// a message id; the optional listener fires once with the final
    /// delivery outcome.
    ///
    /// # Errors
    ///
    /// Uniform [`ProxyError`]s (security, illegal argument, I/O).
    fn send_text_message(
        &self,
        destination: &str,
        text: &str,
        delivery_listener: Option<Arc<dyn DeliveryListener>>,
    ) -> Result<u64, ProxyError>;
}

/// The uniform Call proxy. Not available on S60 (the registry returns
/// [`crate::error::ProxyErrorKind::UnsupportedOnPlatform`]).
pub trait CallProxy: ProxyBase {
    /// `makeACall(number)` — starts dialing, returns a call id.
    ///
    /// # Errors
    ///
    /// Uniform [`ProxyError`]s.
    fn make_a_call(&self, number: &str) -> Result<u64, ProxyError>;

    /// Current progress of a placed call.
    ///
    /// # Errors
    ///
    /// `IllegalArgument` for unknown call ids.
    fn call_progress(&self, call_id: u64) -> Result<CallProgress, ProxyError>;

    /// `endCall(callId)`.
    ///
    /// # Errors
    ///
    /// `IllegalArgument` for unknown or already-ended calls.
    fn end_call(&self, call_id: u64) -> Result<(), ProxyError>;
}

/// The uniform HTTP proxy.
pub trait HttpProxy: ProxyBase {
    /// `request(method, url, body)` — synchronous round trip in the
    /// common [`HttpResult`] structure. Transport failures are errors;
    /// HTTP error statuses are successful results.
    ///
    /// # Errors
    ///
    /// Uniform [`ProxyError`]s (`Io` for transport failures).
    fn request(&self, method: &str, url: &str, body: &[u8]) -> Result<HttpResult, ProxyError>;
}

/// The uniform Contacts proxy (paper future work, §7).
pub trait ContactsProxy: ProxyBase {
    /// `findContacts(query)` — case-insensitive name search.
    ///
    /// # Errors
    ///
    /// Uniform [`ProxyError`]s.
    fn find_contacts(&self, query: &str) -> Result<Vec<ContactRecord>, ProxyError>;
}

/// The uniform Calendar proxy (paper future work, §7).
pub trait CalendarProxy: ProxyBase {
    /// `entriesBetween(from, to)` — entries overlapping the interval.
    ///
    /// # Errors
    ///
    /// Uniform [`ProxyError`]s.
    fn entries_between(&self, from_ms: u64, to_ms: u64) -> Result<Vec<CalendarRecord>, ProxyError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The traits must stay object-safe: applications hold proxies as
    // `Arc<dyn LocationProxy>` etc. so the same business logic compiles
    // against every platform binding (the portability claim).
    #[test]
    fn traits_are_object_safe() {
        fn assert_obj<T: ?Sized>() {}
        assert_obj::<dyn LocationProxy>();
        assert_obj::<dyn SmsProxy>();
        assert_obj::<dyn CallProxy>();
        assert_obj::<dyn HttpProxy>();
        assert_obj::<dyn ContactsProxy>();
        assert_obj::<dyn CalendarProxy>();
    }
}
