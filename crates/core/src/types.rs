//! Platform-neutral data types.
//!
//! "Now there is a common definition of callback parameter for receiving
//! alert notifications … we have defined common 'ProximityListener' and
//! 'Location' structures for both Android and S60 platforms" (paper
//! §3.1/§4.1). These are those common structures: whichever platform a
//! proxy binds to, applications see exactly these types.

use std::fmt;
use std::sync::Arc;

/// Angle unit for location output — the proxy-enrichment example of
/// §3.3 ("proxy for fetching location information can be made to offer
/// output in various formats - radians, degrees, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AngleUnit {
    /// Degrees (the default).
    #[default]
    Degrees,
    /// Radians.
    Radians,
}

/// The common location structure.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Location {
    /// Latitude, degrees.
    pub latitude: f64,
    /// Longitude, degrees.
    pub longitude: f64,
    /// Altitude, metres.
    pub altitude: f64,
    /// Horizontal accuracy (1-sigma), metres.
    pub accuracy_m: f64,
    /// Fix time, virtual ms.
    pub timestamp_ms: u64,
    /// Ground speed, m/s.
    pub speed_mps: f64,
    /// Course over ground, degrees from north.
    pub course_deg: f64,
}

impl Location {
    /// Returns a copy with latitude/longitude expressed in `unit`
    /// (enrichment helper; the canonical representation stays degrees).
    pub fn in_unit(&self, unit: AngleUnit) -> (f64, f64) {
        match unit {
            AngleUnit::Degrees => (self.latitude, self.longitude),
            AngleUnit::Radians => (self.latitude.to_radians(), self.longitude.to_radians()),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.6}, {:.6}) ±{:.0}m @t={}ms",
            self.latitude, self.longitude, self.accuracy_m, self.timestamp_ms
        )
    }
}

/// A proximity alert delivered through the common
/// [`ProximityListener`]. Field-for-field the paper's uniform callback:
/// `proximityEvent(refLatitude, refLongitude, refAltitude,
/// currentLocation, entering)` (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityEvent {
    /// Registered region center latitude.
    pub ref_latitude: f64,
    /// Registered region center longitude.
    pub ref_longitude: f64,
    /// Registered region center altitude.
    pub ref_altitude: f64,
    /// The device's location when the boundary was crossed.
    pub current_location: Location,
    /// `true` on entering the region, `false` on exiting.
    pub entering: bool,
}

/// The common proximity callback.
pub trait ProximityListener: Send + Sync {
    /// Invoked on every enter/exit boundary crossing, uniformly across
    /// platforms (the S60 binding emulates exits and repetition; see
    /// [`crate::s60`]).
    fn proximity_event(&self, event: &ProximityEvent);
}

/// Blanket adapter so plain closures can serve as proximity listeners.
impl<F> ProximityListener for F
where
    F: Fn(&ProximityEvent) + Send + Sync,
{
    fn proximity_event(&self, event: &ProximityEvent) {
        self(event);
    }
}

/// Delivery outcome for a sent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryOutcome {
    /// The message reached the recipient.
    Delivered,
    /// The network could not deliver it.
    Failed,
}

/// The common SMS delivery-report callback.
pub trait DeliveryListener: Send + Sync {
    /// Invoked once with the final outcome of a sent message.
    fn delivery_event(&self, message_id: u64, outcome: DeliveryOutcome);
}

impl<F> DeliveryListener for F
where
    F: Fn(u64, DeliveryOutcome) + Send + Sync,
{
    fn delivery_event(&self, message_id: u64, outcome: DeliveryOutcome) {
        self(message_id, outcome);
    }
}

/// Common call progress states (a de-fragmented subset every platform
/// can report).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallProgress {
    /// Call setup or ringing.
    Connecting,
    /// Two-way audio established.
    Connected,
    /// Terminated (hang-up, busy, unreachable, no answer).
    Ended,
}

/// The common HTTP response structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResult {
    /// HTTP status code.
    pub status: u16,
    /// Response headers.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResult {
    /// Body as (lossy) UTF-8 text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the status is 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A contact record (future-work Contacts proxy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContactRecord {
    /// Display name.
    pub name: String,
    /// Phone numbers, primary first.
    pub numbers: Vec<String>,
}

/// A calendar record (future-work Calendar proxy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalendarRecord {
    /// Entry title.
    pub title: String,
    /// Start, virtual ms.
    pub start_ms: u64,
    /// End, virtual ms.
    pub end_ms: u64,
    /// Location text.
    pub location: String,
}

/// Shared handle type for proximity listeners (registration and removal
/// key off pointer identity, as in the S60 native API).
pub type SharedProximityListener = Arc<dyn ProximityListener>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_unit_conversion() {
        let loc = Location {
            latitude: 180.0,
            longitude: 90.0,
            ..Location::default()
        };
        let (lat_rad, lon_rad) = loc.in_unit(AngleUnit::Radians);
        assert!((lat_rad - std::f64::consts::PI).abs() < 1e-12);
        assert!((lon_rad - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert_eq!(loc.in_unit(AngleUnit::Degrees), (180.0, 90.0));
    }

    #[test]
    fn closures_are_proximity_listeners() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let hit = Arc::new(AtomicBool::new(false));
        let h = Arc::clone(&hit);
        let listener: SharedProximityListener = Arc::new(move |_e: &ProximityEvent| {
            h.store(true, Ordering::SeqCst);
        });
        listener.proximity_event(&ProximityEvent {
            ref_latitude: 0.0,
            ref_longitude: 0.0,
            ref_altitude: 0.0,
            current_location: Location::default(),
            entering: true,
        });
        assert!(hit.load(Ordering::SeqCst));
    }

    #[test]
    fn http_result_helpers() {
        let ok = HttpResult {
            status: 204,
            headers: vec![],
            body: b"done".to_vec(),
        };
        assert!(ok.is_success());
        assert_eq!(ok.body_text(), "done");
        let err = HttpResult {
            status: 404,
            headers: vec![],
            body: vec![],
        };
        assert!(!err.is_success());
    }

    #[test]
    fn location_display_is_compact() {
        let loc = Location {
            latitude: 28.5355,
            longitude: 77.391,
            accuracy_m: 5.0,
            timestamp_ms: 1200,
            ..Location::default()
        };
        let s = loc.to_string();
        assert!(s.contains("28.5355"));
        assert!(s.contains("t=1200ms"));
    }
}
