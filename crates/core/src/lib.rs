#![warn(missing_docs)]
//! # MobiVine — a middleware layer that de-fragments mobile platform interfaces
//!
//! Reproduction of *MobiVine: A Middleware Layer to Handle Fragmentation
//! of Platform Interfaces for Mobile Applications* (IBM Research Report
//! RI 09009 / MIDDLEWARE 2009).
//!
//! Mobile platforms expose the same capabilities — location, SMS, calls,
//! HTTP — through interfaces that differ in name, parameter order and
//! types, callback style, exception sets and platform-mandated
//! attributes. MobiVine absorbs that heterogeneity behind **M-Proxies**:
//! uniform, semantically structured interfaces with per-platform binding
//! modules.
//!
//! This crate provides:
//!
//! - the uniform proxy APIs ([`api::LocationProxy`], [`api::SmsProxy`],
//!   [`api::CallProxy`], [`api::HttpProxy`], plus the future-work
//!   [`api::ContactsProxy`] and [`api::CalendarProxy`]),
//! - the platform-neutral data types ([`types::Location`],
//!   [`types::ProximityEvent`], …) and error model ([`error::ProxyError`]
//!   with stable error codes for the JavaScript bridge),
//! - the generic `setProperty` mechanism ([`property::PropertyBag`]),
//!   validated against the proxy's binding-plane descriptor,
//! - binding modules for three platforms ([`android`], [`s60`],
//!   [`webview`]) — each absorbing its platform's quirks exactly as §4.1
//!   describes (Intent/IntentReceiver adaptation on Android, single-shot
//!   → repeated-alert emulation on S60, the wrapper/notification-table/
//!   polling pipeline on WebView),
//! - proxy enrichment decorators ([`enrich`]: unit conversion, call
//!   retries, policy gating — §3.3),
//! - a [`resilience`] layer (retry policies with simulated-clock
//!   backoff, per-proxy circuit breakers, location fallback chains —
//!   applied uniformly via [`registry::Mobivine::with_resilience`]),
//! - a [`cache`] layer (read-through result caching with single-flight
//!   coalescing and stamp-based invalidation for the idempotent reads —
//!   [`registry::Mobivine::with_cache`]),
//! - a [`journal`] layer (write-ahead intent journaling with
//!   fsync-barrier simulation, idempotency keys and torn-tail-safe
//!   crash recovery for the mutating paths —
//!   [`registry::Mobivine::with_journal`]), and
//! - a [`registry::Mobivine`] runtime facade constructing proxies per
//!   platform from the standard descriptor catalog.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use mobivine::registry::Mobivine;
//! use mobivine::api::LocationProxy;
//! use mobivine::property::PropertyValue;
//! use mobivine_android::{AndroidPlatform, SdkVersion};
//! use mobivine_device::Device;
//!
//! let device = Device::builder().build();
//! let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
//! let runtime = Mobivine::for_android(platform.new_context());
//! let location = runtime.proxy::<dyn LocationProxy>()?;
//! location.set_property("provider", PropertyValue::str("gps"))?;
//! let fix = location.get_location()?;
//! assert!(fix.timestamp_ms == 0);
//! # Ok::<(), mobivine::error::ProxyError>(())
//! ```

pub mod android;
pub mod api;
pub mod cache;
pub mod enrich;
pub mod error;
pub mod journal;
pub mod overload;
pub mod property;
pub mod registry;
pub mod resilience;
pub mod s60;
pub mod shard;
pub mod telemetry;
pub mod types;
pub mod webview;

pub use api::{CallProxy, HttpProxy, LocationProxy, SmsProxy};
pub use cache::{CacheMetrics, CachePolicy, CacheSnapshot};
pub use error::{ProxyError, ProxyErrorKind};
pub use journal::{
    current_idempotency_key, with_idempotency_key, CheckpointCell, IdempotencyKey, Journal,
    JournalMetrics, JournalPolicy, JournalSnapshot, Lsn,
};
pub use overload::{
    current_deadline, with_deadline, AdmissionController, Bulkhead, Deadline, DegradeTier,
    OverloadMetrics, OverloadPolicy, OverloadSnapshot,
};
pub use registry::{Mobivine, MobivineBuilder, ProxyApi, ProxyKind};
pub use resilience::{
    CircuitBreaker, CircuitState, ResilienceMetrics, ResiliencePolicy, ResilienceSnapshot,
};
pub use shard::ShardedRegistry;
pub use telemetry::TelemetryRuntime;
pub use types::{Location, ProximityEvent, ProximityListener};
