//! `javax.microedition.io`-style connections.
//!
//! The paper's S60 HTTP proxy binds to
//! `javax.microedition.io.Connector` (§4.1). The J2ME flavour differs
//! from Android's Apache client: a connection is opened from a URL
//! string, configured with request method/properties, and the response
//! is pulled through stream-like reads.

use std::fmt;

use parking_lot::Mutex;

use mobivine_device::latency::NativeApi;
use mobivine_device::net::{HttpRequest, Method, NetworkError};

use crate::error::S60Exception;
use crate::permissions::ApiPermission;
use crate::platform::S60Platform;

/// `Connector` — the static factory for J2ME connections.
#[derive(Debug)]
pub struct Connector;

impl Connector {
    /// `Connector.open("http://…")` — opens an HTTP connection in the
    /// *setup* state; nothing is transmitted until a response accessor
    /// is called.
    ///
    /// # Errors
    ///
    /// - [`S60Exception::Security`] if HTTP access is denied.
    /// - [`S60Exception::IllegalArgument`] for non-HTTP URLs.
    pub fn open_http(platform: &S60Platform, url: &str) -> Result<HttpConnection, S60Exception> {
        platform.enforce(ApiPermission::HttpConnect)?;
        if !url.starts_with("http://") {
            return Err(S60Exception::IllegalArgument(format!(
                "connector scheme not supported: {url}"
            )));
        }
        // Validate eagerly so setup errors surface at open() like on the
        // real platform.
        let _probe: mobivine_device::net::Url =
            url.parse().map_err(|e: mobivine_device::net::UrlError| {
                S60Exception::IllegalArgument(e.to_string())
            })?;
        Ok(HttpConnection {
            platform: platform.clone(),
            url: url.to_owned(),
            method: Method::Get,
            request_properties: Vec::new(),
            request_body: Vec::new(),
            state: Mutex::new(ConnState::Setup),
        })
    }
}

#[derive(Debug)]
enum ConnState {
    Setup,
    Connected {
        status: u16,
        headers: Vec<(String, String)>,
        body: Vec<u8>,
        read_offset: usize,
    },
    Closed,
}

/// `javax.microedition.io.HttpConnection`.
pub struct HttpConnection {
    platform: S60Platform,
    url: String,
    method: Method,
    request_properties: Vec<(String, String)>,
    request_body: Vec<u8>,
    state: Mutex<ConnState>,
}

impl fmt::Debug for HttpConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HttpConnection")
            .field("url", &self.url)
            .field("method", &self.method)
            .finish()
    }
}

impl HttpConnection {
    /// `setRequestMethod("GET" | "POST" | …)`.
    ///
    /// # Errors
    ///
    /// - [`S60Exception::IllegalArgument`] for unknown methods.
    /// - [`S60Exception::Io`] if the connection already transmitted.
    pub fn set_request_method(&mut self, method: &str) -> Result<(), S60Exception> {
        self.ensure_setup()?;
        self.method = method
            .parse()
            .map_err(|_| S60Exception::IllegalArgument(format!("bad method {method}")))?;
        Ok(())
    }

    /// `setRequestProperty(key, value)` — a request header.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] if the connection already
    /// transmitted.
    pub fn set_request_property(&mut self, key: &str, value: &str) -> Result<(), S60Exception> {
        self.ensure_setup()?;
        self.request_properties
            .push((key.to_owned(), value.to_owned()));
        Ok(())
    }

    /// Writes the request entity (the `openOutputStream().write(...)`
    /// path).
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] if the connection already
    /// transmitted.
    pub fn write_body(&mut self, body: &[u8]) -> Result<(), S60Exception> {
        self.ensure_setup()?;
        self.request_body.extend_from_slice(body);
        Ok(())
    }

    /// `getResponseCode()` — transmits the request on first call (J2ME's
    /// lazy transition from Setup to Connected) and returns the status.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] for transport failures or a closed
    /// connection.
    pub fn response_code(&self) -> Result<u16, S60Exception> {
        self.connect()?;
        match &*self.state.lock() {
            ConnState::Connected { status, .. } => Ok(*status),
            _ => Err(S60Exception::Io("connection closed".to_owned())),
        }
    }

    /// `getHeaderField(name)` — response header lookup,
    /// case-insensitive. Transmits on first call if needed.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] for transport failures.
    pub fn header_field(&self, name: &str) -> Result<Option<String>, S60Exception> {
        self.connect()?;
        match &*self.state.lock() {
            ConnState::Connected { headers, .. } => Ok(headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.clone())),
            _ => Err(S60Exception::Io("connection closed".to_owned())),
        }
    }

    /// Reads up to `buf.len()` bytes of the response entity, returning
    /// the count (0 at end of stream) — the `openInputStream().read()`
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] for transport failures.
    pub fn read(&self, buf: &mut [u8]) -> Result<usize, S60Exception> {
        self.connect()?;
        match &mut *self.state.lock() {
            ConnState::Connected {
                body, read_offset, ..
            } => {
                let available = body.len().saturating_sub(*read_offset);
                let n = available.min(buf.len());
                buf[..n].copy_from_slice(&body[*read_offset..*read_offset + n]);
                *read_offset += n;
                Ok(n)
            }
            _ => Err(S60Exception::Io("connection closed".to_owned())),
        }
    }

    /// Reads the entire remaining response entity as a string.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] for transport failures.
    pub fn read_fully(&self) -> Result<String, S60Exception> {
        let mut out = Vec::new();
        let mut chunk = [0u8; 256];
        loop {
            let n = self.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// `close()`.
    pub fn close(&self) {
        *self.state.lock() = ConnState::Closed;
    }

    fn ensure_setup(&self) -> Result<(), S60Exception> {
        match &*self.state.lock() {
            ConnState::Setup => Ok(()),
            _ => Err(S60Exception::Io(
                "connection already in connected state".to_owned(),
            )),
        }
    }

    fn connect(&self) -> Result<(), S60Exception> {
        let mut state = self.state.lock();
        match &*state {
            ConnState::Connected { .. } => return Ok(()),
            ConnState::Closed => return Err(S60Exception::Io("connection closed".to_owned())),
            ConnState::Setup => {}
        }
        let device = self.platform.device();
        device.latency().consume(NativeApi::HttpRequest);
        device.power().draw("radio", 1.5);
        let url = self
            .url
            .parse()
            .map_err(|e: mobivine_device::net::UrlError| {
                S60Exception::IllegalArgument(e.to_string())
            })?;
        let mut request = HttpRequest {
            method: self.method,
            url,
            headers: self.request_properties.clone(),
            body: self.request_body.clone(),
        };
        if request.body.is_empty() && self.method == Method::Post {
            request.body = Vec::new();
        }
        match device.network().execute(&request) {
            Ok((response, elapsed_ms)) => {
                device.advance_ms(elapsed_ms);
                *state = ConnState::Connected {
                    status: response.status,
                    headers: response.headers,
                    body: response.body,
                    read_offset: 0,
                };
                Ok(())
            }
            Err(
                err @ (NetworkError::UnknownHost
                | NetworkError::NetworkDown
                | NetworkError::TimedOut),
            ) => Err(S60Exception::Io(err.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permissions::{Disposition, PermissionPolicy};
    use mobivine_device::net::HttpResponse;
    use mobivine_device::Device;

    fn platform_with_server() -> S60Platform {
        let device = Device::builder().build();
        device
            .network()
            .register_route("wfm.example", Method::Get, "/tasks", |_| {
                let mut r = HttpResponse::ok("task list");
                r.headers.push(("Content-Type".into(), "text/plain".into()));
                r
            });
        device
            .network()
            .register_route("wfm.example", Method::Post, "/log", |req| {
                HttpResponse::ok(format!("{} bytes", req.body.len()))
            });
        S60Platform::new(device)
    }

    #[test]
    fn get_flow_reads_status_headers_body() {
        let platform = platform_with_server();
        let conn = Connector::open_http(&platform, "http://wfm.example/tasks").unwrap();
        assert_eq!(conn.response_code().unwrap(), 200);
        assert_eq!(
            conn.header_field("content-type").unwrap().as_deref(),
            Some("text/plain")
        );
        assert_eq!(conn.read_fully().unwrap(), "task list");
    }

    #[test]
    fn post_flow_with_body() {
        let platform = platform_with_server();
        let mut conn = Connector::open_http(&platform, "http://wfm.example/log").unwrap();
        conn.set_request_method("POST").unwrap();
        conn.set_request_property("Content-Type", "text/plain")
            .unwrap();
        conn.write_body(b"activity entry").unwrap();
        assert_eq!(conn.response_code().unwrap(), 200);
        assert_eq!(conn.read_fully().unwrap(), "14 bytes");
    }

    #[test]
    fn setup_mutations_after_connect_are_io_errors() {
        let platform = platform_with_server();
        let mut conn = Connector::open_http(&platform, "http://wfm.example/tasks").unwrap();
        conn.response_code().unwrap();
        assert!(matches!(
            conn.set_request_method("POST"),
            Err(S60Exception::Io(_))
        ));
        assert!(matches!(
            conn.set_request_property("a", "b"),
            Err(S60Exception::Io(_))
        ));
        assert!(matches!(conn.write_body(b"x"), Err(S60Exception::Io(_))));
    }

    #[test]
    fn read_is_incremental() {
        let platform = platform_with_server();
        let conn = Connector::open_http(&platform, "http://wfm.example/tasks").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(conn.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"task");
        assert_eq!(conn.read_fully().unwrap(), " list");
        assert_eq!(conn.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn unknown_host_is_io_exception() {
        let platform = platform_with_server();
        let conn = Connector::open_http(&platform, "http://ghost.example/").unwrap();
        assert!(matches!(conn.response_code(), Err(S60Exception::Io(_))));
    }

    #[test]
    fn closed_connection_rejects_reads() {
        let platform = platform_with_server();
        let conn = Connector::open_http(&platform, "http://wfm.example/tasks").unwrap();
        conn.close();
        assert!(matches!(conn.response_code(), Err(S60Exception::Io(_))));
    }

    #[test]
    fn non_http_scheme_rejected_at_open() {
        let platform = platform_with_server();
        assert!(matches!(
            Connector::open_http(&platform, "socket://x:80"),
            Err(S60Exception::IllegalArgument(_))
        ));
    }

    #[test]
    fn denied_policy_blocks_open() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::HttpConnect, Disposition::Denied);
        let platform = S60Platform::with_policy(Device::builder().build(), policy);
        assert!(matches!(
            Connector::open_http(&platform, "http://x/"),
            Err(S60Exception::Security(_))
        ));
    }

    #[test]
    fn bad_method_is_illegal_argument() {
        let platform = platform_with_server();
        let mut conn = Connector::open_http(&platform, "http://wfm.example/tasks").unwrap();
        assert!(matches!(
            conn.set_request_method("BREW"),
            Err(S60Exception::IllegalArgument(_))
        ));
    }
}
