//! S60/J2ME-flavoured exceptions.
//!
//! The paper's motivating comparison (§2) shows that
//! `LocationProvider.addProximityListener` on S60 throws
//! `SecurityException, LocationException, IllegalArgumentException,
//! NullPointerException` — a different exception set from Android's,
//! which the M-Proxy binding plane records per platform.

use std::fmt;

/// Exceptions thrown by the simulated S60 platform interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum S60Exception {
    /// `javax.microedition.location.LocationException` — provider cannot
    /// be created or has run out of resources.
    Location(String),
    /// `java.lang.SecurityException` — the user or policy denied the
    /// API permission prompt.
    Security(String),
    /// `java.lang.IllegalArgumentException`.
    IllegalArgument(String),
    /// `java.lang.NullPointerException` — kept for binding-plane
    /// fidelity; Rust's type system prevents it arising in this
    /// simulation, but proxy descriptors list it.
    NullPointer(String),
    /// `java.io.IOException` — connector/messaging/HTTP failures.
    Io(String),
    /// `java.lang.InterruptedException` — blocking call interrupted.
    Interrupted(String),
}

impl S60Exception {
    /// The Java class name the paper's code fragments would catch.
    pub fn java_class(&self) -> &'static str {
        match self {
            S60Exception::Location(_) => "javax.microedition.location.LocationException",
            S60Exception::Security(_) => "java.lang.SecurityException",
            S60Exception::IllegalArgument(_) => "java.lang.IllegalArgumentException",
            S60Exception::NullPointer(_) => "java.lang.NullPointerException",
            S60Exception::Io(_) => "java.io.IOException",
            S60Exception::Interrupted(_) => "java.lang.InterruptedException",
        }
    }
}

impl fmt::Display for S60Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S60Exception::Location(m) => write!(f, "location exception: {m}"),
            S60Exception::Security(m) => write!(f, "security exception: {m}"),
            S60Exception::IllegalArgument(m) => write!(f, "illegal argument: {m}"),
            S60Exception::NullPointer(m) => write!(f, "null pointer: {m}"),
            S60Exception::Io(m) => write!(f, "io exception: {m}"),
            S60Exception::Interrupted(m) => write!(f, "interrupted: {m}"),
        }
    }
}

impl std::error::Error for S60Exception {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn java_class_names() {
        assert_eq!(
            S60Exception::Location("x".into()).java_class(),
            "javax.microedition.location.LocationException"
        );
        assert_eq!(
            S60Exception::Security("x".into()).java_class(),
            "java.lang.SecurityException"
        );
    }

    #[test]
    fn display_is_lowercase_prose() {
        let s = S60Exception::Io("socket closed".into()).to_string();
        assert_eq!(s, "io exception: socket closed");
    }
}
