//! JSR-179-style location API.
//!
//! The S60 side of the paper's motivating fragmentation example. The key
//! semantic differences from Android, all reproduced here:
//!
//! - a `LocationProvider` instance is obtained through a [`Criteria`]
//!   (desired accuracy, response time, power consumption) and creation
//!   can fail with `LocationException`;
//! - callbacks are *listener objects* ([`ProximityListener`],
//!   [`LocationListener`]), not broadcast intents;
//! - proximity registration is **single-shot**: `proximityEvent` fires
//!   once when the terminal enters the radius and the listener is then
//!   automatically removed — no exit events, no expiration parameter.
//!   (Fig. 2(b) shows the hand-written code the paper needed to emulate
//!   Android's richer semantics on top of this.)

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::gps::GpsAvailability;
use mobivine_device::latency::NativeApi;
use mobivine_device::power::PowerLevel;
use mobivine_device::GeoPoint;

use crate::error::S60Exception;
use crate::permissions::ApiPermission;
use crate::platform::S60Platform;

/// Value meaning "no requirement" in [`Criteria`] setters (JSR-179's
/// `NO_REQUIREMENT`).
pub const NO_REQUIREMENT: i32 = -1;

/// Interval at which the platform's engine re-evaluates registered
/// proximity listeners, in virtual milliseconds.
pub const PROXIMITY_CHECK_INTERVAL_MS: u64 = 1_000;

/// Default interval for [`LocationProvider::set_location_listener`] when
/// the application passes [`NO_REQUIREMENT`], in seconds.
pub const DEFAULT_LISTENER_INTERVAL_S: i32 = 1;

/// Selection criteria for [`LocationProvider::get_instance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Criteria {
    horizontal_accuracy_m: i32,
    vertical_accuracy_m: i32,
    preferred_response_time_ms: i32,
    power_consumption: PowerLevel,
    cost_allowed: bool,
    speed_and_course_required: bool,
    altitude_required: bool,
}

impl Default for Criteria {
    fn default() -> Self {
        Self {
            horizontal_accuracy_m: NO_REQUIREMENT,
            vertical_accuracy_m: NO_REQUIREMENT,
            preferred_response_time_ms: NO_REQUIREMENT,
            power_consumption: PowerLevel::NoRequirement,
            cost_allowed: true,
            speed_and_course_required: false,
            altitude_required: false,
        }
    }
}

impl Criteria {
    /// A criteria object with no requirements.
    pub fn new() -> Self {
        Self::default()
    }

    /// `setHorizontalAccuracy` (metres; [`NO_REQUIREMENT`] to unset).
    pub fn set_horizontal_accuracy(&mut self, metres: i32) -> &mut Self {
        self.horizontal_accuracy_m = metres;
        self
    }

    /// `setVerticalAccuracy` (metres) — the paper's Fig. 2(b) sets 50.
    pub fn set_vertical_accuracy(&mut self, metres: i32) -> &mut Self {
        self.vertical_accuracy_m = metres;
        self
    }

    /// `setPreferredResponseTime` (milliseconds).
    pub fn set_preferred_response_time(&mut self, ms: i32) -> &mut Self {
        self.preferred_response_time_ms = ms;
        self
    }

    /// `setPreferredPowerConsumption`.
    pub fn set_preferred_power_consumption(&mut self, level: PowerLevel) -> &mut Self {
        self.power_consumption = level;
        self
    }

    /// `setCostAllowed`.
    pub fn set_cost_allowed(&mut self, allowed: bool) -> &mut Self {
        self.cost_allowed = allowed;
        self
    }

    /// `setSpeedAndCourseRequired`.
    pub fn set_speed_and_course_required(&mut self, required: bool) -> &mut Self {
        self.speed_and_course_required = required;
        self
    }

    /// `setAltitudeRequired`.
    pub fn set_altitude_required(&mut self, required: bool) -> &mut Self {
        self.altitude_required = required;
        self
    }

    /// The requested power consumption level.
    pub fn power_consumption(&self) -> PowerLevel {
        self.power_consumption
    }

    /// Whether the simulated positioning hardware can satisfy these
    /// criteria. The simulated receiver cannot do better than 1 m
    /// horizontal accuracy or respond faster than 10 ms.
    pub fn is_satisfiable(&self) -> bool {
        (self.horizontal_accuracy_m == NO_REQUIREMENT || self.horizontal_accuracy_m >= 1)
            && (self.vertical_accuracy_m == NO_REQUIREMENT || self.vertical_accuracy_m >= 1)
            && (self.preferred_response_time_ms == NO_REQUIREMENT
                || self.preferred_response_time_ms >= 10)
    }
}

/// `javax.microedition.location.Coordinates`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Coordinates {
    latitude: f64,
    longitude: f64,
    altitude: f32,
}

impl Coordinates {
    /// Creates coordinates (the paper's Fig. 2(b):
    /// `new Coordinates(latitude, longitude, (float) altitude)`).
    pub fn new(latitude: f64, longitude: f64, altitude: f32) -> Self {
        Self {
            latitude,
            longitude,
            altitude,
        }
    }

    /// `getLatitude()`.
    pub fn latitude(&self) -> f64 {
        self.latitude
    }

    /// `getLongitude()`.
    pub fn longitude(&self) -> f64 {
        self.longitude
    }

    /// `getAltitude()`.
    pub fn altitude(&self) -> f32 {
        self.altitude
    }

    /// `distance(to)` — great-circle metres.
    pub fn distance(&self, to: &Coordinates) -> f32 {
        self.as_geo().distance_m(&to.as_geo()) as f32
    }

    /// `azimuthTo(to)` — initial bearing in degrees.
    pub fn azimuth_to(&self, to: &Coordinates) -> f32 {
        self.as_geo().bearing_deg(&to.as_geo()) as f32
    }

    fn as_geo(&self) -> GeoPoint {
        GeoPoint::with_altitude(self.latitude, self.longitude, self.altitude as f64)
    }
}

/// `javax.microedition.location.Location` — the S60-flavoured location
/// value (contrast with the Android `Location` and the common proxy
/// type).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    coordinates: Coordinates,
    horizontal_accuracy: f32,
    speed: f32,
    course: f32,
    timestamp_ms: u64,
    valid: bool,
}

impl Location {
    /// An invalid location (what listeners receive while the provider is
    /// temporarily unavailable, per JSR-179).
    pub fn invalid(timestamp_ms: u64) -> Self {
        Self {
            coordinates: Coordinates::default(),
            horizontal_accuracy: f32::NAN,
            speed: 0.0,
            course: 0.0,
            timestamp_ms,
            valid: false,
        }
    }

    /// `getQualifiedCoordinates()` (accuracy folded in).
    pub fn qualified_coordinates(&self) -> Coordinates {
        self.coordinates
    }

    /// Horizontal accuracy in metres.
    pub fn horizontal_accuracy(&self) -> f32 {
        self.horizontal_accuracy
    }

    /// `getSpeed()` in m/s.
    pub fn speed(&self) -> f32 {
        self.speed
    }

    /// `getCourse()` in degrees.
    pub fn course(&self) -> f32 {
        self.course
    }

    /// `getTimestamp()` in virtual ms.
    pub fn timestamp_ms(&self) -> u64 {
        self.timestamp_ms
    }

    /// `isValid()`.
    pub fn is_valid(&self) -> bool {
        self.valid
    }
}

/// JSR-179 `ProximityListener`.
pub trait ProximityListener: Send + Sync {
    /// Called **once** when the terminal enters the registered radius;
    /// the registration is removed afterwards.
    fn proximity_event(&self, coordinates: &Coordinates, location: &Location);

    /// Called when proximity monitoring becomes (un)available.
    fn monitoring_state_changed(&self, _is_monitoring: bool) {}
}

/// JSR-179 `LocationListener`.
pub trait LocationListener: Send + Sync {
    /// Periodic location delivery. Receives an *invalid* location while
    /// the provider is temporarily unavailable.
    fn location_updated(&self, provider: &LocationProvider, location: &Location);

    /// Provider availability transitions.
    fn provider_state_changed(&self, _provider: &LocationProvider, _available: bool) {}
}

struct ProximityRegistration {
    listener: Arc<dyn ProximityListener>,
    active: Arc<AtomicBool>,
}

/// A JSR-179 location provider bound to the criteria it was created
/// with.
pub struct LocationProvider {
    platform: S60Platform,
    criteria: Criteria,
    listener_active: Arc<AtomicBool>,
}

impl fmt::Debug for LocationProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocationProvider")
            .field("criteria", &self.criteria)
            .finish()
    }
}

impl LocationProvider {
    /// `LocationProvider.getInstance(criteria)`.
    ///
    /// # Errors
    ///
    /// - [`S60Exception::Security`] if the location permission is
    ///   denied.
    /// - [`S60Exception::Location`] if no provider can satisfy the
    ///   criteria or the positioning hardware is out of service.
    pub fn get_instance(platform: &S60Platform, criteria: Criteria) -> Result<Self, S60Exception> {
        platform.enforce(ApiPermission::Location)?;
        if !criteria.is_satisfiable() {
            return Err(S60Exception::Location(
                "no location provider satisfies the criteria".to_owned(),
            ));
        }
        if platform.device().gps().availability() == GpsAvailability::OutOfService {
            return Err(S60Exception::Location(
                "location provider out of service".to_owned(),
            ));
        }
        Ok(Self {
            platform: platform.clone(),
            criteria,
            listener_active: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The criteria this provider was created with.
    pub fn criteria(&self) -> &Criteria {
        &self.criteria
    }

    /// `getLocation(timeout)` — a fresh fix.
    ///
    /// # Errors
    ///
    /// [`S60Exception::Location`] if the receiver cannot produce a fix
    /// (temporarily unavailable or out of service).
    pub fn get_location(&self, _timeout_s: i32) -> Result<Location, S60Exception> {
        let device = self.platform.device();
        let mut span = mobivine_telemetry::span::ambient::child(
            "platform:LocationProvider.getLocation",
            mobivine_telemetry::span::Plane::Platform,
            device.now_ms(),
        );
        let result = self.get_location_inner();
        if let Some(mut s) = span.take() {
            if let Err(e) = &result {
                s.attr("error", e.to_string());
            }
            s.end(device.now_ms());
        }
        result
    }

    fn get_location_inner(&self) -> Result<Location, S60Exception> {
        let device = self.platform.device();
        device.latency().consume(NativeApi::GetLocation);
        let level = self.criteria.power_consumption;
        device.power().draw("gps", 1.0 * level.draw_multiplier());
        let fix = device
            .gps()
            .current_fix()
            .map_err(|e| S60Exception::Location(e.to_string()))?;
        Ok(self.fix_to_location(fix, level))
    }

    fn fix_to_location(&self, fix: mobivine_device::gps::Fix, level: PowerLevel) -> Location {
        Location {
            coordinates: Coordinates::new(
                fix.point.latitude,
                fix.point.longitude,
                fix.point.altitude as f32,
            ),
            horizontal_accuracy: (fix.accuracy_m * level.accuracy_multiplier()) as f32,
            speed: fix.speed_mps as f32,
            course: fix.bearing_deg as f32,
            timestamp_ms: fix.timestamp_ms,
            valid: true,
        }
    }

    /// `setLocationListener(listener, interval, timeout, maxAge)` —
    /// intervals in seconds; pass [`NO_REQUIREMENT`] for the default.
    /// Passing `None` clears the current listener (the paper's
    /// Fig. 2(b): `lp.setLocationListener(null, -1, -1, -1)`).
    pub fn set_location_listener(
        &self,
        listener: Option<Arc<dyn LocationListener>>,
        interval_s: i32,
        _timeout_s: i32,
        _max_age_s: i32,
    ) {
        // Clear any previous listener.
        self.listener_active.store(false, Ordering::SeqCst);
        let Some(listener) = listener else {
            return;
        };
        let active = Arc::new(AtomicBool::new(true));
        self.listener_active.store(true, Ordering::SeqCst);
        // Tie the new registration's lifetime to listener_active as well:
        // a subsequent set_location_listener call flips listener_active,
        // which the pump checks.
        let interval_ms = if interval_s == NO_REQUIREMENT {
            DEFAULT_LISTENER_INTERVAL_S as u64 * 1_000
        } else {
            (interval_s.max(1) as u64) * 1_000
        };
        schedule_listener_pump(
            self.platform.clone(),
            self.criteria,
            Arc::clone(&self.listener_active),
            active,
            listener,
            interval_ms,
        );
    }

    /// `LocationProvider.addProximityListener(listener, coordinates,
    /// proximityRadius)` — static in J2ME, hence takes the platform.
    ///
    /// Single-shot semantics: `proximity_event` fires at most once, on
    /// entering, after which the registration is removed automatically.
    ///
    /// # Errors
    ///
    /// - [`S60Exception::Security`] if the location permission is
    ///   denied.
    /// - [`S60Exception::IllegalArgument`] for a non-positive radius or
    ///   invalid coordinates.
    /// - [`S60Exception::Location`] if the platform cannot monitor
    ///   proximity (hardware out of service).
    pub fn add_proximity_listener(
        platform: &S60Platform,
        listener: Arc<dyn ProximityListener>,
        coordinates: Coordinates,
        proximity_radius: f32,
    ) -> Result<(), S60Exception> {
        platform.enforce(ApiPermission::Location)?;
        if proximity_radius <= 0.0 || proximity_radius.is_nan() {
            return Err(S60Exception::IllegalArgument(
                "proximity radius must be positive".to_owned(),
            ));
        }
        if !GeoPoint::new(coordinates.latitude(), coordinates.longitude()).is_valid() {
            return Err(S60Exception::IllegalArgument(
                "invalid coordinates".to_owned(),
            ));
        }
        if platform.device().gps().availability() == GpsAvailability::OutOfService {
            return Err(S60Exception::Location(
                "proximity monitoring unavailable".to_owned(),
            ));
        }
        platform
            .device()
            .latency()
            .consume(NativeApi::AddProximityAlert);
        let registration = ProximityRegistration {
            listener,
            active: Arc::new(AtomicBool::new(true)),
        };
        proximity_registry(platform).lock().push((
            Arc::clone(&registration.listener),
            Arc::clone(&registration.active),
        ));
        schedule_proximity_check(
            platform.clone(),
            registration,
            coordinates,
            proximity_radius as f64,
        );
        Ok(())
    }

    /// `LocationProvider.removeProximityListener(listener)` — removes a
    /// registration by listener identity. Returns `true` if it was
    /// registered.
    pub fn remove_proximity_listener(
        platform: &S60Platform,
        listener: &Arc<dyn ProximityListener>,
    ) -> bool {
        let registry = proximity_registry(platform);
        let mut entries = registry.lock();
        let before = entries.len();
        entries.retain(|(l, active)| {
            if Arc::ptr_eq(l, listener) {
                active.store(false, Ordering::SeqCst);
                false
            } else {
                true
            }
        });
        entries.len() != before
    }
}

type ProximityRegistry = Arc<Mutex<Vec<(Arc<dyn ProximityListener>, Arc<AtomicBool>)>>>;

// The J2ME API is static; we key the per-device registry off the device's
// event queue identity by stashing it in a global map.
fn proximity_registry(platform: &S60Platform) -> ProximityRegistry {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static REGISTRIES: OnceLock<Mutex<HashMap<usize, ProximityRegistry>>> = OnceLock::new();
    let key = Arc::as_ptr(platform.device().events()) as usize;
    let map = REGISTRIES.get_or_init(|| Mutex::new(HashMap::new()));
    Arc::clone(map.lock().entry(key).or_default())
}

fn schedule_proximity_check(
    platform: S60Platform,
    registration: ProximityRegistration,
    target: Coordinates,
    radius_m: f64,
) {
    let device = platform.device().clone();
    let fire_at = device.now_ms() + PROXIMITY_CHECK_INTERVAL_MS;
    device
        .events()
        .schedule_at(fire_at, "s60-proximity-check", move |_| {
            if !registration.active.load(Ordering::SeqCst) {
                return;
            }
            let device = platform.device();
            device.power().draw("gps", 0.2);
            if device.gps().availability() == GpsAvailability::OutOfService {
                registration.active.store(false, Ordering::SeqCst);
                registration.listener.monitoring_state_changed(false);
                return;
            }
            let position = device.gps().true_position();
            let here = GeoPoint::new(target.latitude(), target.longitude());
            if position.distance_m(&here) <= radius_m {
                // Single-shot: fire once, then the registration dies.
                registration.active.store(false, Ordering::SeqCst);
                let location = Location {
                    coordinates: Coordinates::new(
                        position.latitude,
                        position.longitude,
                        position.altitude as f32,
                    ),
                    horizontal_accuracy: 5.0,
                    speed: 0.0,
                    course: 0.0,
                    timestamp_ms: device.now_ms(),
                    valid: true,
                };
                registration.listener.proximity_event(&target, &location);
            } else {
                schedule_proximity_check(platform.clone(), registration, target, radius_m);
            }
        });
}

fn schedule_listener_pump(
    platform: S60Platform,
    criteria: Criteria,
    provider_active: Arc<AtomicBool>,
    my_active: Arc<AtomicBool>,
    listener: Arc<dyn LocationListener>,
    interval_ms: u64,
) {
    let device = platform.device().clone();
    let fire_at = device.now_ms() + interval_ms;
    device
        .events()
        .schedule_at(fire_at, "s60-location-listener", move |_| {
            if !my_active.load(Ordering::SeqCst) || !provider_active.load(Ordering::SeqCst) {
                return;
            }
            let device = platform.device();
            let level = criteria.power_consumption;
            device.power().draw("gps", 0.5 * level.draw_multiplier());
            // Rebuild a provider view for the callback parameter.
            let provider = LocationProvider {
                platform: platform.clone(),
                criteria,
                listener_active: Arc::clone(&provider_active),
            };
            match device.gps().current_fix() {
                Ok(fix) => {
                    let location = provider.fix_to_location(fix, level);
                    listener.location_updated(&provider, &location);
                }
                Err(_) => {
                    listener.location_updated(&provider, &Location::invalid(device.now_ms()));
                }
            }
            schedule_listener_pump(
                platform.clone(),
                criteria,
                provider_active,
                my_active,
                listener,
                interval_ms,
            );
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::movement::MovementModel;
    use mobivine_device::Device;
    use std::sync::Mutex as StdMutex;

    const HOME: GeoPoint = GeoPoint {
        latitude: 28.5355,
        longitude: 77.3910,
        altitude: 0.0,
    };

    struct RecordingProximity {
        events: StdMutex<Vec<(f64, f64)>>,
        monitoring: StdMutex<Vec<bool>>,
    }

    impl RecordingProximity {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                events: StdMutex::new(Vec::new()),
                monitoring: StdMutex::new(Vec::new()),
            })
        }
    }

    impl ProximityListener for RecordingProximity {
        fn proximity_event(&self, coordinates: &Coordinates, location: &Location) {
            assert!(location.is_valid());
            self.events
                .lock()
                .unwrap()
                .push((coordinates.latitude(), coordinates.longitude()));
        }
        fn monitoring_state_changed(&self, is_monitoring: bool) {
            self.monitoring.lock().unwrap().push(is_monitoring);
        }
    }

    fn moving_platform() -> S60Platform {
        let start = HOME.destination(270.0, 500.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::linear(start, 90.0, 10.0))
            .build();
        device.gps().set_noise_enabled(false);
        S60Platform::new(device)
    }

    #[test]
    fn get_instance_honours_criteria() {
        let platform = S60Platform::new(Device::builder().build());
        let mut ok = Criteria::new();
        ok.set_vertical_accuracy(50)
            .set_preferred_response_time(NO_REQUIREMENT);
        assert!(LocationProvider::get_instance(&platform, ok).is_ok());

        let mut bad = Criteria::new();
        bad.set_horizontal_accuracy(0); // better-than-possible
        assert!(matches!(
            LocationProvider::get_instance(&platform, bad),
            Err(S60Exception::Location(_))
        ));
    }

    #[test]
    fn get_instance_fails_when_gps_out_of_service() {
        let platform = S60Platform::new(Device::builder().build());
        platform
            .device()
            .gps()
            .set_availability(GpsAvailability::OutOfService);
        assert!(matches!(
            LocationProvider::get_instance(&platform, Criteria::new()),
            Err(S60Exception::Location(_))
        ));
    }

    #[test]
    fn get_location_returns_coordinates() {
        let device = Device::builder().position(HOME).build();
        device.gps().set_noise_enabled(false);
        let platform = S60Platform::new(device);
        let provider = LocationProvider::get_instance(&platform, Criteria::new()).unwrap();
        let loc = provider.get_location(NO_REQUIREMENT).unwrap();
        assert!(loc.is_valid());
        let c = loc.qualified_coordinates();
        assert!((c.latitude() - HOME.latitude).abs() < 1e-9);
    }

    #[test]
    fn low_power_criteria_coarsens_accuracy_and_saves_energy() {
        let device = Device::builder().position(HOME).build();
        let platform = S60Platform::new(device);
        let mut low = Criteria::new();
        low.set_preferred_power_consumption(PowerLevel::Low);
        let mut high = Criteria::new();
        high.set_preferred_power_consumption(PowerLevel::High);
        let p_low = LocationProvider::get_instance(&platform, low).unwrap();
        let p_high = LocationProvider::get_instance(&platform, high).unwrap();
        let before = platform.device().power().component_total("gps");
        let l_low = p_low.get_location(-1).unwrap();
        let mid = platform.device().power().component_total("gps");
        let l_high = p_high.get_location(-1).unwrap();
        let after = platform.device().power().component_total("gps");
        assert!(l_low.horizontal_accuracy() > l_high.horizontal_accuracy());
        assert!((mid - before) < (after - mid), "high power draws more");
    }

    #[test]
    fn proximity_fires_once_and_auto_removes() {
        let platform = moving_platform();
        let listener = RecordingProximity::new();
        let target = Coordinates::new(HOME.latitude, HOME.longitude, 0.0);
        LocationProvider::add_proximity_listener(
            &platform,
            Arc::clone(&listener) as _,
            target,
            100.0,
        )
        .unwrap();
        // Walks in at ~40 s, out at ~60 s, but single-shot means exactly
        // one event even after 120 s.
        platform.device().advance_ms(120_000);
        assert_eq!(listener.events.lock().unwrap().len(), 1);
    }

    #[test]
    fn proximity_does_not_refire_on_reentry() {
        let start = HOME.destination(270.0, 300.0);
        let far = HOME.destination(90.0, 300.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::waypoint_loop(vec![start, far], 20.0))
            .build();
        device.gps().set_noise_enabled(false);
        let platform = S60Platform::new(device);
        let listener = RecordingProximity::new();
        LocationProvider::add_proximity_listener(
            &platform,
            Arc::clone(&listener) as _,
            Coordinates::new(HOME.latitude, HOME.longitude, 0.0),
            100.0,
        )
        .unwrap();
        platform.device().advance_ms(300_000); // many loop laps
        assert_eq!(
            listener.events.lock().unwrap().len(),
            1,
            "JSR-179 proximity is single-shot"
        );
    }

    #[test]
    fn remove_proximity_listener_by_identity() {
        let platform = moving_platform();
        let listener = RecordingProximity::new();
        let dyn_listener: Arc<dyn ProximityListener> = listener.clone();
        LocationProvider::add_proximity_listener(
            &platform,
            Arc::clone(&dyn_listener),
            Coordinates::new(HOME.latitude, HOME.longitude, 0.0),
            100.0,
        )
        .unwrap();
        assert!(LocationProvider::remove_proximity_listener(
            &platform,
            &dyn_listener
        ));
        assert!(!LocationProvider::remove_proximity_listener(
            &platform,
            &dyn_listener
        ));
        platform.device().advance_ms(120_000);
        assert!(listener.events.lock().unwrap().is_empty());
    }

    #[test]
    fn proximity_monitoring_loss_notifies_listener() {
        let platform = moving_platform();
        let listener = RecordingProximity::new();
        LocationProvider::add_proximity_listener(
            &platform,
            Arc::clone(&listener) as _,
            Coordinates::new(HOME.latitude, HOME.longitude, 0.0),
            100.0,
        )
        .unwrap();
        platform.device().advance_ms(5_000);
        platform
            .device()
            .gps()
            .set_availability(GpsAvailability::OutOfService);
        platform.device().advance_ms(5_000);
        assert_eq!(listener.monitoring.lock().unwrap().as_slice(), &[false]);
        assert!(listener.events.lock().unwrap().is_empty());
    }

    #[test]
    fn proximity_validates_arguments() {
        let platform = moving_platform();
        let listener = RecordingProximity::new();
        assert!(matches!(
            LocationProvider::add_proximity_listener(
                &platform,
                Arc::clone(&listener) as _,
                Coordinates::new(0.0, 0.0, 0.0),
                0.0,
            ),
            Err(S60Exception::IllegalArgument(_))
        ));
        assert!(matches!(
            LocationProvider::add_proximity_listener(
                &platform,
                listener as _,
                Coordinates::new(200.0, 0.0, 0.0),
                10.0,
            ),
            Err(S60Exception::IllegalArgument(_))
        ));
    }

    #[test]
    fn location_listener_periodic_updates_and_clear() {
        struct Collect(StdMutex<Vec<bool>>);
        impl LocationListener for Collect {
            fn location_updated(&self, _p: &LocationProvider, location: &Location) {
                self.0.lock().unwrap().push(location.is_valid());
            }
        }
        let device = Device::builder().position(HOME).build();
        let platform = S60Platform::new(device);
        let provider = LocationProvider::get_instance(&platform, Criteria::new()).unwrap();
        let listener = Arc::new(Collect(StdMutex::new(Vec::new())));
        provider.set_location_listener(Some(Arc::clone(&listener) as _), 2, -1, -1);
        platform.device().advance_ms(10_000);
        assert_eq!(listener.0.lock().unwrap().len(), 5);
        // Clearing with None stops delivery (Fig. 2(b)'s
        // setLocationListener(null, -1, -1, -1)).
        provider.set_location_listener(None, -1, -1, -1);
        platform.device().advance_ms(10_000);
        assert_eq!(listener.0.lock().unwrap().len(), 5);
    }

    #[test]
    fn location_listener_gets_invalid_location_when_unavailable() {
        struct Collect(StdMutex<Vec<bool>>);
        impl LocationListener for Collect {
            fn location_updated(&self, _p: &LocationProvider, location: &Location) {
                self.0.lock().unwrap().push(location.is_valid());
            }
        }
        let device = Device::builder().position(HOME).build();
        let platform = S60Platform::new(device);
        let provider = LocationProvider::get_instance(&platform, Criteria::new()).unwrap();
        let listener = Arc::new(Collect(StdMutex::new(Vec::new())));
        provider.set_location_listener(Some(Arc::clone(&listener) as _), 1, -1, -1);
        platform.device().advance_ms(2_000);
        platform
            .device()
            .gps()
            .set_availability(GpsAvailability::TemporarilyUnavailable);
        platform.device().advance_ms(2_000);
        let seen = listener.0.lock().unwrap().clone();
        assert_eq!(seen, vec![true, true, false, false]);
    }

    #[test]
    fn coordinates_distance_and_azimuth() {
        let a = Coordinates::new(0.0, 0.0, 0.0);
        let b = Coordinates::new(0.0, 1.0, 0.0);
        assert!((a.distance(&b) - 111_195.0).abs() < 200.0);
        assert!((a.azimuth_to(&b) - 90.0).abs() < 0.01);
    }

    #[test]
    fn denied_permission_is_security_exception() {
        use crate::permissions::{ApiPermission, Disposition, PermissionPolicy};
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::Location, Disposition::Denied);
        let platform = S60Platform::with_policy(Device::builder().build(), policy);
        assert!(matches!(
            LocationProvider::get_instance(&platform, Criteria::new()),
            Err(S60Exception::Security(_))
        ));
    }
}
