//! JSR-120-style wireless messaging.
//!
//! On S60 the paper's SMS proxy binds to `javax.wireless.messaging`
//! (§4.1): a `MessageConnection` is opened through the generic
//! `Connector.open("sms://…")` factory, a `TextMessage` object is
//! created, populated and sent. Contrast with Android's one-call
//! `SmsManager.sendTextMessage` — name, structure and error model all
//! differ.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::latency::NativeApi;
use mobivine_device::sms::InboxMessage;

use crate::error::S60Exception;
use crate::permissions::ApiPermission;
use crate::platform::S60Platform;

/// Message type selector for
/// [`MessageConnection::new_message`] (JSR-120's
/// `MessageConnection.TEXT_MESSAGE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// A text message.
    Text,
    /// A binary message (modelled but the paper's proxies only use
    /// text).
    Binary,
}

/// A JSR-120 text message under construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextMessage {
    address: Option<String>,
    payload: Option<String>,
}

impl TextMessage {
    /// `setAddress("sms://+number")`.
    pub fn set_address(&mut self, address: &str) {
        self.address = Some(address.to_owned());
    }

    /// `getAddress()`.
    pub fn address(&self) -> Option<&str> {
        self.address.as_deref()
    }

    /// `setPayloadText(text)`.
    pub fn set_payload_text(&mut self, text: &str) {
        self.payload = Some(text.to_owned());
    }

    /// `getPayloadText()`.
    pub fn payload_text(&self) -> Option<&str> {
        self.payload.as_deref()
    }
}

/// Listener for incoming messages (JSR-120 `MessageListener`).
pub trait MessageListener: Send + Sync {
    /// `notifyIncomingMessage(connection)` — a message is ready to be
    /// read with [`MessageConnection::receive`].
    fn notify_incoming_message(&self);
}

/// A JSR-120 message connection, client or server mode.
pub struct MessageConnection {
    platform: S60Platform,
    /// `sms://+number` the connection was opened on (client mode) or
    /// the local listening address (server mode).
    address: String,
    server_mode: bool,
    received: Arc<Mutex<Vec<InboxMessage>>>,
    listener: Arc<Mutex<Option<Arc<dyn MessageListener>>>>,
}

impl fmt::Debug for MessageConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MessageConnection")
            .field("address", &self.address)
            .field("server_mode", &self.server_mode)
            .finish()
    }
}

/// Parses an `sms://` connector URL into the bare address.
fn parse_sms_url(url: &str) -> Result<&str, S60Exception> {
    url.strip_prefix("sms://")
        .filter(|rest| !rest.is_empty())
        .ok_or_else(|| S60Exception::IllegalArgument(format!("not an sms url: {url}")))
}

impl MessageConnection {
    /// `Connector.open("sms://+number")` — client mode, for sending to
    /// `+number`.
    ///
    /// # Errors
    ///
    /// - [`S60Exception::Security`] if sending is denied.
    /// - [`S60Exception::IllegalArgument`] for malformed URLs.
    pub fn open_client(platform: &S60Platform, url: &str) -> Result<Self, S60Exception> {
        platform.enforce(ApiPermission::SmsSend)?;
        let address = parse_sms_url(url)?;
        Ok(Self {
            platform: platform.clone(),
            address: address.to_owned(),
            server_mode: false,
            received: Arc::new(Mutex::new(Vec::new())),
            listener: Arc::new(Mutex::new(None)),
        })
    }

    /// `Connector.open("sms://:port")`-style server connection bound to
    /// this device's own number; incoming messages are queued for
    /// [`MessageConnection::receive`] and announced to the registered
    /// [`MessageListener`], if any.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Security`] if receiving is denied.
    pub fn open_server(platform: &S60Platform) -> Result<Self, S60Exception> {
        platform.enforce(ApiPermission::SmsReceive)?;
        let received = Arc::new(Mutex::new(Vec::new()));
        let listener: Arc<Mutex<Option<Arc<dyn MessageListener>>>> = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&received);
        let notify = Arc::clone(&listener);
        let own = platform.device().msisdn().to_owned();
        platform
            .device()
            .smsc()
            .add_inbox_listener(&own, move |msg| {
                sink.lock().push(msg.clone());
                let current = notify.lock().clone();
                if let Some(listener) = current {
                    listener.notify_incoming_message();
                }
            });
        Ok(Self {
            platform: platform.clone(),
            address: own,
            server_mode: true,
            received,
            listener,
        })
    }

    /// `setMessageListener(listener)` — registers (or with `None`
    /// clears) the incoming-message notifier on a server-mode
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] on client-mode connections.
    pub fn set_message_listener(
        &self,
        listener: Option<Arc<dyn MessageListener>>,
    ) -> Result<(), S60Exception> {
        if !self.server_mode {
            return Err(S60Exception::Io(
                "message listeners require a server-mode connection".to_owned(),
            ));
        }
        *self.listener.lock() = listener;
        Ok(())
    }

    /// The address this connection is bound to.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// `newMessage(type)` — creates an empty message addressed to the
    /// connection's peer.
    pub fn new_message(&self, kind: MessageType) -> TextMessage {
        let mut message = TextMessage::default();
        if kind == MessageType::Text && !self.server_mode {
            message.set_address(&format!("sms://{}", self.address));
        }
        message
    }

    /// `send(message)` — submits the message.
    ///
    /// # Errors
    ///
    /// - [`S60Exception::IllegalArgument`] if the message has no address
    ///   or no payload, or is sent on a server-mode connection.
    /// - [`S60Exception::Io`] is reserved for radio failures (delivery
    ///   failures surface via the SMSC's delivery status, matching the
    ///   fire-and-forget J2ME API).
    pub fn send(&self, message: &TextMessage) -> Result<(), S60Exception> {
        if self.server_mode {
            return Err(S60Exception::IllegalArgument(
                "cannot send on a server-mode connection".to_owned(),
            ));
        }
        let address = message
            .address()
            .ok_or_else(|| S60Exception::IllegalArgument("message has no address".to_owned()))?;
        let payload = message
            .payload_text()
            .ok_or_else(|| S60Exception::IllegalArgument("message has no payload".to_owned()))?;
        let destination = parse_sms_url(address)?;
        let device = self.platform.device();
        if !device.signal_strength().in_coverage() {
            return Err(S60Exception::Io("no network coverage".to_owned()));
        }
        device.latency().consume(NativeApi::SendSms);
        device.power().draw("radio", 0.8);
        device
            .smsc()
            .submit(device.msisdn(), destination, payload, device.now_ms(), None);
        Ok(())
    }

    /// Like [`MessageConnection::send`] but additionally requests a GSM
    /// **status report** for the message: `report` fires once with
    /// `true` (delivered) or `false` (failed) when the network reports
    /// back. Returns the submission id. (JSR-120 exposes status reports
    /// through the messaging connection; this models that path.)
    ///
    /// # Errors
    ///
    /// Same as [`MessageConnection::send`].
    pub fn send_with_status<F>(
        &self,
        message: &TextMessage,
        report: F,
    ) -> Result<mobivine_device::sms::MessageId, S60Exception>
    where
        F: Fn(mobivine_device::sms::MessageId, bool) + Send + 'static,
    {
        if self.server_mode {
            return Err(S60Exception::IllegalArgument(
                "cannot send on a server-mode connection".to_owned(),
            ));
        }
        let address = message
            .address()
            .ok_or_else(|| S60Exception::IllegalArgument("message has no address".to_owned()))?;
        let payload = message
            .payload_text()
            .ok_or_else(|| S60Exception::IllegalArgument("message has no payload".to_owned()))?;
        let destination = parse_sms_url(address)?;
        let device = self.platform.device();
        if !device.signal_strength().in_coverage() {
            return Err(S60Exception::Io("no network coverage".to_owned()));
        }
        device.latency().consume(NativeApi::SendSms);
        device.power().draw("radio", 0.8);
        let id = device.smsc().submit(
            device.msisdn(),
            destination,
            payload,
            device.now_ms(),
            Some(Box::new(move |id, status, _at| {
                report(
                    id,
                    status == mobivine_device::sms::DeliveryStatus::Delivered,
                );
            })),
        );
        Ok(id)
    }

    /// `receive()` — pops the oldest queued incoming message, if any.
    /// (The real API blocks; the simulation polls, which is also how the
    /// paper's WebView notification handler consumes notifications.)
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Io`] when called on a client-mode
    /// connection.
    pub fn receive(&self) -> Result<Option<TextMessage>, S60Exception> {
        if !self.server_mode {
            return Err(S60Exception::Io(
                "receive on a client-mode connection".to_owned(),
            ));
        }
        let mut queue = self.received.lock();
        if queue.is_empty() {
            return Ok(None);
        }
        let inbox_message = queue.remove(0);
        let mut message = TextMessage::default();
        message.set_address(&format!("sms://{}", inbox_message.from));
        message.set_payload_text(&inbox_message.body);
        Ok(Some(message))
    }

    /// Number of queued incoming messages (server mode).
    pub fn pending(&self) -> usize {
        self.received.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permissions::{Disposition, PermissionPolicy};
    use mobivine_device::Device;

    fn platform() -> S60Platform {
        S60Platform::new(Device::builder().msisdn("+91-agent").build())
    }

    #[test]
    fn send_text_message_full_flow() {
        let platform = platform();
        platform.device().smsc().register_address("+91-sup");
        let conn = MessageConnection::open_client(&platform, "sms://+91-sup").unwrap();
        let mut msg = conn.new_message(MessageType::Text);
        assert_eq!(msg.address(), Some("sms://+91-sup"));
        msg.set_payload_text("reached the depot");
        conn.send(&msg).unwrap();
        platform.device().advance_ms(1_000);
        let inbox = platform.device().smsc().inbox("+91-sup");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].body, "reached the depot");
        assert_eq!(inbox[0].from, "+91-agent");
    }

    #[test]
    fn send_requires_payload_and_address() {
        let platform = platform();
        let conn = MessageConnection::open_client(&platform, "sms://+91-x").unwrap();
        let no_payload = conn.new_message(MessageType::Text);
        assert!(matches!(
            conn.send(&no_payload),
            Err(S60Exception::IllegalArgument(_))
        ));
        let mut no_address = TextMessage::default();
        no_address.set_payload_text("hi");
        assert!(matches!(
            conn.send(&no_address),
            Err(S60Exception::IllegalArgument(_))
        ));
    }

    #[test]
    fn malformed_url_rejected() {
        let platform = platform();
        assert!(matches!(
            MessageConnection::open_client(&platform, "mms://+91"),
            Err(S60Exception::IllegalArgument(_))
        ));
        assert!(matches!(
            MessageConnection::open_client(&platform, "sms://"),
            Err(S60Exception::IllegalArgument(_))
        ));
    }

    #[test]
    fn denied_send_permission_is_security_exception() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::SmsSend, Disposition::PromptDeny);
        let platform = S60Platform::with_policy(Device::builder().build(), policy);
        assert!(matches!(
            MessageConnection::open_client(&platform, "sms://+1"),
            Err(S60Exception::Security(_))
        ));
        assert_eq!(platform.policy().prompt_count(), 1);
    }

    #[test]
    fn server_connection_receives_incoming() {
        let platform = platform();
        let server = MessageConnection::open_server(&platform).unwrap();
        platform.device().smsc().submit(
            "+91-sup",
            "+91-agent",
            "new task: site 4",
            platform.device().now_ms(),
            None,
        );
        assert_eq!(server.pending(), 0);
        platform.device().advance_ms(1_000);
        assert_eq!(server.pending(), 1);
        let msg = server.receive().unwrap().unwrap();
        assert_eq!(msg.payload_text(), Some("new task: site 4"));
        assert_eq!(msg.address(), Some("sms://+91-sup"));
        assert!(server.receive().unwrap().is_none());
    }

    #[test]
    fn message_listener_notified_on_arrival() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counter(AtomicUsize);
        impl MessageListener for Counter {
            fn notify_incoming_message(&self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let platform = platform();
        let server = MessageConnection::open_server(&platform).unwrap();
        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        server
            .set_message_listener(Some(Arc::clone(&counter) as Arc<dyn MessageListener>))
            .unwrap();
        platform.device().smsc().submit(
            "+91-sup",
            "+91-agent",
            "ping",
            platform.device().now_ms(),
            None,
        );
        platform.device().advance_ms(1_000);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        // Clearing stops notifications; the queue still receives.
        server.set_message_listener(None).unwrap();
        platform.device().smsc().submit(
            "+91-sup",
            "+91-agent",
            "pong",
            platform.device().now_ms(),
            None,
        );
        platform.device().advance_ms(1_000);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert_eq!(server.pending(), 2);
        // Client-mode connections reject listeners.
        let client = MessageConnection::open_client(&platform, "sms://+1").unwrap();
        assert!(client.set_message_listener(None).is_err());
    }

    #[test]
    fn receive_on_client_is_io_error() {
        let platform = platform();
        let conn = MessageConnection::open_client(&platform, "sms://+91-x").unwrap();
        assert!(matches!(conn.receive(), Err(S60Exception::Io(_))));
    }

    #[test]
    fn send_on_server_is_illegal() {
        let platform = platform();
        let server = MessageConnection::open_server(&platform).unwrap();
        let mut msg = TextMessage::default();
        msg.set_address("sms://+1");
        msg.set_payload_text("x");
        assert!(matches!(
            server.send(&msg),
            Err(S60Exception::IllegalArgument(_))
        ));
    }
}
