//! J2ME prompt-based permission policy.
//!
//! MIDP permissions differ from Android's manifest model: each protected
//! API is governed by a policy — allowed, denied, or "ask the user"
//! (oneshot/session prompts). The simulated policy answers prompts
//! deterministically so denial paths are testable.

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;

/// Protected J2ME API domains used by the paper's proxies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiPermission {
    /// `javax.microedition.location.Location`.
    Location,
    /// `javax.wireless.messaging.sms.send`.
    SmsSend,
    /// `javax.wireless.messaging.sms.receive`.
    SmsReceive,
    /// `javax.microedition.io.Connector.http`.
    HttpConnect,
    /// PIM contact read access.
    ContactsRead,
    /// PIM calendar read access.
    CalendarRead,
}

impl ApiPermission {
    /// The MIDP permission string.
    pub fn permission_name(&self) -> &'static str {
        match self {
            ApiPermission::Location => "javax.microedition.location.Location",
            ApiPermission::SmsSend => "javax.wireless.messaging.sms.send",
            ApiPermission::SmsReceive => "javax.wireless.messaging.sms.receive",
            ApiPermission::HttpConnect => "javax.microedition.io.Connector.http",
            ApiPermission::ContactsRead => "javax.microedition.pim.ContactList.read",
            ApiPermission::CalendarRead => "javax.microedition.pim.EventList.read",
        }
    }
}

impl fmt::Display for ApiPermission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.permission_name())
    }
}

/// Disposition of one permission under the active policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Disposition {
    /// Granted without prompting (trusted MIDlet suite).
    #[default]
    Allowed,
    /// The user is prompted; the simulated user answers yes.
    PromptAccept,
    /// The user is prompted; the simulated user answers no.
    PromptDeny,
    /// Denied outright by policy.
    Denied,
}

impl Disposition {
    /// Whether a call under this disposition proceeds.
    pub fn permits(&self) -> bool {
        matches!(self, Disposition::Allowed | Disposition::PromptAccept)
    }

    /// Whether the disposition involves a user prompt.
    pub fn prompts(&self) -> bool {
        matches!(self, Disposition::PromptAccept | Disposition::PromptDeny)
    }
}

/// The active permission policy for a MIDlet suite.
///
/// # Example
///
/// ```
/// use mobivine_s60::permissions::{ApiPermission, Disposition, PermissionPolicy};
///
/// let policy = PermissionPolicy::new();
/// policy.set(ApiPermission::SmsSend, Disposition::PromptDeny);
/// assert!(!policy.disposition(ApiPermission::SmsSend).permits());
/// assert!(policy.disposition(ApiPermission::Location).permits()); // default Allowed
/// ```
#[derive(Debug, Default)]
pub struct PermissionPolicy {
    dispositions: RwLock<HashMap<ApiPermission, Disposition>>,
    prompt_count: RwLock<u64>,
}

impl PermissionPolicy {
    /// A policy that allows everything without prompting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the disposition for one permission.
    pub fn set(&self, permission: ApiPermission, disposition: Disposition) {
        self.dispositions.write().insert(permission, disposition);
    }

    /// The disposition for `permission` (default
    /// [`Disposition::Allowed`]).
    pub fn disposition(&self, permission: ApiPermission) -> Disposition {
        self.dispositions
            .read()
            .get(&permission)
            .copied()
            .unwrap_or_default()
    }

    /// Evaluates `permission`, recording a prompt if the disposition
    /// requires one. Returns whether the call may proceed.
    pub fn check(&self, permission: ApiPermission) -> bool {
        let d = self.disposition(permission);
        if d.prompts() {
            *self.prompt_count.write() += 1;
        }
        d.permits()
    }

    /// Number of user prompts the policy has simulated.
    pub fn prompt_count(&self) -> u64 {
        *self.prompt_count.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_allowed_without_prompt() {
        let policy = PermissionPolicy::new();
        assert!(policy.check(ApiPermission::Location));
        assert_eq!(policy.prompt_count(), 0);
    }

    #[test]
    fn prompt_accept_permits_and_counts() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::SmsSend, Disposition::PromptAccept);
        assert!(policy.check(ApiPermission::SmsSend));
        assert!(policy.check(ApiPermission::SmsSend));
        assert_eq!(policy.prompt_count(), 2);
    }

    #[test]
    fn prompt_deny_blocks_and_counts() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::HttpConnect, Disposition::PromptDeny);
        assert!(!policy.check(ApiPermission::HttpConnect));
        assert_eq!(policy.prompt_count(), 1);
    }

    #[test]
    fn denied_blocks_silently() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::Location, Disposition::Denied);
        assert!(!policy.check(ApiPermission::Location));
        assert_eq!(policy.prompt_count(), 0);
    }

    #[test]
    fn permission_names_are_midp_strings() {
        assert_eq!(
            ApiPermission::SmsSend.permission_name(),
            "javax.wireless.messaging.sms.send"
        );
    }
}
