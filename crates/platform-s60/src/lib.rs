#![warn(missing_docs)]
//! Simulated Nokia S60 (J2ME/MIDP) platform middleware.
//!
//! Reproduces the *native* S60 programming model the paper's S60
//! M-Proxies bind to (§2, Fig. 2(b) and §4.1):
//!
//! - [`midlet::Midlet`] lifecycle — "on S60, [the application] needs to
//!   extend the MIDlet class",
//! - JSR-179-style [`location`]: `LocationProvider` instances obtained
//!   through a [`location::Criteria`] (accuracy, response time, power
//!   consumption), listener-object callbacks, and **single-shot**
//!   proximity registration — entering fires once and the listener is
//!   automatically removed; there are no exit events and no expiration,
//!   the exact semantic gaps the paper's Fig. 2(b) works around by hand,
//! - JSR-120-style [`messaging`] (`Connector.open("sms://…")`,
//!   `MessageConnection`, `TextMessage`),
//! - `javax.microedition.io`-style [`io`] (`HttpConnection`),
//! - [`packaging`] — the single-jar MIDlet-suite deployment model with
//!   JAD descriptors, OTA properties and permission requests that the
//!   MobiVine plug-in's platform-specific extension must merge proxy
//!   jars into, and
//! - prompt-based [`permissions`] with `SecurityException` on denial.

pub mod error;
pub mod io;
pub mod location;
pub mod messaging;
pub mod midlet;
pub mod ota;
pub mod packaging;
pub mod permissions;
pub mod platform;

pub use error::S60Exception;
pub use platform::S60Platform;
