//! The S60 platform handle.

use std::fmt;
use std::sync::Arc;

use mobivine_device::Device;

use crate::error::S60Exception;
use crate::permissions::{ApiPermission, PermissionPolicy};

/// The simulated S60 installation: a device plus the MIDlet suite's
/// permission policy.
///
/// Unlike Android there is no per-application `Context`; J2ME APIs are
/// reached through static factories (`LocationProvider.getInstance`,
/// `Connector.open`) that this handle stands in for.
///
/// # Example
///
/// ```
/// use mobivine_device::Device;
/// use mobivine_s60::S60Platform;
///
/// let platform = S60Platform::new(Device::builder().build());
/// assert!(platform.device().now_ms() == 0);
/// ```
#[derive(Clone)]
pub struct S60Platform {
    device: Device,
    policy: Arc<PermissionPolicy>,
}

impl fmt::Debug for S60Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("S60Platform").finish()
    }
}

impl S60Platform {
    /// Boots the platform on `device` with an allow-all permission
    /// policy.
    pub fn new(device: Device) -> Self {
        Self {
            device,
            policy: Arc::new(PermissionPolicy::new()),
        }
    }

    /// Boots the platform with an explicit permission policy.
    pub fn with_policy(device: Device, policy: PermissionPolicy) -> Self {
        Self {
            device,
            policy: Arc::new(policy),
        }
    }

    /// The underlying simulated handset.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The active permission policy.
    pub fn policy(&self) -> &PermissionPolicy {
        &self.policy
    }

    /// Checks `permission`, throwing the J2ME-style `SecurityException`
    /// on denial.
    ///
    /// # Errors
    ///
    /// Returns [`S60Exception::Security`] naming the denied permission.
    pub fn enforce(&self, permission: ApiPermission) -> Result<(), S60Exception> {
        if self.policy.check(permission) {
            Ok(())
        } else {
            Err(S60Exception::Security(format!(
                "permission {} denied",
                permission.permission_name()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permissions::Disposition;

    #[test]
    fn enforce_allows_by_default() {
        let platform = S60Platform::new(Device::builder().build());
        assert!(platform.enforce(ApiPermission::Location).is_ok());
    }

    #[test]
    fn enforce_denies_with_named_permission() {
        let policy = PermissionPolicy::new();
        policy.set(ApiPermission::SmsSend, Disposition::Denied);
        let platform = S60Platform::with_policy(Device::builder().build(), policy);
        let err = platform.enforce(ApiPermission::SmsSend).unwrap_err();
        assert!(err
            .to_string()
            .contains("javax.wireless.messaging.sms.send"));
    }

    #[test]
    fn clones_share_policy() {
        let platform = S60Platform::new(Device::builder().build());
        let twin = platform.clone();
        platform
            .policy()
            .set(ApiPermission::Location, Disposition::Denied);
        assert!(twin.enforce(ApiPermission::Location).is_err());
    }
}
