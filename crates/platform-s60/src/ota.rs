//! Over-The-Air (OTA) deployment.
//!
//! The S60 deployment model the paper's §2 describes: the single suite
//! jar is "qualified further with various permissions, Over-The-Air
//! (OTA) deployment properties, profile configuration etc." This module
//! closes the loop — an [`OtaServer`] publishes a suite's JAD and jar on
//! the simulated network; the device-side [`AppManager`] (the AMS role)
//! fetches the descriptor, fetches the jar it points at, validates the
//! pair and records the installation.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::net::{HttpResponse, Method, SimNetwork};

use crate::error::S60Exception;
use crate::io::Connector;
use crate::packaging::{JadDescriptor, Jar, MidletSuite, PackagingError};
use crate::platform::S60Platform;

/// Publishes MIDlet suites for OTA download.
#[derive(Debug)]
pub struct OtaServer;

impl OtaServer {
    /// Serves `suite` on `host`: the JAD at `/<name>.jad`, the jar at
    /// the URL the JAD declares (path component of
    /// `MIDlet-Jar-URL`). Returns the JAD URL to hand to devices.
    pub fn publish(network: &SimNetwork, host: &str, suite: &MidletSuite) -> String {
        let jad_text = suite.jad.render();
        let jad_path = format!("/{}.jad", suite.jad.midlet_name.to_lowercase());
        network.register_route(host, Method::Get, &jad_path, move |_| {
            HttpResponse::ok(jad_text.clone())
        });
        let jar_path: String = suite
            .jad
            .jar_url
            .parse::<mobivine_device::net::Url>()
            .map(|u| u.path)
            .unwrap_or_else(|_| format!("/{}", suite.jar.name()));
        let jar_bytes = suite.jar.to_bytes();
        network.register_route(host, Method::Get, &jar_path, move |_| {
            HttpResponse::ok(jar_bytes.clone())
        });
        format!("http://{host}{jad_path}")
    }
}

/// Errors during OTA installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OtaError {
    /// The download failed (transport or HTTP status).
    Download(String),
    /// The JAD or jar was malformed, or they disagree.
    Packaging(PackagingError),
    /// A suite with that name and version is already installed.
    AlreadyInstalled(String),
}

impl fmt::Display for OtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OtaError::Download(m) => write!(f, "ota download failed: {m}"),
            OtaError::Packaging(e) => write!(f, "ota package invalid: {e}"),
            OtaError::AlreadyInstalled(n) => write!(f, "suite {n} already installed"),
        }
    }
}

impl std::error::Error for OtaError {}

impl From<PackagingError> for OtaError {
    fn from(e: PackagingError) -> Self {
        OtaError::Packaging(e)
    }
}

impl From<S60Exception> for OtaError {
    fn from(e: S60Exception) -> Self {
        OtaError::Download(e.to_string())
    }
}

/// The device-side application manager.
#[derive(Default)]
pub struct AppManager {
    installed: Arc<Mutex<Vec<MidletSuite>>>,
}

impl fmt::Debug for AppManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppManager")
            .field("installed", &self.installed.lock().len())
            .finish()
    }
}

impl AppManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installed suite names with versions, in installation order.
    pub fn installed(&self) -> Vec<(String, String)> {
        self.installed
            .lock()
            .iter()
            .map(|s| (s.jad.midlet_name.clone(), s.jad.version.clone()))
            .collect()
    }

    /// Looks up an installed suite by name.
    pub fn suite(&self, name: &str) -> Option<MidletSuite> {
        self.installed
            .lock()
            .iter()
            .find(|s| s.jad.midlet_name == name)
            .cloned()
    }

    /// Performs the full OTA installation from a JAD URL: fetch JAD →
    /// parse → fetch jar → reassemble → validate → record.
    ///
    /// # Errors
    ///
    /// [`OtaError`] at whichever step fails; nothing is recorded on
    /// failure.
    pub fn install_from_url(
        &self,
        platform: &S60Platform,
        jad_url: &str,
    ) -> Result<String, OtaError> {
        // Fetch the descriptor.
        let jad_connection = Connector::open_http(platform, jad_url)?;
        let status = jad_connection.response_code()?;
        if status != 200 {
            return Err(OtaError::Download(format!("jad fetch returned {status}")));
        }
        let jad = JadDescriptor::parse(&jad_connection.read_fully()?)?;

        // Fetch the jar the descriptor points at.
        let jar_connection = Connector::open_http(platform, &jad.jar_url)?;
        let status = jar_connection.response_code()?;
        if status != 200 {
            return Err(OtaError::Download(format!("jar fetch returned {status}")));
        }
        let mut jar_bytes = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            let n = jar_connection.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            jar_bytes.extend_from_slice(&chunk[..n]);
        }
        let jar = Jar::from_bytes(&jar_bytes)?;

        // Validate the pair and record the installation.
        let suite = MidletSuite { jar, jad };
        suite.validate()?;
        let mut installed = self.installed.lock();
        if installed.iter().any(|s| {
            s.jad.midlet_name == suite.jad.midlet_name && s.jad.version == suite.jad.version
        }) {
            return Err(OtaError::AlreadyInstalled(suite.jad.midlet_name));
        }
        let name = suite.jad.midlet_name.clone();
        installed.push(suite);
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::Device;

    fn suite() -> MidletSuite {
        let mut jar = Jar::new("workforce.jar");
        jar.add_entry("com/acme/Wfm.class", b"app bytes".to_vec())
            .unwrap();
        jar.add_entry(
            "com/ibm/S60/location/LocationProxy.class",
            b"proxy".to_vec(),
        )
        .unwrap();
        let mut jad = JadDescriptor::for_jar(&jar, "WorkForce", "ACME", "1.0.0");
        jad.jar_url = "http://ota.example/workforce.jar".to_owned();
        jad.permissions = vec!["javax.microedition.location.Location".to_owned()];
        MidletSuite { jar, jad }
    }

    #[test]
    fn jad_render_parse_round_trip() {
        let suite = suite();
        let text = suite.jad.render();
        let back = JadDescriptor::parse(&text).unwrap();
        assert_eq!(back, suite.jad);
    }

    #[test]
    fn jar_wire_format_round_trips() {
        let suite = suite();
        let bytes = suite.jar.to_bytes();
        let back = Jar::from_bytes(&bytes).unwrap();
        assert_eq!(back, suite.jar);
    }

    #[test]
    fn jar_wire_format_rejects_truncation() {
        let bytes = suite().jar.to_bytes();
        assert!(Jar::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Jar::from_bytes(b"name-only-no-newline").is_err());
    }

    #[test]
    fn full_ota_install_flow() {
        let device = Device::builder().build();
        let suite = suite();
        let jad_url = OtaServer::publish(device.network(), "ota.example", &suite);
        assert_eq!(jad_url, "http://ota.example/workforce.jad");

        let platform = S60Platform::new(device);
        let manager = AppManager::new();
        let name = manager.install_from_url(&platform, &jad_url).unwrap();
        assert_eq!(name, "WorkForce");
        assert_eq!(
            manager.installed(),
            vec![("WorkForce".to_owned(), "1.0.0".to_owned())]
        );
        let installed = manager.suite("WorkForce").unwrap();
        assert!(installed
            .jar
            .contains("com/ibm/S60/location/LocationProxy.class"));
    }

    #[test]
    fn reinstalling_same_version_is_rejected() {
        let device = Device::builder().build();
        let suite = suite();
        let jad_url = OtaServer::publish(device.network(), "ota.example", &suite);
        let platform = S60Platform::new(device);
        let manager = AppManager::new();
        manager.install_from_url(&platform, &jad_url).unwrap();
        assert!(matches!(
            manager.install_from_url(&platform, &jad_url),
            Err(OtaError::AlreadyInstalled(_))
        ));
    }

    #[test]
    fn missing_jad_is_download_error() {
        let device = Device::builder().build();
        // Host exists but no JAD route.
        device
            .network()
            .register_route("ota.example", Method::Get, "/other", |_| {
                HttpResponse::ok("x")
            });
        let platform = S60Platform::new(device);
        let manager = AppManager::new();
        let err = manager
            .install_from_url(&platform, "http://ota.example/ghost.jad")
            .unwrap_err();
        assert!(matches!(err, OtaError::Download(_)));
        assert!(manager.installed().is_empty());
    }

    #[test]
    fn size_mismatch_fails_validation() {
        let device = Device::builder().build();
        let mut suite = suite();
        suite.jad.jar_size += 7; // tampered descriptor
        let jad_url = OtaServer::publish(device.network(), "ota.example", &suite);
        let platform = S60Platform::new(device);
        let manager = AppManager::new();
        assert!(matches!(
            manager.install_from_url(&platform, &jad_url),
            Err(OtaError::Packaging(PackagingError::DescriptorMismatch(_)))
        ));
    }
}
