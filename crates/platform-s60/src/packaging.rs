//! MIDlet-suite packaging.
//!
//! S60 deployment requires "the entire application [to be] packaged as a
//! single jar file, that is qualified further with various permissions,
//! Over-The-Air (OTA) deployment properties, profile configuration etc."
//! (paper §2). The MobiVine plug-in's S60 platform-specific extension
//! merges the jars of all chosen proxies with the application jar before
//! deployment (§4.2) — this module provides the jar and descriptor model
//! it operates on.

use std::collections::BTreeMap;
use std::fmt;

/// A jar archive: named entries with byte contents.
///
/// # Example
///
/// ```
/// use mobivine_s60::packaging::Jar;
///
/// let mut app = Jar::new("workforce.jar");
/// app.add_entry("com/acme/App.class", b"app".to_vec())?;
/// let mut proxy = Jar::new("location-proxy.jar");
/// proxy.add_entry("com/ibm/proxies/Location.class", b"proxy".to_vec())?;
/// app.merge(&proxy)?;
/// assert_eq!(app.len(), 2);
/// # Ok::<(), mobivine_s60::packaging::PackagingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Jar {
    name: String,
    entries: BTreeMap<String, Vec<u8>>,
}

/// Errors in jar or suite manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackagingError {
    /// An entry with the same path but different content already exists.
    ConflictingEntry(String),
    /// An entry path is empty or otherwise malformed.
    BadEntryPath(String),
    /// A required JAD attribute is missing.
    MissingAttribute(&'static str),
    /// JAD and jar disagree (size, name).
    DescriptorMismatch(String),
}

impl fmt::Display for PackagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackagingError::ConflictingEntry(p) => write!(f, "conflicting jar entry {p}"),
            PackagingError::BadEntryPath(p) => write!(f, "bad jar entry path '{p}'"),
            PackagingError::MissingAttribute(a) => write!(f, "missing jad attribute {a}"),
            PackagingError::DescriptorMismatch(m) => write!(f, "jad/jar mismatch: {m}"),
        }
    }
}

impl std::error::Error for PackagingError {}

impl Jar {
    /// Creates an empty jar.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            entries: BTreeMap::new(),
        }
    }

    /// The jar's file name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the jar has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total byte size of all entries.
    pub fn byte_size(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Adds an entry.
    ///
    /// # Errors
    ///
    /// - [`PackagingError::BadEntryPath`] for empty paths.
    /// - [`PackagingError::ConflictingEntry`] if the path exists with
    ///   different content (identical re-adds are idempotent).
    pub fn add_entry(&mut self, path: &str, content: Vec<u8>) -> Result<(), PackagingError> {
        if path.is_empty() || path.starts_with('/') {
            return Err(PackagingError::BadEntryPath(path.to_owned()));
        }
        match self.entries.get(path) {
            Some(existing) if *existing != content => {
                Err(PackagingError::ConflictingEntry(path.to_owned()))
            }
            _ => {
                self.entries.insert(path.to_owned(), content);
                Ok(())
            }
        }
    }

    /// Whether `path` is present.
    pub fn contains(&self, path: &str) -> bool {
        self.entries.contains_key(path)
    }

    /// Entry content lookup.
    pub fn entry(&self, path: &str) -> Option<&[u8]> {
        self.entries.get(path).map(Vec::as_slice)
    }

    /// Entry paths in sorted order.
    pub fn entry_paths(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Serializes the jar to the wire format OTA delivery uses:
    /// `name\n` then, per entry, `path\n<len>\n<bytes>`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.name.as_bytes());
        out.push(b'\n');
        for (path, content) in &self.entries {
            out.extend_from_slice(path.as_bytes());
            out.push(b'\n');
            out.extend_from_slice(content.len().to_string().as_bytes());
            out.push(b'\n');
            out.extend_from_slice(content);
        }
        out
    }

    /// Deserializes the OTA wire format produced by [`Jar::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`PackagingError::BadEntryPath`] on truncated or
    /// malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PackagingError> {
        fn read_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a str, PackagingError> {
            let rest = &bytes[*pos..];
            let end = rest
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| PackagingError::BadEntryPath("<truncated>".to_owned()))?;
            let line = std::str::from_utf8(&rest[..end])
                .map_err(|_| PackagingError::BadEntryPath("<non-utf8>".to_owned()))?;
            *pos += end + 1;
            Ok(line)
        }
        let mut pos = 0;
        let name = read_line(bytes, &mut pos)?.to_owned();
        let mut jar = Jar::new(&name);
        while pos < bytes.len() {
            let path = read_line(bytes, &mut pos)?.to_owned();
            let len: usize = read_line(bytes, &mut pos)?
                .parse()
                .map_err(|_| PackagingError::BadEntryPath(path.clone()))?;
            if pos + len > bytes.len() {
                return Err(PackagingError::BadEntryPath(path));
            }
            let content = bytes[pos..pos + len].to_vec();
            pos += len;
            jar.add_entry(&path, content)?;
        }
        Ok(jar)
    }

    /// Merges every entry of `other` into `self` — the plug-in's
    /// "merge jars of all chosen proxies with the application jar"
    /// operation.
    ///
    /// # Errors
    ///
    /// Returns [`PackagingError::ConflictingEntry`] on a path collision
    /// with different content; `self` is left partially merged up to the
    /// conflict (callers validate before deploying).
    pub fn merge(&mut self, other: &Jar) -> Result<(), PackagingError> {
        for (path, content) in &other.entries {
            self.add_entry(path, content.clone())?;
        }
        Ok(())
    }
}

/// A JAD (Java Application Descriptor) accompanying the suite jar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JadDescriptor {
    /// `MIDlet-Name`.
    pub midlet_name: String,
    /// `MIDlet-Vendor`.
    pub vendor: String,
    /// `MIDlet-Version` (`major.minor.micro`).
    pub version: String,
    /// `MIDlet-Jar-URL` — where OTA installation fetches the jar.
    pub jar_url: String,
    /// `MIDlet-Jar-Size` in bytes.
    pub jar_size: usize,
    /// `MIDlet-Permissions` requested.
    pub permissions: Vec<String>,
    /// Additional OTA / configuration properties
    /// (`MicroEdition-Profile`, operator branding, …).
    pub properties: BTreeMap<String, String>,
}

impl JadDescriptor {
    /// Builds a descriptor for `jar` with required fields filled in.
    pub fn for_jar(jar: &Jar, midlet_name: &str, vendor: &str, version: &str) -> Self {
        let mut properties = BTreeMap::new();
        properties.insert("MicroEdition-Profile".to_owned(), "MIDP-2.0".to_owned());
        properties.insert(
            "MicroEdition-Configuration".to_owned(),
            "CLDC-1.1".to_owned(),
        );
        Self {
            midlet_name: midlet_name.to_owned(),
            vendor: vendor.to_owned(),
            version: version.to_owned(),
            jar_url: format!("http://ota.example/{}", jar.name()),
            jar_size: jar.byte_size(),
            permissions: Vec::new(),
            properties,
        }
    }

    /// Validates required attributes and version syntax.
    ///
    /// # Errors
    ///
    /// Returns the first [`PackagingError`] found.
    pub fn validate(&self) -> Result<(), PackagingError> {
        if self.midlet_name.is_empty() {
            return Err(PackagingError::MissingAttribute("MIDlet-Name"));
        }
        if self.vendor.is_empty() {
            return Err(PackagingError::MissingAttribute("MIDlet-Vendor"));
        }
        if self.jar_url.is_empty() {
            return Err(PackagingError::MissingAttribute("MIDlet-Jar-URL"));
        }
        let version_ok = {
            let parts: Vec<&str> = self.version.split('.').collect();
            !parts.is_empty()
                && parts.len() <= 3
                && parts
                    .iter()
                    .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
        };
        if !version_ok {
            return Err(PackagingError::DescriptorMismatch(format!(
                "bad MIDlet-Version '{}'",
                self.version
            )));
        }
        Ok(())
    }

    /// Parses a descriptor from JAD `Key: value` text (the inverse of
    /// [`JadDescriptor::render`]).
    ///
    /// # Errors
    ///
    /// Returns [`PackagingError::MissingAttribute`] when required keys
    /// are absent, or [`PackagingError::DescriptorMismatch`] for
    /// malformed values.
    pub fn parse(text: &str) -> Result<Self, PackagingError> {
        let mut midlet_name = None;
        let mut vendor = None;
        let mut version = None;
        let mut jar_url = None;
        let mut jar_size = None;
        let mut permissions = Vec::new();
        let mut properties = BTreeMap::new();
        for line in text.lines() {
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "MIDlet-Name" => midlet_name = Some(value.to_owned()),
                "MIDlet-Vendor" => vendor = Some(value.to_owned()),
                "MIDlet-Version" => version = Some(value.to_owned()),
                "MIDlet-Jar-URL" => jar_url = Some(value.to_owned()),
                "MIDlet-Jar-Size" => {
                    jar_size = Some(value.parse().map_err(|_| {
                        PackagingError::DescriptorMismatch(format!("bad MIDlet-Jar-Size '{value}'"))
                    })?)
                }
                "MIDlet-Permissions" => {
                    permissions = value.split(',').map(|p| p.trim().to_owned()).collect()
                }
                other => {
                    properties.insert(other.to_owned(), value.to_owned());
                }
            }
        }
        let descriptor = Self {
            midlet_name: midlet_name.ok_or(PackagingError::MissingAttribute("MIDlet-Name"))?,
            vendor: vendor.ok_or(PackagingError::MissingAttribute("MIDlet-Vendor"))?,
            version: version.ok_or(PackagingError::MissingAttribute("MIDlet-Version"))?,
            jar_url: jar_url.ok_or(PackagingError::MissingAttribute("MIDlet-Jar-URL"))?,
            jar_size: jar_size.ok_or(PackagingError::MissingAttribute("MIDlet-Jar-Size"))?,
            permissions,
            properties,
        };
        descriptor.validate()?;
        Ok(descriptor)
    }

    /// Renders the descriptor in JAD `Key: value` format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("MIDlet-Name: {}\n", self.midlet_name));
        out.push_str(&format!("MIDlet-Vendor: {}\n", self.vendor));
        out.push_str(&format!("MIDlet-Version: {}\n", self.version));
        out.push_str(&format!("MIDlet-Jar-URL: {}\n", self.jar_url));
        out.push_str(&format!("MIDlet-Jar-Size: {}\n", self.jar_size));
        if !self.permissions.is_empty() {
            out.push_str(&format!(
                "MIDlet-Permissions: {}\n",
                self.permissions.join(", ")
            ));
        }
        for (k, v) in &self.properties {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out
    }
}

/// A deployable MIDlet suite: one jar plus its descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MidletSuite {
    /// The (single) suite jar.
    pub jar: Jar,
    /// The descriptor.
    pub jad: JadDescriptor,
}

impl MidletSuite {
    /// Validates the suite for deployment: descriptor attributes and
    /// jar-size agreement.
    ///
    /// # Errors
    ///
    /// Returns the first [`PackagingError`] found.
    pub fn validate(&self) -> Result<(), PackagingError> {
        self.jad.validate()?;
        if self.jad.jar_size != self.jar.byte_size() {
            return Err(PackagingError::DescriptorMismatch(format!(
                "MIDlet-Jar-Size {} but jar is {} bytes",
                self.jad.jar_size,
                self.jar.byte_size()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app_jar() -> Jar {
        let mut jar = Jar::new("wfm.jar");
        jar.add_entry("com/acme/Wfm.class", b"main".to_vec())
            .unwrap();
        jar.add_entry("META-INF/MANIFEST.MF", b"manifest".to_vec())
            .unwrap();
        jar
    }

    #[test]
    fn add_and_lookup_entries() {
        let jar = app_jar();
        assert_eq!(jar.len(), 2);
        assert!(jar.contains("com/acme/Wfm.class"));
        assert_eq!(jar.entry("META-INF/MANIFEST.MF"), Some(&b"manifest"[..]));
        assert_eq!(jar.byte_size(), 12);
    }

    #[test]
    fn idempotent_re_add_but_conflict_on_difference() {
        let mut jar = app_jar();
        jar.add_entry("com/acme/Wfm.class", b"main".to_vec())
            .unwrap();
        assert_eq!(jar.len(), 2);
        assert_eq!(
            jar.add_entry("com/acme/Wfm.class", b"other".to_vec()),
            Err(PackagingError::ConflictingEntry(
                "com/acme/Wfm.class".into()
            ))
        );
    }

    #[test]
    fn bad_paths_rejected() {
        let mut jar = Jar::new("x.jar");
        assert!(jar.add_entry("", b"x".to_vec()).is_err());
        assert!(jar.add_entry("/abs/path", b"x".to_vec()).is_err());
    }

    #[test]
    fn merge_combines_proxy_jars() {
        let mut app = app_jar();
        let mut loc = Jar::new("loc-proxy.jar");
        loc.add_entry("com/ibm/S60/location/LocationProxy.class", b"lp".to_vec())
            .unwrap();
        let mut sms = Jar::new("sms-proxy.jar");
        sms.add_entry("com/ibm/S60/sms/SmsProxy.class", b"sp".to_vec())
            .unwrap();
        app.merge(&loc).unwrap();
        app.merge(&sms).unwrap();
        assert_eq!(app.len(), 4);
        assert!(app.contains("com/ibm/S60/sms/SmsProxy.class"));
    }

    #[test]
    fn merge_conflict_detected() {
        let mut app = app_jar();
        let mut bad = Jar::new("bad.jar");
        bad.add_entry("com/acme/Wfm.class", b"imposter".to_vec())
            .unwrap();
        assert!(matches!(
            app.merge(&bad),
            Err(PackagingError::ConflictingEntry(_))
        ));
    }

    #[test]
    fn jad_for_jar_and_validation() {
        let jar = app_jar();
        let jad = JadDescriptor::for_jar(&jar, "WorkForce", "ACME", "1.0.0");
        jad.validate().unwrap();
        assert_eq!(jad.jar_size, jar.byte_size());
        assert!(jad.render().contains("MIDlet-Name: WorkForce"));
        assert!(jad.render().contains("MicroEdition-Profile: MIDP-2.0"));
    }

    #[test]
    fn jad_rejects_missing_and_malformed() {
        let jar = app_jar();
        let mut jad = JadDescriptor::for_jar(&jar, "", "ACME", "1.0");
        assert_eq!(
            jad.validate(),
            Err(PackagingError::MissingAttribute("MIDlet-Name"))
        );
        jad.midlet_name = "W".into();
        jad.version = "1.x".into();
        assert!(matches!(
            jad.validate(),
            Err(PackagingError::DescriptorMismatch(_))
        ));
    }

    #[test]
    fn suite_validation_checks_size_agreement() {
        let jar = app_jar();
        let jad = JadDescriptor::for_jar(&jar, "W", "V", "1.0");
        let mut suite = MidletSuite { jar, jad };
        suite.validate().unwrap();
        suite
            .jar
            .add_entry("extra/Entry.class", b"grow".to_vec())
            .unwrap();
        assert!(matches!(
            suite.validate(),
            Err(PackagingError::DescriptorMismatch(_))
        ));
    }

    #[test]
    fn permissions_render_comma_separated() {
        let jar = app_jar();
        let mut jad = JadDescriptor::for_jar(&jar, "W", "V", "1.0");
        jad.permissions = vec![
            "javax.microedition.location.Location".into(),
            "javax.wireless.messaging.sms.send".into(),
        ];
        let rendered = jad.render();
        assert!(rendered.contains(
            "MIDlet-Permissions: javax.microedition.location.Location, javax.wireless.messaging.sms.send"
        ));
    }
}
