//! MIDlet lifecycle.
//!
//! "On S60, [the application] needs to extend the MIDlet class" (paper
//! §2). The lifecycle differs from Android's Activity: a MIDlet moves
//! between Paused and Active via `startApp`/`pauseApp`, and terminates
//! through `destroyApp(unconditional)`, which a MIDlet may *refuse* when
//! conditional — a wrinkle Android does not have.

use std::fmt;

use crate::platform::S60Platform;

/// MIDlet lifecycle states (JSR-118).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MidletState {
    /// Constructed; `startApp` not yet delivered.
    Paused,
    /// `startApp` delivered.
    Active,
    /// `destroyApp` delivered; terminal.
    Destroyed,
}

/// Thrown by a MIDlet refusing a conditional `destroyApp`
/// (`MIDletStateChangeException`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MidletStateChangeException(pub String);

impl fmt::Display for MidletStateChangeException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "midlet refused state change: {}", self.0)
    }
}

impl std::error::Error for MidletStateChangeException {}

/// A J2ME MIDlet: application code at lifecycle edges.
pub trait Midlet {
    /// `startApp` — called on launch and on every resume. The paper's
    /// Fig. 2(b)/8(b) register proximity listeners here.
    fn start_app(&mut self, platform: &S60Platform);

    /// `pauseApp`.
    fn pause_app(&mut self, _platform: &S60Platform) {}

    /// `destroyApp(unconditional)` — may refuse by returning `Err` when
    /// `unconditional` is `false`.
    ///
    /// # Errors
    ///
    /// Implementations return [`MidletStateChangeException`] to refuse a
    /// conditional destroy.
    fn destroy_app(
        &mut self,
        _platform: &S60Platform,
        _unconditional: bool,
    ) -> Result<(), MidletStateChangeException> {
        Ok(())
    }
}

/// Error for illegal lifecycle transitions requested of the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MidletHostError {
    /// The MIDlet is not in a state permitting the request.
    IllegalTransition {
        /// The state the MIDlet was in.
        from: MidletState,
        /// The operation requested.
        requested: &'static str,
    },
    /// A conditional destroy was refused by the MIDlet.
    DestroyRefused(MidletStateChangeException),
}

impl fmt::Display for MidletHostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MidletHostError::IllegalTransition { from, requested } => {
                write!(f, "cannot {requested} from {from:?}")
            }
            MidletHostError::DestroyRefused(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MidletHostError {}

/// Drives a [`Midlet`] through its lifecycle (the AMS — application
/// management software — role).
pub struct MidletHost<M: Midlet> {
    midlet: M,
    platform: S60Platform,
    state: MidletState,
}

impl<M: Midlet + fmt::Debug> fmt::Debug for MidletHost<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MidletHost")
            .field("state", &self.state)
            .field("midlet", &self.midlet)
            .finish()
    }
}

impl<M: Midlet> MidletHost<M> {
    /// Hosts `midlet` on `platform`, initially `Paused` (per JSR-118).
    pub fn new(midlet: M, platform: S60Platform) -> Self {
        Self {
            midlet,
            platform,
            state: MidletState::Paused,
        }
    }

    /// Current state.
    pub fn state(&self) -> MidletState {
        self.state
    }

    /// Immutable access to the hosted MIDlet.
    pub fn midlet(&self) -> &M {
        &self.midlet
    }

    /// Mutable access to the hosted MIDlet.
    pub fn midlet_mut(&mut self) -> &mut M {
        &mut self.midlet
    }

    /// The platform the MIDlet runs on.
    pub fn platform(&self) -> &S60Platform {
        &self.platform
    }

    /// Delivers `startApp`.
    ///
    /// # Errors
    ///
    /// [`MidletHostError::IllegalTransition`] unless `Paused`.
    pub fn start(&mut self) -> Result<(), MidletHostError> {
        if self.state != MidletState::Paused {
            return Err(MidletHostError::IllegalTransition {
                from: self.state,
                requested: "start",
            });
        }
        self.midlet.start_app(&self.platform);
        self.state = MidletState::Active;
        Ok(())
    }

    /// Delivers `pauseApp`.
    ///
    /// # Errors
    ///
    /// [`MidletHostError::IllegalTransition`] unless `Active`.
    pub fn pause(&mut self) -> Result<(), MidletHostError> {
        if self.state != MidletState::Active {
            return Err(MidletHostError::IllegalTransition {
                from: self.state,
                requested: "pause",
            });
        }
        self.midlet.pause_app(&self.platform);
        self.state = MidletState::Paused;
        Ok(())
    }

    /// Delivers `destroyApp(unconditional)`.
    ///
    /// # Errors
    ///
    /// - [`MidletHostError::IllegalTransition`] if already destroyed.
    /// - [`MidletHostError::DestroyRefused`] if the MIDlet refuses a
    ///   conditional destroy (it stays in its prior state).
    pub fn destroy(&mut self, unconditional: bool) -> Result<(), MidletHostError> {
        if self.state == MidletState::Destroyed {
            return Err(MidletHostError::IllegalTransition {
                from: self.state,
                requested: "destroy",
            });
        }
        match self.midlet.destroy_app(&self.platform, unconditional) {
            Ok(()) => {
                self.state = MidletState::Destroyed;
                Ok(())
            }
            Err(e) if !unconditional => Err(MidletHostError::DestroyRefused(e)),
            Err(_) => {
                // Unconditional destroy proceeds regardless.
                self.state = MidletState::Destroyed;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::Device;

    #[derive(Debug, Default)]
    struct Probe {
        log: Vec<&'static str>,
        refuse_destroy: bool,
    }

    impl Midlet for Probe {
        fn start_app(&mut self, _p: &S60Platform) {
            self.log.push("start");
        }
        fn pause_app(&mut self, _p: &S60Platform) {
            self.log.push("pause");
        }
        fn destroy_app(
            &mut self,
            _p: &S60Platform,
            _unconditional: bool,
        ) -> Result<(), MidletStateChangeException> {
            self.log.push("destroy");
            if self.refuse_destroy {
                Err(MidletStateChangeException("busy".into()))
            } else {
                Ok(())
            }
        }
    }

    fn host() -> MidletHost<Probe> {
        MidletHost::new(
            Probe::default(),
            S60Platform::new(Device::builder().build()),
        )
    }

    #[test]
    fn starts_paused_then_activates() {
        let mut host = host();
        assert_eq!(host.state(), MidletState::Paused);
        host.start().unwrap();
        assert_eq!(host.state(), MidletState::Active);
        assert_eq!(host.midlet().log, vec!["start"]);
    }

    #[test]
    fn pause_resume_cycle_redelivers_start_app() {
        let mut host = host();
        host.start().unwrap();
        host.pause().unwrap();
        host.start().unwrap();
        assert_eq!(host.midlet().log, vec!["start", "pause", "start"]);
    }

    #[test]
    fn illegal_transitions() {
        let mut host = host();
        assert!(host.pause().is_err());
        host.start().unwrap();
        assert!(host.start().is_err());
    }

    #[test]
    fn conditional_destroy_can_be_refused() {
        let mut host = host();
        host.start().unwrap();
        host.midlet_mut().refuse_destroy = true;
        assert!(matches!(
            host.destroy(false),
            Err(MidletHostError::DestroyRefused(_))
        ));
        assert_eq!(host.state(), MidletState::Active);
        // Unconditional destroy cannot be refused.
        host.destroy(true).unwrap();
        assert_eq!(host.state(), MidletState::Destroyed);
    }

    #[test]
    fn destroy_is_terminal() {
        let mut host = host();
        host.destroy(true).unwrap();
        assert!(host.destroy(true).is_err());
        assert!(host.start().is_err());
    }
}
