//! Android-flavoured exceptions.
//!
//! The binding plane of an M-Proxy records "the list of exceptions that
//! are thrown on this platform" (paper §3.1). These are Android's.

use std::fmt;

/// Exceptions thrown by the simulated Android platform interfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AndroidException {
    /// `java.lang.SecurityException` — the calling application lacks a
    /// manifest permission.
    Security(String),
    /// `java.lang.IllegalArgumentException` — a malformed argument.
    IllegalArgument(String),
    /// `android.os.RemoteException` — the system service failed.
    Remote(String),
    /// `java.io.IOException` — an I/O failure (HTTP transport, SMS radio).
    Io(String),
    /// The API does not exist in the running SDK version. Used to model
    /// the m5-rc15 → 1.0 signature change of `addProximityAlert`: code
    /// written against the old signature "does not compile" against 1.0,
    /// which in this simulation surfaces as a hard runtime error.
    ApiRemoved {
        /// The missing API's name.
        api: &'static str,
        /// The SDK version in force.
        version: crate::version::SdkVersion,
    },
}

impl AndroidException {
    /// The Java class name the paper's code fragments would catch.
    pub fn java_class(&self) -> &'static str {
        match self {
            AndroidException::Security(_) => "java.lang.SecurityException",
            AndroidException::IllegalArgument(_) => "java.lang.IllegalArgumentException",
            AndroidException::Remote(_) => "android.os.RemoteException",
            AndroidException::Io(_) => "java.io.IOException",
            AndroidException::ApiRemoved { .. } => "java.lang.NoSuchMethodError",
        }
    }
}

impl fmt::Display for AndroidException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AndroidException::Security(m) => write!(f, "security exception: {m}"),
            AndroidException::IllegalArgument(m) => write!(f, "illegal argument: {m}"),
            AndroidException::Remote(m) => write!(f, "remote exception: {m}"),
            AndroidException::Io(m) => write!(f, "io exception: {m}"),
            AndroidException::ApiRemoved { api, version } => {
                write!(f, "api {api} does not exist in sdk {version}")
            }
        }
    }
}

impl std::error::Error for AndroidException {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::SdkVersion;

    #[test]
    fn java_class_names_are_correct() {
        assert_eq!(
            AndroidException::Security("x".into()).java_class(),
            "java.lang.SecurityException"
        );
        assert_eq!(
            AndroidException::Io("x".into()).java_class(),
            "java.io.IOException"
        );
    }

    #[test]
    fn display_mentions_api_and_version() {
        let e = AndroidException::ApiRemoved {
            api: "addProximityAlert(Intent)",
            version: SdkVersion::V1_0,
        };
        let s = e.to_string();
        assert!(s.contains("addProximityAlert"));
        assert!(s.contains("1.0"));
    }
}
