#![warn(missing_docs)]
//! Simulated Android platform middleware.
//!
//! Reproduces the *native* Android programming model that MobiVine's
//! Android M-Proxies bind to (paper §2, Fig. 2(a) and §4.1):
//!
//! - application [`context::Context`] with a system-service registry and a
//!   manifest-style permission model,
//! - [`intent::Intent`] / [`intent::IntentFilter`] / broadcast receivers —
//!   the callback mechanism `addProximityAlert` uses,
//! - [`location::LocationManager`] with proximity alerts that deliver
//!   *enter and exit* events repeatedly until an expiration time (the
//!   semantics S60 lacks),
//! - [`telephony::SmsManager`] and the `IPhone`-flavoured
//!   [`telephony::Phone`] call interface,
//! - an Apache-HttpClient-flavoured [`http::HttpClient`],
//! - [`activity::Activity`] lifecycle management, and
//! - [`version::SdkVersion`] capturing the m5-rc15 → 1.0 evolution of
//!   `addProximityAlert` (`Intent` → `PendingIntent`) that the paper's
//!   maintenance evaluation builds on.
//!
//! Everything runs against the shared simulated handset from
//! [`mobivine_device`].

pub mod activity;
pub mod context;
pub mod error;
pub mod http;
pub mod intent;
pub mod location;
pub mod pending_intent;
pub mod permissions;
pub mod telephony;
pub mod version;

pub use context::{AndroidPlatform, Context};
pub use error::AndroidException;
pub use version::SdkVersion;
