//! Apache-HttpClient-flavoured HTTP access.
//!
//! The paper's Android HTTP proxy binds to `org.apache.http` (§4.1).
//! This module mirrors that API's shape — request objects executed by a
//! client — on top of the simulated network.

use std::fmt;

use mobivine_device::latency::NativeApi;
use mobivine_device::net::{HttpRequest, HttpResponse, Method, NetworkError};

use crate::context::Context;
use crate::error::AndroidException;
use crate::permissions::Permission;

/// An `org.apache.http`-style request wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpUriRequest {
    inner: HttpRequest,
}

impl HttpUriRequest {
    /// `new HttpGet(uri)`.
    ///
    /// # Errors
    ///
    /// Returns [`AndroidException::IllegalArgument`] for a malformed URI.
    pub fn get(uri: &str) -> Result<Self, AndroidException> {
        HttpRequest::get(uri)
            .map(|inner| Self { inner })
            .map_err(|e| AndroidException::IllegalArgument(e.to_string()))
    }

    /// `new HttpPost(uri)` with an entity body.
    ///
    /// # Errors
    ///
    /// Returns [`AndroidException::IllegalArgument`] for a malformed URI.
    pub fn post(uri: &str, body: impl Into<Vec<u8>>) -> Result<Self, AndroidException> {
        HttpRequest::post(uri, body)
            .map(|inner| Self { inner })
            .map_err(|e| AndroidException::IllegalArgument(e.to_string()))
    }

    /// `setHeader`.
    pub fn set_header(mut self, name: &str, value: &str) -> Self {
        self.inner = self.inner.header(name, value);
        self
    }

    /// The request method.
    pub fn method(&self) -> Method {
        self.inner.method
    }
}

/// `DefaultHttpClient`.
pub struct HttpClient {
    ctx: Context,
}

impl fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HttpClient").finish()
    }
}

impl HttpClient {
    pub(crate) fn new(ctx: Context) -> Self {
        Self { ctx }
    }

    /// `execute(request)` — synchronous round trip. Advances the virtual
    /// clock by the simulated network time.
    ///
    /// # Errors
    ///
    /// - [`AndroidException::Security`] without `INTERNET`.
    /// - [`AndroidException::Io`] for transport failures (unknown host,
    ///   bearer down). HTTP error statuses are returned as responses.
    pub fn execute(&self, request: &HttpUriRequest) -> Result<HttpResponse, AndroidException> {
        self.ctx.enforce_permission(Permission::Internet)?;
        let device = self.ctx.device();
        device.latency().consume(NativeApi::HttpRequest);
        device.power().draw("radio", 1.5);
        match device.network().execute(&request.inner) {
            Ok((response, elapsed_ms)) => {
                device.advance_ms(elapsed_ms);
                Ok(response)
            }
            Err(
                err @ (NetworkError::UnknownHost
                | NetworkError::NetworkDown
                | NetworkError::TimedOut),
            ) => Err(AndroidException::Io(err.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AndroidPlatform;
    use crate::permissions::PermissionSet;
    use crate::version::SdkVersion;
    use mobivine_device::net::HttpResponse as SimResponse;
    use mobivine_device::Device;

    fn platform_with_server() -> AndroidPlatform {
        let device = Device::builder().build();
        device
            .network()
            .register_route("wfm.example", Method::Get, "/tasks", |_| {
                SimResponse::ok(r#"[{"task":"visit depot"}]"#)
            });
        device
            .network()
            .register_route("wfm.example", Method::Post, "/log", |req| {
                SimResponse::ok(format!("logged {} bytes", req.body.len()))
            });
        AndroidPlatform::new(device, SdkVersion::M5Rc15)
    }

    #[test]
    fn get_round_trip() {
        let platform = platform_with_server();
        let ctx = platform.new_context();
        let req = HttpUriRequest::get("http://wfm.example/tasks").unwrap();
        let resp = ctx.http_client().execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_text().contains("visit depot"));
    }

    #[test]
    fn post_carries_body_and_headers() {
        let platform = platform_with_server();
        let ctx = platform.new_context();
        let req = HttpUriRequest::post("http://wfm.example/log", "entry")
            .unwrap()
            .set_header("Content-Type", "text/plain");
        let resp = ctx.http_client().execute(&req).unwrap();
        assert_eq!(resp.body_text(), "logged 5 bytes");
    }

    #[test]
    fn execute_advances_virtual_clock() {
        let platform = platform_with_server();
        let device = platform.device().clone();
        let ctx = platform.new_context();
        let before = device.now_ms();
        let req = HttpUriRequest::get("http://wfm.example/tasks").unwrap();
        ctx.http_client().execute(&req).unwrap();
        assert!(device.now_ms() > before);
    }

    #[test]
    fn unknown_host_is_io_exception() {
        let ctx = platform_with_server().new_context();
        let req = HttpUriRequest::get("http://ghost.example/").unwrap();
        assert!(matches!(
            ctx.http_client().execute(&req),
            Err(AndroidException::Io(_))
        ));
    }

    #[test]
    fn http_404_is_a_response_not_an_exception() {
        let ctx = platform_with_server().new_context();
        let req = HttpUriRequest::get("http://wfm.example/missing").unwrap();
        let resp = ctx.http_client().execute(&req).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn requires_internet_permission() {
        let platform = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        let ctx = platform.new_context();
        let req = HttpUriRequest::get("http://wfm.example/tasks").unwrap();
        assert!(matches!(
            ctx.http_client().execute(&req),
            Err(AndroidException::Security(_))
        ));
    }

    #[test]
    fn malformed_uri_is_illegal_argument() {
        assert!(matches!(
            HttpUriRequest::get("not-a-url"),
            Err(AndroidException::IllegalArgument(_))
        ));
    }
}
