//! Application context and platform handle.
//!
//! On Android every platform interaction is scoped to an application
//! `Context`: system services are looked up from it, broadcast receivers
//! are registered on it, and permissions are attached to it. This
//! context-scoping is exactly the kind of platform-mandated attribute the
//! M-Proxy model moves out of the common API and into a binding-plane
//! *property* (paper §4.1, "Handling platform specific attributes as
//! proxy properties").

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;

use crate::error::AndroidException;
use crate::http::HttpClient;
use crate::intent::{Intent, IntentFilter, IntentReceiver};
use crate::location::LocationManager;
use crate::permissions::{Permission, PermissionSet};
use crate::telephony::{Phone, SmsManager};
use crate::version::SdkVersion;

/// The string names accepted by [`Context::get_system_service`], as on
/// the real platform (`Context.LOCATION_SERVICE` etc.).
pub mod service_names {
    /// Location system service.
    pub const LOCATION_SERVICE: &str = "location";
    /// Telephony (phone call) system service.
    pub const PHONE_SERVICE: &str = "phone";
    /// SMS system service.
    pub const SMS_SERVICE: &str = "sms";
}

/// A system service handle returned by [`Context::get_system_service`].
#[derive(Debug)]
pub enum SystemService {
    /// The location manager.
    Location(LocationManager),
    /// The phone-call interface.
    Phone(Phone),
    /// The SMS manager.
    Sms(SmsManager),
}

/// The simulated Android installation: one device plus the SDK version
/// and application permissions. Create [`Context`]s from it.
#[derive(Clone)]
pub struct AndroidPlatform {
    device: Device,
    version: SdkVersion,
    permissions: Arc<PermissionSet>,
}

impl fmt::Debug for AndroidPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AndroidPlatform")
            .field("version", &self.version)
            .finish()
    }
}

impl AndroidPlatform {
    /// Boots the platform on `device` at the given SDK version with all
    /// permissions granted (the common case in the paper's examples; use
    /// [`AndroidPlatform::with_permissions`] to test denials).
    pub fn new(device: Device, version: SdkVersion) -> Self {
        Self {
            device,
            version,
            permissions: Arc::new(PermissionSet::all_granted()),
        }
    }

    /// Boots the platform with an explicit permission set.
    pub fn with_permissions(
        device: Device,
        version: SdkVersion,
        permissions: PermissionSet,
    ) -> Self {
        Self {
            device,
            version,
            permissions: Arc::new(permissions),
        }
    }

    /// The underlying simulated handset.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The emulated SDK version.
    pub fn version(&self) -> SdkVersion {
        self.version
    }

    /// Creates an application context.
    pub fn new_context(&self) -> Context {
        Context {
            inner: Arc::new(ContextInner {
                device: self.device.clone(),
                version: self.version,
                permissions: Arc::clone(&self.permissions),
                receivers: Mutex::new(Vec::new()),
                next_receiver_id: Mutex::new(0),
                proximity_alerts: Arc::new(Mutex::new(Vec::new())),
            }),
        }
    }
}

struct RegisteredReceiver {
    id: u64,
    filter: IntentFilter,
    receiver: Arc<dyn IntentReceiver>,
}

struct ContextInner {
    device: Device,
    version: SdkVersion,
    permissions: Arc<PermissionSet>,
    receivers: Mutex<Vec<RegisteredReceiver>>,
    next_receiver_id: Mutex<u64>,
    // The location system service's proximity-alert registry: shared by
    // every LocationManager handle looked up from this context, exactly
    // as a real system service would be.
    proximity_alerts: Arc<Mutex<Vec<crate::location::AlertBookkeeping>>>,
}

/// Handle returned by [`Context::register_receiver`]; pass to
/// [`Context::unregister_receiver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReceiverHandle(u64);

/// An application context. Cheap to clone; clones share registration
/// state.
///
/// # Example
///
/// ```
/// use mobivine_android::{AndroidPlatform, SdkVersion};
/// use mobivine_android::context::{service_names, SystemService};
/// use mobivine_device::Device;
///
/// let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
/// let context = platform.new_context();
/// let service = context.get_system_service(service_names::LOCATION_SERVICE).unwrap();
/// assert!(matches!(service, SystemService::Location(_)));
/// ```
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("version", &self.inner.version)
            .field("receivers", &self.inner.receivers.lock().len())
            .finish()
    }
}

impl Context {
    /// The simulated handset behind this context.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The SDK version in force.
    pub fn version(&self) -> SdkVersion {
        self.inner.version
    }

    /// Checks whether the application holds `permission`.
    pub fn check_permission(&self, permission: Permission) -> bool {
        self.inner.permissions.is_granted(permission)
    }

    /// Asserts that `permission` is held.
    ///
    /// # Errors
    ///
    /// Returns [`AndroidException::Security`] naming the missing
    /// permission otherwise.
    pub fn enforce_permission(&self, permission: Permission) -> Result<(), AndroidException> {
        if self.check_permission(permission) {
            Ok(())
        } else {
            Err(AndroidException::Security(format!(
                "requires {}",
                permission.manifest_name()
            )))
        }
    }

    /// Looks up a system service by name, as
    /// `Context.getSystemService(...)` does.
    ///
    /// # Errors
    ///
    /// Returns [`AndroidException::IllegalArgument`] for unknown names.
    pub fn get_system_service(&self, name: &str) -> Result<SystemService, AndroidException> {
        match name {
            service_names::LOCATION_SERVICE => {
                Ok(SystemService::Location(LocationManager::new(self.clone())))
            }
            service_names::PHONE_SERVICE => Ok(SystemService::Phone(Phone::new(self.clone()))),
            service_names::SMS_SERVICE => Ok(SystemService::Sms(SmsManager::new(self.clone()))),
            other => Err(AndroidException::IllegalArgument(format!(
                "unknown system service '{other}'"
            ))),
        }
    }

    /// Typed shortcut for the location service.
    pub fn location_manager(&self) -> LocationManager {
        LocationManager::new(self.clone())
    }

    /// Typed shortcut for the SMS service.
    pub fn sms_manager(&self) -> SmsManager {
        SmsManager::new(self.clone())
    }

    /// Typed shortcut for the phone service.
    pub fn phone(&self) -> Phone {
        Phone::new(self.clone())
    }

    /// Creates an HTTP client (Apache-HttpClient style, not a system
    /// service on the real platform either).
    pub fn http_client(&self) -> HttpClient {
        HttpClient::new(self.clone())
    }

    /// Registers `receiver` for intents matching `filter`.
    pub fn register_receiver(
        &self,
        receiver: Arc<dyn IntentReceiver>,
        filter: IntentFilter,
    ) -> ReceiverHandle {
        let mut next = self.inner.next_receiver_id.lock();
        *next += 1;
        let id = *next;
        drop(next);
        self.inner.receivers.lock().push(RegisteredReceiver {
            id,
            filter,
            receiver,
        });
        ReceiverHandle(id)
    }

    /// Unregisters a receiver. Returns `true` if it was registered.
    pub fn unregister_receiver(&self, handle: ReceiverHandle) -> bool {
        let mut receivers = self.inner.receivers.lock();
        let before = receivers.len();
        receivers.retain(|r| r.id != handle.0);
        receivers.len() != before
    }

    /// The shared proximity-alert registry backing every
    /// [`LocationManager`] handle from this context.
    pub(crate) fn proximity_alerts(&self) -> Arc<Mutex<Vec<crate::location::AlertBookkeeping>>> {
        Arc::clone(&self.inner.proximity_alerts)
    }

    /// Broadcasts `intent` to every matching receiver registered on this
    /// context. Returns the number of receivers that saw it.
    pub fn broadcast(&self, intent: &Intent) -> usize {
        // Snapshot matching receivers so callbacks may (un)register
        // without deadlocking.
        let matching: Vec<Arc<dyn IntentReceiver>> = self
            .inner
            .receivers
            .lock()
            .iter()
            .filter(|r| r.filter.matches(intent))
            .map(|r| Arc::clone(&r.receiver))
            .collect();
        for receiver in &matching {
            receiver.on_receive_intent(self, intent);
        }
        matching.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingReceiver(AtomicUsize);

    impl IntentReceiver for CountingReceiver {
        fn on_receive_intent(&self, _ctxt: &Context, _intent: &Intent) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn context() -> Context {
        AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context()
    }

    #[test]
    fn broadcast_reaches_matching_receivers_only() {
        let ctx = context();
        let hit = Arc::new(CountingReceiver(AtomicUsize::new(0)));
        let miss = Arc::new(CountingReceiver(AtomicUsize::new(0)));
        ctx.register_receiver(Arc::clone(&hit) as _, IntentFilter::new("yes"));
        ctx.register_receiver(Arc::clone(&miss) as _, IntentFilter::new("no"));
        let n = ctx.broadcast(&Intent::new("yes"));
        assert_eq!(n, 1);
        assert_eq!(hit.0.load(Ordering::SeqCst), 1);
        assert_eq!(miss.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unregister_stops_delivery() {
        let ctx = context();
        let r = Arc::new(CountingReceiver(AtomicUsize::new(0)));
        let handle = ctx.register_receiver(Arc::clone(&r) as _, IntentFilter::new("a"));
        assert!(ctx.unregister_receiver(handle));
        assert!(!ctx.unregister_receiver(handle));
        ctx.broadcast(&Intent::new("a"));
        assert_eq!(r.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unknown_service_name_is_illegal_argument() {
        let err = context().get_system_service("bogus").unwrap_err();
        assert!(matches!(err, AndroidException::IllegalArgument(_)));
    }

    #[test]
    fn known_service_names_resolve() {
        let ctx = context();
        assert!(matches!(
            ctx.get_system_service(service_names::LOCATION_SERVICE),
            Ok(SystemService::Location(_))
        ));
        assert!(matches!(
            ctx.get_system_service(service_names::PHONE_SERVICE),
            Ok(SystemService::Phone(_))
        ));
        assert!(matches!(
            ctx.get_system_service(service_names::SMS_SERVICE),
            Ok(SystemService::Sms(_))
        ));
    }

    #[test]
    fn enforce_permission_names_the_missing_permission() {
        let platform = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        let ctx = platform.new_context();
        let err = ctx.enforce_permission(Permission::SendSms).unwrap_err();
        assert_eq!(
            err,
            AndroidException::Security("requires android.permission.SEND_SMS".into())
        );
    }

    #[test]
    fn context_clones_share_receivers() {
        let ctx = context();
        let twin = ctx.clone();
        let r = Arc::new(CountingReceiver(AtomicUsize::new(0)));
        ctx.register_receiver(Arc::clone(&r) as _, IntentFilter::new("a"));
        twin.broadcast(&Intent::new("a"));
        assert_eq!(r.0.load(Ordering::SeqCst), 1);
    }
}
