//! Manifest-style permissions.
//!
//! Android gates platform interfaces behind permissions declared in an
//! application's manifest; calling a gated interface without the
//! permission throws `SecurityException` — one of the exception-set
//! differences the M-Proxy binding plane records.

use std::collections::HashSet;
use std::fmt;

use parking_lot::RwLock;

/// Permissions understood by the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// `android.permission.ACCESS_FINE_LOCATION`.
    AccessFineLocation,
    /// `android.permission.SEND_SMS`.
    SendSms,
    /// `android.permission.RECEIVE_SMS`.
    ReceiveSms,
    /// `android.permission.CALL_PHONE`.
    CallPhone,
    /// `android.permission.INTERNET`.
    Internet,
    /// `android.permission.READ_CONTACTS`.
    ReadContacts,
    /// `android.permission.READ_CALENDAR`.
    ReadCalendar,
}

impl Permission {
    /// The manifest string for this permission.
    pub fn manifest_name(&self) -> &'static str {
        match self {
            Permission::AccessFineLocation => "android.permission.ACCESS_FINE_LOCATION",
            Permission::SendSms => "android.permission.SEND_SMS",
            Permission::ReceiveSms => "android.permission.RECEIVE_SMS",
            Permission::CallPhone => "android.permission.CALL_PHONE",
            Permission::Internet => "android.permission.INTERNET",
            Permission::ReadContacts => "android.permission.READ_CONTACTS",
            Permission::ReadCalendar => "android.permission.READ_CALENDAR",
        }
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.manifest_name())
    }
}

/// The set of permissions granted to an application context.
///
/// # Example
///
/// ```
/// use mobivine_android::permissions::{Permission, PermissionSet};
///
/// let perms = PermissionSet::new();
/// perms.grant(Permission::SendSms);
/// assert!(perms.is_granted(Permission::SendSms));
/// assert!(!perms.is_granted(Permission::CallPhone));
/// ```
#[derive(Debug, Default)]
pub struct PermissionSet {
    granted: RwLock<HashSet<Permission>>,
}

impl PermissionSet {
    /// Creates an empty (nothing granted) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set with every permission granted (the common test
    /// fixture).
    pub fn all_granted() -> Self {
        let set = Self::new();
        for p in [
            Permission::AccessFineLocation,
            Permission::SendSms,
            Permission::ReceiveSms,
            Permission::CallPhone,
            Permission::Internet,
            Permission::ReadContacts,
            Permission::ReadCalendar,
        ] {
            set.grant(p);
        }
        set
    }

    /// Grants a permission.
    pub fn grant(&self, permission: Permission) {
        self.granted.write().insert(permission);
    }

    /// Revokes a permission.
    pub fn revoke(&self, permission: Permission) {
        self.granted.write().remove(&permission);
    }

    /// Returns `true` if `permission` is granted.
    pub fn is_granted(&self, permission: Permission) -> bool {
        self.granted.read().contains(&permission)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_revoke() {
        let set = PermissionSet::new();
        assert!(!set.is_granted(Permission::Internet));
        set.grant(Permission::Internet);
        assert!(set.is_granted(Permission::Internet));
        set.revoke(Permission::Internet);
        assert!(!set.is_granted(Permission::Internet));
    }

    #[test]
    fn all_granted_includes_everything() {
        let set = PermissionSet::all_granted();
        assert!(set.is_granted(Permission::AccessFineLocation));
        assert!(set.is_granted(Permission::ReadCalendar));
    }

    #[test]
    fn manifest_names_use_android_prefix() {
        assert_eq!(
            Permission::SendSms.manifest_name(),
            "android.permission.SEND_SMS"
        );
        assert!(Permission::CallPhone
            .to_string()
            .starts_with("android.permission."));
    }
}
