//! `LocationManager`: current location, location updates, proximity
//! alerts.
//!
//! Reproduces the Android m5-rc15 semantics the paper contrasts with S60
//! (§2): proximity-alert registration produces **two kinds of events**
//! (entering and exiting the region), delivered **repeatedly** via
//! broadcast [`Intent`]s until an **expiration** period elapses. The
//! Android 1.0 variant of the API takes a [`PendingIntent`] instead
//! ([`LocationManager::add_proximity_alert_pending`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::gps::GpsError;
use mobivine_device::latency::NativeApi;

use crate::context::Context;
use crate::error::AndroidException;
use crate::intent::Intent;
use crate::pending_intent::PendingIntent;
use crate::permissions::Permission;

/// Extra key carrying the enter/exit flag on proximity broadcast intents
/// (`LocationManager.KEY_PROXIMITY_ENTERING` on the real platform).
pub const KEY_PROXIMITY_ENTERING: &str = "entering";

/// Interval at which the platform's internal engine re-evaluates
/// registered proximity regions, in virtual milliseconds.
pub const PROXIMITY_CHECK_INTERVAL_MS: u64 = 1_000;

/// Name of the GPS location provider.
pub const GPS_PROVIDER: &str = "gps";
/// Name of the cell-network location provider.
pub const NETWORK_PROVIDER: &str = "network";

/// An Android-flavoured location value (the platform-specific type the
/// paper's Fig. 2(a) passes around, as opposed to the common proxy
/// `Location` type of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    latitude: f64,
    longitude: f64,
    altitude: f64,
    accuracy: f32,
    time: u64,
    speed: f32,
    bearing: f32,
}

impl Location {
    /// `getLatitude()`.
    pub fn latitude(&self) -> f64 {
        self.latitude
    }

    /// `getLongitude()`.
    pub fn longitude(&self) -> f64 {
        self.longitude
    }

    /// `getAltitude()`.
    pub fn altitude(&self) -> f64 {
        self.altitude
    }

    /// `getAccuracy()` — metres, 1-sigma.
    pub fn accuracy(&self) -> f32 {
        self.accuracy
    }

    /// `getTime()` — virtual ms.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// `getSpeed()` — m/s.
    pub fn speed(&self) -> f32 {
        self.speed
    }

    /// `getBearing()` — degrees from north.
    pub fn bearing(&self) -> f32 {
        self.bearing
    }
}

/// Callback for [`LocationManager::request_location_updates`].
pub trait LocationListener: Send + Sync {
    /// Called with each new location.
    fn on_location_changed(&self, location: &Location);
}

/// Handle for a registered proximity alert or update subscription.
#[derive(Debug, Clone)]
pub struct Registration {
    active: Arc<AtomicBool>,
}

impl Registration {
    /// Whether the registration is still delivering events.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    /// Cancels the registration: no further events are delivered and
    /// the platform's recurring checks stop rescheduling.
    pub fn cancel(&self) {
        self.active.store(false, Ordering::SeqCst);
    }
}

/// Internal registry record: the action an alert was registered under
/// plus its cancellation handle. Lives in the context's shared
/// registry.
pub(crate) struct AlertBookkeeping {
    action: String,
    registration: Registration,
}

/// The Android location system service.
pub struct LocationManager {
    ctx: Context,
    alerts: Arc<Mutex<Vec<AlertBookkeeping>>>,
}

impl fmt::Debug for LocationManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocationManager")
            .field("alerts", &self.alerts.lock().len())
            .finish()
    }
}

impl LocationManager {
    pub(crate) fn new(ctx: Context) -> Self {
        let alerts = ctx.proximity_alerts();
        Self { ctx, alerts }
    }

    /// `getCurrentLocation(provider)` — a fresh fix from the named
    /// provider. The network provider reports coarser accuracy.
    ///
    /// # Errors
    ///
    /// - [`AndroidException::Security`] without
    ///   `ACCESS_FINE_LOCATION`.
    /// - [`AndroidException::IllegalArgument`] for unknown providers.
    /// - [`AndroidException::Remote`] when the receiver has no fix.
    pub fn get_current_location(&self, provider: &str) -> Result<Location, AndroidException> {
        let device = self.ctx.device();
        let mut span = mobivine_telemetry::span::ambient::child(
            "platform:LocationManager.getCurrentLocation",
            mobivine_telemetry::span::Plane::Platform,
            device.now_ms(),
        );
        if let Some(s) = span.as_mut() {
            // Providers form a closed vocabulary; mapping to the static
            // constant keeps the traced fast path allocation-free.
            s.attr(
                "provider",
                match provider {
                    GPS_PROVIDER => GPS_PROVIDER,
                    NETWORK_PROVIDER => NETWORK_PROVIDER,
                    _ => "unknown",
                },
            );
        }
        let result = self.get_current_location_inner(provider);
        if let Some(mut s) = span {
            if let Err(e) = &result {
                s.attr("error", e.to_string());
            }
            s.end(device.now_ms());
        }
        result
    }

    fn get_current_location_inner(&self, provider: &str) -> Result<Location, AndroidException> {
        self.ctx
            .enforce_permission(Permission::AccessFineLocation)?;
        let accuracy_multiplier = match provider {
            GPS_PROVIDER => 1.0f32,
            NETWORK_PROVIDER => 10.0,
            other => {
                return Err(AndroidException::IllegalArgument(format!(
                    "unknown location provider '{other}'"
                )))
            }
        };
        let device = self.ctx.device();
        device.latency().consume(NativeApi::GetLocation);
        device.power().draw("gps", 1.0);
        let fix = device
            .gps()
            .current_fix()
            .map_err(|e: GpsError| AndroidException::Remote(e.to_string()))?;
        Ok(Location {
            latitude: fix.point.latitude,
            longitude: fix.point.longitude,
            altitude: fix.point.altitude,
            accuracy: fix.accuracy_m as f32 * accuracy_multiplier,
            time: fix.timestamp_ms,
            speed: fix.speed_mps as f32,
            bearing: fix.bearing_deg as f32,
        })
    }

    /// `requestLocationUpdates(provider, minTime, ...)` — delivers a
    /// location to `listener` every `min_time_ms` of virtual time until
    /// the returned [`Registration`] is removed.
    ///
    /// # Errors
    ///
    /// Same permission and provider errors as
    /// [`LocationManager::get_current_location`].
    pub fn request_location_updates(
        &self,
        provider: &str,
        min_time_ms: u64,
        listener: Arc<dyn LocationListener>,
    ) -> Result<Registration, AndroidException> {
        self.ctx
            .enforce_permission(Permission::AccessFineLocation)?;
        if provider != GPS_PROVIDER && provider != NETWORK_PROVIDER {
            return Err(AndroidException::IllegalArgument(format!(
                "unknown location provider '{other}'",
                other = provider
            )));
        }
        let registration = Registration {
            active: Arc::new(AtomicBool::new(true)),
        };
        let period = min_time_ms.max(1);
        schedule_updates(self.ctx.clone(), registration.clone(), listener, period);
        Ok(registration)
    }

    /// `removeUpdates` / generic cancellation of a [`Registration`].
    pub fn remove_updates(&self, registration: &Registration) {
        registration.cancel();
    }

    /// `addProximityAlert(latitude, longitude, radius, expiration,
    /// intent)` — **SDK m5-rc15 signature**.
    ///
    /// Registers a region; whenever the device crosses the boundary the
    /// platform broadcasts a copy of `intent` on the owning context with
    /// a boolean extra [`KEY_PROXIMITY_ENTERING`]. Events repeat (both
    /// enter and exit) until `expiration_ms` of virtual time elapses;
    /// a negative expiration never expires.
    ///
    /// # Errors
    ///
    /// - [`AndroidException::Security`] without
    ///   `ACCESS_FINE_LOCATION`.
    /// - [`AndroidException::IllegalArgument`] for a non-positive radius
    ///   or invalid coordinates.
    /// - [`AndroidException::ApiRemoved`] when the platform runs SDK 1.0,
    ///   which replaced this overload with
    ///   [`LocationManager::add_proximity_alert_pending`].
    pub fn add_proximity_alert(
        &self,
        latitude: f64,
        longitude: f64,
        radius: f32,
        expiration_ms: i64,
        intent: Intent,
    ) -> Result<Registration, AndroidException> {
        if !self.ctx.version().has_intent_proximity_api() {
            return Err(AndroidException::ApiRemoved {
                api: "LocationManager.addProximityAlert(double,double,float,long,Intent)",
                version: self.ctx.version(),
            });
        }
        self.register_proximity(latitude, longitude, radius, expiration_ms, intent)
    }

    /// `addProximityAlert(..., PendingIntent)` — **Android 1.0
    /// signature**.
    ///
    /// # Errors
    ///
    /// As [`LocationManager::add_proximity_alert`], except the
    /// [`AndroidException::ApiRemoved`] case fires when the platform runs
    /// m5-rc15 (where this overload does not exist yet).
    pub fn add_proximity_alert_pending(
        &self,
        latitude: f64,
        longitude: f64,
        radius: f32,
        expiration_ms: i64,
        pending: PendingIntent,
    ) -> Result<Registration, AndroidException> {
        if !self.ctx.version().has_pending_intent_proximity_api() {
            return Err(AndroidException::ApiRemoved {
                api: "LocationManager.addProximityAlert(double,double,float,long,PendingIntent)",
                version: self.ctx.version(),
            });
        }
        self.register_proximity(
            latitude,
            longitude,
            radius,
            expiration_ms,
            pending.into_intent(),
        )
    }

    /// `removeProximityAlert(intent)` — removes every alert registered
    /// with an intent of the same action. Returns how many were removed.
    pub fn remove_proximity_alert(&self, intent: &Intent) -> usize {
        let mut alerts = self.alerts.lock();
        let mut removed = 0;
        alerts.retain(|a| {
            if a.action == intent.action() {
                a.registration.cancel();
                removed += 1;
                false
            } else {
                true
            }
        });
        removed
    }

    fn register_proximity(
        &self,
        latitude: f64,
        longitude: f64,
        radius: f32,
        expiration_ms: i64,
        intent: Intent,
    ) -> Result<Registration, AndroidException> {
        self.ctx
            .enforce_permission(Permission::AccessFineLocation)?;
        if radius <= 0.0 || radius.is_nan() {
            return Err(AndroidException::IllegalArgument(
                "proximity radius must be positive".to_owned(),
            ));
        }
        if !mobivine_device::GeoPoint::new(latitude, longitude).is_valid() {
            return Err(AndroidException::IllegalArgument(
                "invalid coordinates".to_owned(),
            ));
        }
        let device = self.ctx.device();
        device.latency().consume(NativeApi::AddProximityAlert);
        let registration = Registration {
            active: Arc::new(AtomicBool::new(true)),
        };
        self.alerts.lock().push(AlertBookkeeping {
            action: intent.action().to_owned(),
            registration: registration.clone(),
        });
        let expires_at = if expiration_ms < 0 {
            None
        } else {
            Some(device.now_ms().saturating_add(expiration_ms as u64))
        };
        schedule_proximity_check(ProximityWatch {
            ctx: self.ctx.clone(),
            registration: registration.clone(),
            center: mobivine_device::GeoPoint::new(latitude, longitude),
            radius_m: radius as f64,
            expires_at,
            intent,
            inside: Arc::new(AtomicBool::new(false)),
            first_check: Arc::new(AtomicBool::new(true)),
        });
        Ok(registration)
    }
}

#[derive(Clone)]
struct ProximityWatch {
    ctx: Context,
    registration: Registration,
    center: mobivine_device::GeoPoint,
    radius_m: f64,
    expires_at: Option<u64>,
    intent: Intent,
    inside: Arc<AtomicBool>,
    first_check: Arc<AtomicBool>,
}

fn schedule_proximity_check(watch: ProximityWatch) {
    let device = watch.ctx.device().clone();
    let fire_at = device.now_ms() + PROXIMITY_CHECK_INTERVAL_MS;
    device
        .events()
        .schedule_at(fire_at, "android-proximity-check", move |now| {
            if !watch.registration.is_active() {
                return;
            }
            if let Some(expiry) = watch.expires_at {
                if now >= expiry {
                    watch.registration.cancel();
                    return;
                }
            }
            let device = watch.ctx.device();
            device.power().draw("gps", 0.2);
            let position = device.gps().true_position();
            let inside_now = position.distance_m(&watch.center) <= watch.radius_m;
            let was_inside = watch.inside.swap(inside_now, Ordering::SeqCst);
            let first = watch.first_check.swap(false, Ordering::SeqCst);
            // Android fires an initial "entering" event if registration
            // happens inside the region; exit events only fire on a true
            // inside->outside transition.
            let fire = if first {
                inside_now
            } else {
                inside_now != was_inside
            };
            if fire {
                let intent = watch
                    .intent
                    .clone()
                    .with_bool_extra(KEY_PROXIMITY_ENTERING, inside_now);
                watch.ctx.broadcast(&intent);
            }
            schedule_proximity_check(watch.clone());
        });
}

fn schedule_updates(
    ctx: Context,
    registration: Registration,
    listener: Arc<dyn LocationListener>,
    period_ms: u64,
) {
    let device = ctx.device().clone();
    let fire_at = device.now_ms() + period_ms;
    device
        .events()
        .schedule_at(fire_at, "android-location-update", move |_| {
            if !registration.is_active() {
                return;
            }
            let device = ctx.device();
            device.power().draw("gps", 0.5);
            if let Ok(fix) = device.gps().current_fix() {
                let location = Location {
                    latitude: fix.point.latitude,
                    longitude: fix.point.longitude,
                    altitude: fix.point.altitude,
                    accuracy: fix.accuracy_m as f32,
                    time: fix.timestamp_ms,
                    speed: fix.speed_mps as f32,
                    bearing: fix.bearing_deg as f32,
                };
                listener.on_location_changed(&location);
            }
            schedule_updates(
                ctx.clone(),
                registration.clone(),
                listener.clone(),
                period_ms,
            );
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AndroidPlatform;
    use crate::intent::{IntentFilter, IntentReceiver};
    use crate::permissions::PermissionSet;
    use crate::version::SdkVersion;
    use mobivine_device::movement::MovementModel;
    use mobivine_device::{Device, GeoPoint};
    use std::sync::Mutex as StdMutex;

    const HOME: GeoPoint = GeoPoint {
        latitude: 28.5355,
        longitude: 77.3910,
        altitude: 0.0,
    };

    struct RecordingReceiver {
        events: StdMutex<Vec<bool>>,
    }

    impl IntentReceiver for RecordingReceiver {
        fn on_receive_intent(&self, _ctxt: &Context, intent: &Intent) {
            self.events
                .lock()
                .unwrap()
                .push(intent.get_boolean_extra(KEY_PROXIMITY_ENTERING, false));
        }
    }

    fn platform_moving_through_region() -> (AndroidPlatform, GeoPoint) {
        // Start 500 m west of the region center, walk east at 10 m/s:
        // enters the 100 m region at ~40 s, exits at ~60 s.
        let start = HOME.destination(270.0, 500.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::linear(start, 90.0, 10.0))
            .build();
        device.gps().set_noise_enabled(false);
        (AndroidPlatform::new(device, SdkVersion::M5Rc15), HOME)
    }

    #[test]
    fn get_current_location_returns_fix() {
        let device = Device::builder().position(HOME).build();
        device.gps().set_noise_enabled(false);
        let ctx = AndroidPlatform::new(device, SdkVersion::M5Rc15).new_context();
        let loc = ctx
            .location_manager()
            .get_current_location(GPS_PROVIDER)
            .unwrap();
        assert!((loc.latitude() - HOME.latitude).abs() < 1e-9);
        assert!((loc.longitude() - HOME.longitude).abs() < 1e-9);
    }

    #[test]
    fn network_provider_is_coarser() {
        let device = Device::builder().position(HOME).build();
        let ctx = AndroidPlatform::new(device, SdkVersion::M5Rc15).new_context();
        let lm = ctx.location_manager();
        let gps = lm.get_current_location(GPS_PROVIDER).unwrap();
        let net = lm.get_current_location(NETWORK_PROVIDER).unwrap();
        assert!(net.accuracy() > gps.accuracy());
    }

    #[test]
    fn unknown_provider_is_illegal_argument() {
        let ctx = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context();
        assert!(matches!(
            ctx.location_manager().get_current_location("wifi"),
            Err(AndroidException::IllegalArgument(_))
        ));
    }

    #[test]
    fn location_requires_permission() {
        let platform = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        let ctx = platform.new_context();
        assert!(matches!(
            ctx.location_manager().get_current_location(GPS_PROVIDER),
            Err(AndroidException::Security(_))
        ));
        assert!(matches!(
            ctx.location_manager()
                .add_proximity_alert(0.0, 0.0, 10.0, -1, Intent::new("x")),
            Err(AndroidException::Security(_))
        ));
    }

    #[test]
    fn proximity_alert_fires_enter_then_exit() {
        let (platform, center) = platform_moving_through_region();
        let ctx = platform.new_context();
        let receiver = Arc::new(RecordingReceiver {
            events: StdMutex::new(Vec::new()),
        });
        ctx.register_receiver(Arc::clone(&receiver) as _, IntentFilter::new("PROX"));
        ctx.location_manager()
            .add_proximity_alert(
                center.latitude,
                center.longitude,
                100.0,
                -1,
                Intent::new("PROX"),
            )
            .unwrap();
        platform.device().advance_ms(120_000);
        let events = receiver.events.lock().unwrap();
        assert_eq!(events.as_slice(), &[true, false], "enter then exit");
    }

    #[test]
    fn proximity_alert_repeats_on_reentry() {
        // Loop through the region: expect enter/exit/enter/exit...
        let start = HOME.destination(270.0, 300.0);
        let far = HOME.destination(90.0, 300.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::waypoint_loop(vec![start, far], 20.0))
            .build();
        device.gps().set_noise_enabled(false);
        let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
        let ctx = platform.new_context();
        let receiver = Arc::new(RecordingReceiver {
            events: StdMutex::new(Vec::new()),
        });
        ctx.register_receiver(Arc::clone(&receiver) as _, IntentFilter::new("PROX"));
        ctx.location_manager()
            .add_proximity_alert(
                HOME.latitude,
                HOME.longitude,
                100.0,
                -1,
                Intent::new("PROX"),
            )
            .unwrap();
        platform.device().advance_ms(120_000);
        let events = receiver.events.lock().unwrap();
        assert!(
            events.len() >= 4,
            "expected repeated events, got {events:?}"
        );
        // Events strictly alternate enter/exit.
        for pair in events.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
        assert!(events[0]);
    }

    #[test]
    fn proximity_alert_expires() {
        let (platform, center) = platform_moving_through_region();
        let ctx = platform.new_context();
        let receiver = Arc::new(RecordingReceiver {
            events: StdMutex::new(Vec::new()),
        });
        ctx.register_receiver(Arc::clone(&receiver) as _, IntentFilter::new("PROX"));
        // Expires at 10 s; the region is entered at ~40 s, so nothing
        // should ever fire.
        let reg = ctx
            .location_manager()
            .add_proximity_alert(
                center.latitude,
                center.longitude,
                100.0,
                10_000,
                Intent::new("PROX"),
            )
            .unwrap();
        platform.device().advance_ms(120_000);
        assert!(receiver.events.lock().unwrap().is_empty());
        assert!(!reg.is_active());
    }

    #[test]
    fn remove_proximity_alert_by_intent_action() {
        let (platform, center) = platform_moving_through_region();
        let ctx = platform.new_context();
        let receiver = Arc::new(RecordingReceiver {
            events: StdMutex::new(Vec::new()),
        });
        ctx.register_receiver(Arc::clone(&receiver) as _, IntentFilter::new("PROX"));
        let lm = ctx.location_manager();
        lm.add_proximity_alert(
            center.latitude,
            center.longitude,
            100.0,
            -1,
            Intent::new("PROX"),
        )
        .unwrap();
        assert_eq!(lm.remove_proximity_alert(&Intent::new("PROX")), 1);
        platform.device().advance_ms(120_000);
        assert!(receiver.events.lock().unwrap().is_empty());
    }

    #[test]
    fn invalid_radius_rejected() {
        let ctx = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context();
        assert!(matches!(
            ctx.location_manager()
                .add_proximity_alert(0.0, 0.0, 0.0, -1, Intent::new("x")),
            Err(AndroidException::IllegalArgument(_))
        ));
        assert!(matches!(
            ctx.location_manager()
                .add_proximity_alert(200.0, 0.0, 5.0, -1, Intent::new("x")),
            Err(AndroidException::IllegalArgument(_))
        ));
    }

    #[test]
    fn intent_overload_gone_in_v1_0() {
        let ctx = AndroidPlatform::new(Device::builder().build(), SdkVersion::V1_0).new_context();
        let err = ctx
            .location_manager()
            .add_proximity_alert(0.0, 0.0, 10.0, -1, Intent::new("x"))
            .unwrap_err();
        assert!(matches!(err, AndroidException::ApiRemoved { .. }));
    }

    #[test]
    fn pending_overload_only_in_v1_0() {
        let mk = |v| AndroidPlatform::new(Device::builder().build(), v).new_context();
        let pending = || PendingIntent::get_broadcast(Intent::new("x"));
        assert!(matches!(
            mk(SdkVersion::M5Rc15)
                .location_manager()
                .add_proximity_alert_pending(0.0, 0.0, 10.0, -1, pending()),
            Err(AndroidException::ApiRemoved { .. })
        ));
        assert!(mk(SdkVersion::V1_0)
            .location_manager()
            .add_proximity_alert_pending(0.0, 0.0, 10.0, -1, pending())
            .is_ok());
    }

    #[test]
    fn pending_overload_delivers_events() {
        let (platform, center) = platform_moving_through_region();
        // Rebuild at V1_0 on the same style of device.
        let start = HOME.destination(270.0, 500.0);
        let device = Device::builder()
            .position(start)
            .movement(MovementModel::linear(start, 90.0, 10.0))
            .build();
        device.gps().set_noise_enabled(false);
        let platform_v1 = AndroidPlatform::new(device, SdkVersion::V1_0);
        drop(platform);
        let ctx = platform_v1.new_context();
        let receiver = Arc::new(RecordingReceiver {
            events: StdMutex::new(Vec::new()),
        });
        ctx.register_receiver(Arc::clone(&receiver) as _, IntentFilter::new("PROX"));
        ctx.location_manager()
            .add_proximity_alert_pending(
                center.latitude,
                center.longitude,
                100.0,
                -1,
                PendingIntent::get_broadcast(Intent::new("PROX")),
            )
            .unwrap();
        platform_v1.device().advance_ms(120_000);
        assert_eq!(receiver.events.lock().unwrap().as_slice(), &[true, false]);
    }

    #[test]
    fn location_updates_deliver_periodically_until_removed() {
        struct Collect(StdMutex<Vec<u64>>);
        impl LocationListener for Collect {
            fn on_location_changed(&self, location: &Location) {
                self.0.lock().unwrap().push(location.time());
            }
        }
        let device = Device::builder().position(HOME).build();
        let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
        let ctx = platform.new_context();
        let listener = Arc::new(Collect(StdMutex::new(Vec::new())));
        let lm = ctx.location_manager();
        let reg = lm
            .request_location_updates(GPS_PROVIDER, 2_000, Arc::clone(&listener) as _)
            .unwrap();
        platform.device().advance_ms(10_000);
        let seen = listener.0.lock().unwrap().clone();
        assert_eq!(seen, vec![2_000, 4_000, 6_000, 8_000, 10_000]);
        lm.remove_updates(&reg);
        platform.device().advance_ms(10_000);
        assert_eq!(listener.0.lock().unwrap().len(), 5);
    }

    #[test]
    fn proximity_draws_power() {
        let (platform, center) = platform_moving_through_region();
        let ctx = platform.new_context();
        ctx.location_manager()
            .add_proximity_alert(
                center.latitude,
                center.longitude,
                100.0,
                -1,
                Intent::new("P"),
            )
            .unwrap();
        platform.device().advance_ms(10_000);
        assert!(platform.device().power().component_total("gps") > 0.0);
    }
}
