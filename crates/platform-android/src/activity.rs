//! Activity lifecycle.
//!
//! On Android "the application extends an Activity" (paper §2, point 2) —
//! the development/deployment model is coupled to the middleware. The
//! workforce-management app variants in `mobivine-apps` implement
//! [`Activity`] and are driven by an [`ActivityHost`] that enforces the
//! legal lifecycle transitions.

use std::fmt;

use crate::context::Context;

/// Lifecycle states of an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifecycleState {
    /// Constructed but `onCreate` not yet delivered.
    Initialized,
    /// `onCreate` delivered.
    Created,
    /// `onStart`/`onResume` delivered; interacting with the user.
    Resumed,
    /// `onPause` delivered.
    Paused,
    /// `onStop` delivered.
    Stopped,
    /// `onDestroy` delivered; terminal.
    Destroyed,
}

/// An Android activity: application code invoked at lifecycle edges.
pub trait Activity {
    /// `onCreate` — set up platform interactions here (the paper's
    /// Fig. 2(a)/8(a) register proximity alerts in `onCreate`).
    fn on_create(&mut self, ctx: &Context);

    /// `onResume` — foregrounded.
    fn on_resume(&mut self, _ctx: &Context) {}

    /// `onPause` — backgrounded.
    fn on_pause(&mut self, _ctx: &Context) {}

    /// `onDestroy` — release platform resources.
    fn on_destroy(&mut self, _ctx: &Context) {}
}

/// Error for illegal lifecycle transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleError {
    from: LifecycleState,
    requested: &'static str,
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} from state {:?}", self.requested, self.from)
    }
}

impl std::error::Error for LifecycleError {}

/// Drives an [`Activity`] through its lifecycle on a [`Context`].
pub struct ActivityHost<A: Activity> {
    activity: A,
    ctx: Context,
    state: LifecycleState,
}

impl<A: Activity + fmt::Debug> fmt::Debug for ActivityHost<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivityHost")
            .field("state", &self.state)
            .field("activity", &self.activity)
            .finish()
    }
}

impl<A: Activity> ActivityHost<A> {
    /// Hosts `activity` on `ctx`, in the `Initialized` state.
    pub fn new(activity: A, ctx: Context) -> Self {
        Self {
            activity,
            ctx,
            state: LifecycleState::Initialized,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> LifecycleState {
        self.state
    }

    /// Immutable access to the hosted activity.
    pub fn activity(&self) -> &A {
        &self.activity
    }

    /// Mutable access to the hosted activity.
    pub fn activity_mut(&mut self) -> &mut A {
        &mut self.activity
    }

    /// The context the activity runs on.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Launches the activity: `onCreate` then `onResume`.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] unless the activity is `Initialized`.
    pub fn launch(&mut self) -> Result<(), LifecycleError> {
        if self.state != LifecycleState::Initialized {
            return Err(LifecycleError {
                from: self.state,
                requested: "launch",
            });
        }
        self.activity.on_create(&self.ctx);
        self.state = LifecycleState::Created;
        self.activity.on_resume(&self.ctx);
        self.state = LifecycleState::Resumed;
        Ok(())
    }

    /// Backgrounds the activity: `onPause`.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] unless the activity is `Resumed`.
    pub fn pause(&mut self) -> Result<(), LifecycleError> {
        if self.state != LifecycleState::Resumed {
            return Err(LifecycleError {
                from: self.state,
                requested: "pause",
            });
        }
        self.activity.on_pause(&self.ctx);
        self.state = LifecycleState::Paused;
        Ok(())
    }

    /// Foregrounds a paused activity: `onResume`.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] unless the activity is `Paused`.
    pub fn resume(&mut self) -> Result<(), LifecycleError> {
        if self.state != LifecycleState::Paused {
            return Err(LifecycleError {
                from: self.state,
                requested: "resume",
            });
        }
        self.activity.on_resume(&self.ctx);
        self.state = LifecycleState::Resumed;
        Ok(())
    }

    /// Destroys the activity from any non-terminal state.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError`] if already destroyed.
    pub fn destroy(&mut self) -> Result<(), LifecycleError> {
        if self.state == LifecycleState::Destroyed {
            return Err(LifecycleError {
                from: self.state,
                requested: "destroy",
            });
        }
        self.activity.on_destroy(&self.ctx);
        self.state = LifecycleState::Destroyed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AndroidPlatform;
    use crate::version::SdkVersion;
    use mobivine_device::Device;

    #[derive(Debug, Default)]
    struct Probe {
        log: Vec<&'static str>,
    }

    impl Activity for Probe {
        fn on_create(&mut self, _ctx: &Context) {
            self.log.push("create");
        }
        fn on_resume(&mut self, _ctx: &Context) {
            self.log.push("resume");
        }
        fn on_pause(&mut self, _ctx: &Context) {
            self.log.push("pause");
        }
        fn on_destroy(&mut self, _ctx: &Context) {
            self.log.push("destroy");
        }
    }

    fn host() -> ActivityHost<Probe> {
        let ctx = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15).new_context();
        ActivityHost::new(Probe::default(), ctx)
    }

    #[test]
    fn launch_delivers_create_and_resume() {
        let mut host = host();
        host.launch().unwrap();
        assert_eq!(host.state(), LifecycleState::Resumed);
        assert_eq!(host.activity().log, vec!["create", "resume"]);
    }

    #[test]
    fn pause_resume_cycle() {
        let mut host = host();
        host.launch().unwrap();
        host.pause().unwrap();
        assert_eq!(host.state(), LifecycleState::Paused);
        host.resume().unwrap();
        assert_eq!(host.state(), LifecycleState::Resumed);
        assert_eq!(
            host.activity().log,
            vec!["create", "resume", "pause", "resume"]
        );
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut host = host();
        assert!(host.pause().is_err());
        host.launch().unwrap();
        assert!(host.launch().is_err());
        assert!(host.resume().is_err());
    }

    #[test]
    fn destroy_is_terminal() {
        let mut host = host();
        host.launch().unwrap();
        host.destroy().unwrap();
        assert_eq!(host.state(), LifecycleState::Destroyed);
        assert!(host.destroy().is_err());
        assert!(host.pause().is_err());
    }
}
