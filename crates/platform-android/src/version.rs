//! SDK versioning.
//!
//! The paper's maintenance argument (§5): "the new release 1.0 of Android
//! platform takes a `PendingIntent` object in `addProximityAlert` API,
//! instead of an `Intent` object. ... using our approach, the differences
//! can be absorbed inside proxies for this version of the platform,
//! thereby requiring no changes in the application."

use std::fmt;

/// The Android SDK release the simulated platform emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SdkVersion {
    /// SDK m5-rc15 — the release the paper's proxies were developed on.
    /// `addProximityAlert` takes an `Intent`.
    #[default]
    M5Rc15,
    /// Android 1.0 — `addProximityAlert` takes a `PendingIntent`.
    V1_0,
}

impl SdkVersion {
    /// Whether `LocationManager::add_proximity_alert` (the `Intent`
    /// overload) exists in this release.
    pub fn has_intent_proximity_api(&self) -> bool {
        matches!(self, SdkVersion::M5Rc15)
    }

    /// Whether `LocationManager::add_proximity_alert_pending` (the
    /// `PendingIntent` overload) exists in this release.
    pub fn has_pending_intent_proximity_api(&self) -> bool {
        matches!(self, SdkVersion::V1_0)
    }
}

impl fmt::Display for SdkVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkVersion::M5Rc15 => write!(f, "m5-rc15"),
            SdkVersion::V1_0 => write!(f, "1.0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_proximity_overload_per_version() {
        for v in [SdkVersion::M5Rc15, SdkVersion::V1_0] {
            assert_ne!(
                v.has_intent_proximity_api(),
                v.has_pending_intent_proximity_api()
            );
        }
    }

    #[test]
    fn default_is_the_papers_sdk() {
        assert_eq!(SdkVersion::default(), SdkVersion::M5Rc15);
    }

    #[test]
    fn display_names() {
        assert_eq!(SdkVersion::M5Rc15.to_string(), "m5-rc15");
        assert_eq!(SdkVersion::V1_0.to_string(), "1.0");
    }
}
