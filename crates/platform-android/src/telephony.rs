//! Telephony: `SmsManager` and the `IPhone`-flavoured call interface.
//!
//! The paper implemented its Android SMS proxy on
//! `android.telephony.gsm.SmsManager` and its phone-call proxy on the
//! (then-internal) `android.telephony.IPhone` class (§4.1).

use std::fmt;
use std::sync::Arc;

use mobivine_device::call::{CallId, CallState};
use mobivine_device::latency::NativeApi;
use mobivine_device::sms::{DeliveryStatus, MessageId};

use crate::context::Context;
use crate::error::AndroidException;
use crate::permissions::Permission;

/// Outcome reported to an SMS sent/delivered callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmsResult {
    /// The message reached the recipient.
    Delivered,
    /// The network failed to deliver the message.
    GenericFailure,
}

/// Callback type for delivery notifications (the role played by the
/// `sentIntent`/`deliveryIntent` pending intents on the real platform).
pub type SmsCallback = Box<dyn Fn(MessageId, SmsResult) + Send>;

/// `android.telephony.gsm.SmsManager`.
pub struct SmsManager {
    ctx: Context,
}

impl fmt::Debug for SmsManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmsManager").finish()
    }
}

impl SmsManager {
    pub(crate) fn new(ctx: Context) -> Self {
        Self { ctx }
    }

    /// `sendTextMessage(destinationAddress, scAddress, text, sentIntent,
    /// deliveryIntent)` — submits a text message; the optional callback
    /// fires asynchronously with the delivery outcome.
    ///
    /// # Errors
    ///
    /// - [`AndroidException::Security`] without `SEND_SMS`.
    /// - [`AndroidException::IllegalArgument`] for an empty destination
    ///   or empty body (matching the real API's argument checks).
    pub fn send_text_message(
        &self,
        destination: &str,
        _sc_address: Option<&str>,
        text: &str,
        delivery_callback: Option<SmsCallback>,
    ) -> Result<MessageId, AndroidException> {
        self.ctx.enforce_permission(Permission::SendSms)?;
        if destination.is_empty() {
            return Err(AndroidException::IllegalArgument(
                "destination address is empty".to_owned(),
            ));
        }
        if text.is_empty() {
            return Err(AndroidException::IllegalArgument(
                "message body is empty".to_owned(),
            ));
        }
        let device = self.ctx.device();
        if !device.signal_strength().in_coverage() {
            return Err(AndroidException::Io(
                "radio off network: no signal".to_owned(),
            ));
        }
        device.latency().consume(NativeApi::SendSms);
        device.power().draw("radio", 0.8);
        let report = delivery_callback.map(|cb| {
            Box::new(move |id: MessageId, status: DeliveryStatus, _at: u64| {
                let result = match status {
                    DeliveryStatus::Delivered => SmsResult::Delivered,
                    _ => SmsResult::GenericFailure,
                };
                cb(id, result);
            }) as Box<dyn Fn(MessageId, DeliveryStatus, u64) + Send>
        });
        let id = device
            .smsc()
            .submit(device.msisdn(), destination, text, device.now_ms(), report);
        Ok(id)
    }
}

/// The `IPhone`-style phone-call interface.
pub struct Phone {
    ctx: Context,
}

impl fmt::Debug for Phone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Phone").finish()
    }
}

impl Phone {
    pub(crate) fn new(ctx: Context) -> Self {
        Self { ctx }
    }

    /// `call(number)` — starts dialing. The call progresses as virtual
    /// time advances; poll [`Phone::call_state`].
    ///
    /// # Errors
    ///
    /// - [`AndroidException::Security`] without `CALL_PHONE`.
    /// - [`AndroidException::IllegalArgument`] for an empty number.
    pub fn call(&self, number: &str) -> Result<CallId, AndroidException> {
        self.ctx.enforce_permission(Permission::CallPhone)?;
        if number.is_empty() {
            return Err(AndroidException::IllegalArgument(
                "phone number is empty".to_owned(),
            ));
        }
        let device = self.ctx.device();
        if !device.signal_strength().in_coverage() {
            return Err(AndroidException::Io(
                "radio off network: no signal".to_owned(),
            ));
        }
        device.latency().consume(NativeApi::MakeCall);
        device.power().draw("radio", 2.0);
        Ok(device.call_switch().dial(number, device.now_ms()))
    }

    /// Current state of a placed call.
    pub fn call_state(&self, id: CallId) -> Option<CallState> {
        self.ctx.device().call_switch().state(id)
    }

    /// `endCall`.
    ///
    /// # Errors
    ///
    /// Returns [`AndroidException::IllegalArgument`] if the call does not
    /// exist or is already terminated.
    pub fn end_call(&self, id: CallId) -> Result<(), AndroidException> {
        self.ctx
            .device()
            .call_switch()
            .hangup(id)
            .map_err(|e| AndroidException::IllegalArgument(e.to_string()))
    }

    /// Registers an observer of call-state transitions (the
    /// `PhoneStateListener` role).
    pub fn add_call_listener<F>(&self, listener: F)
    where
        F: Fn(CallId, CallState) + Send + 'static,
    {
        self.ctx.device().call_switch().add_listener(listener);
    }
}

/// Convenience alias used by the native workforce app.
pub type SharedSmsManager = Arc<SmsManager>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AndroidPlatform;
    use crate::permissions::PermissionSet;
    use crate::version::SdkVersion;
    use mobivine_device::call::DisconnectReason;
    use mobivine_device::Device;
    use std::sync::Mutex as StdMutex;

    fn platform() -> AndroidPlatform {
        AndroidPlatform::new(
            Device::builder().msisdn("+91-me").build(),
            SdkVersion::M5Rc15,
        )
    }

    #[test]
    fn sms_reaches_recipient_inbox() {
        let platform = platform();
        let device = platform.device().clone();
        device.smsc().register_address("+91-sup");
        let ctx = platform.new_context();
        ctx.sms_manager()
            .send_text_message("+91-sup", None, "task done", None)
            .unwrap();
        device.advance_ms(1_000);
        let inbox = device.smsc().inbox("+91-sup");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].body, "task done");
        assert_eq!(inbox[0].from, "+91-me");
    }

    #[test]
    fn sms_delivery_callback_fires() {
        let platform = platform();
        let device = platform.device().clone();
        device.smsc().register_address("+91-sup");
        let ctx = platform.new_context();
        let results = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&results);
        ctx.sms_manager()
            .send_text_message(
                "+91-sup",
                None,
                "ping",
                Some(Box::new(move |_id, r| sink.lock().unwrap().push(r))),
            )
            .unwrap();
        device.advance_ms(1_000);
        assert_eq!(results.lock().unwrap().as_slice(), &[SmsResult::Delivered]);
    }

    #[test]
    fn sms_to_unknown_address_reports_failure() {
        let platform = platform();
        let device = platform.device().clone();
        let ctx = platform.new_context();
        let results = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&results);
        ctx.sms_manager()
            .send_text_message(
                "+nobody",
                None,
                "ping",
                Some(Box::new(move |_id, r| sink.lock().unwrap().push(r))),
            )
            .unwrap();
        device.advance_ms(1_000);
        assert_eq!(
            results.lock().unwrap().as_slice(),
            &[SmsResult::GenericFailure]
        );
    }

    #[test]
    fn sms_argument_validation() {
        let ctx = platform().new_context();
        let sms = ctx.sms_manager();
        assert!(matches!(
            sms.send_text_message("", None, "x", None),
            Err(AndroidException::IllegalArgument(_))
        ));
        assert!(matches!(
            sms.send_text_message("+1", None, "", None),
            Err(AndroidException::IllegalArgument(_))
        ));
    }

    #[test]
    fn sms_requires_permission() {
        let platform = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        let ctx = platform.new_context();
        assert!(matches!(
            ctx.sms_manager().send_text_message("+1", None, "x", None),
            Err(AndroidException::Security(_))
        ));
    }

    #[test]
    fn call_progresses_and_ends() {
        let platform = platform();
        let device = platform.device().clone();
        let ctx = platform.new_context();
        let phone = ctx.phone();
        let id = phone.call("+91-sup").unwrap();
        device.advance_ms(10_000);
        assert_eq!(phone.call_state(id), Some(CallState::Active));
        phone.end_call(id).unwrap();
        assert_eq!(
            phone.call_state(id),
            Some(CallState::Disconnected(DisconnectReason::LocalHangup))
        );
    }

    #[test]
    fn call_requires_permission_and_number() {
        let denied = AndroidPlatform::with_permissions(
            Device::builder().build(),
            SdkVersion::M5Rc15,
            PermissionSet::new(),
        );
        assert!(matches!(
            denied.new_context().phone().call("+1"),
            Err(AndroidException::Security(_))
        ));
        assert!(matches!(
            platform().new_context().phone().call(""),
            Err(AndroidException::IllegalArgument(_))
        ));
    }
}
