//! Intents, intent filters, and broadcast receivers.
//!
//! Android's event mechanism: components broadcast [`Intent`]s; an
//! [`IntentReceiver`] registered with a matching [`IntentFilter`]
//! receives them. Proximity alerts are delivered this way, which is the
//! syntactic fragmentation the paper highlights — S60 instead uses a
//! listener object with a `proximityEvent` method.

use std::collections::HashMap;
use std::fmt;

/// A typed extra attached to an [`Intent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Extra {
    /// Boolean extra (`getBooleanExtra`).
    Bool(bool),
    /// 32-bit integer extra.
    Int(i32),
    /// 64-bit integer extra.
    Long(i64),
    /// Double extra.
    Double(f64),
    /// String extra.
    Str(String),
}

/// An Android intent: an action string plus typed extras.
///
/// # Example
///
/// ```
/// use mobivine_android::intent::Intent;
///
/// let intent = Intent::new("com.ibm.proxies.android.intent.action.PROXIMITY_ALERT")
///     .with_bool_extra("entering", true);
/// assert_eq!(intent.get_boolean_extra("entering", false), true);
/// assert_eq!(intent.get_boolean_extra("missing", false), false);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Intent {
    action: String,
    extras: HashMap<String, Extra>,
}

impl Intent {
    /// Creates an intent with the given action string.
    pub fn new(action: &str) -> Self {
        Self {
            action: action.to_owned(),
            extras: HashMap::new(),
        }
    }

    /// The action string (`getAction`).
    pub fn action(&self) -> &str {
        &self.action
    }

    /// Adds a boolean extra, returning `self` for chaining.
    pub fn with_bool_extra(mut self, key: &str, value: bool) -> Self {
        self.extras.insert(key.to_owned(), Extra::Bool(value));
        self
    }

    /// Adds an integer extra.
    pub fn with_int_extra(mut self, key: &str, value: i32) -> Self {
        self.extras.insert(key.to_owned(), Extra::Int(value));
        self
    }

    /// Adds a long extra.
    pub fn with_long_extra(mut self, key: &str, value: i64) -> Self {
        self.extras.insert(key.to_owned(), Extra::Long(value));
        self
    }

    /// Adds a double extra.
    pub fn with_double_extra(mut self, key: &str, value: f64) -> Self {
        self.extras.insert(key.to_owned(), Extra::Double(value));
        self
    }

    /// Adds a string extra.
    pub fn with_string_extra(mut self, key: &str, value: &str) -> Self {
        self.extras
            .insert(key.to_owned(), Extra::Str(value.to_owned()));
        self
    }

    /// `getBooleanExtra(key, default)`.
    pub fn get_boolean_extra(&self, key: &str, default: bool) -> bool {
        match self.extras.get(key) {
            Some(Extra::Bool(b)) => *b,
            _ => default,
        }
    }

    /// `getIntExtra(key, default)`.
    pub fn get_int_extra(&self, key: &str, default: i32) -> i32 {
        match self.extras.get(key) {
            Some(Extra::Int(i)) => *i,
            _ => default,
        }
    }

    /// `getLongExtra(key, default)`.
    pub fn get_long_extra(&self, key: &str, default: i64) -> i64 {
        match self.extras.get(key) {
            Some(Extra::Long(l)) => *l,
            _ => default,
        }
    }

    /// `getDoubleExtra(key, default)`.
    pub fn get_double_extra(&self, key: &str, default: f64) -> f64 {
        match self.extras.get(key) {
            Some(Extra::Double(d)) => *d,
            _ => default,
        }
    }

    /// `getStringExtra(key)`.
    pub fn get_string_extra(&self, key: &str) -> Option<&str> {
        match self.extras.get(key) {
            Some(Extra::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl fmt::Display for Intent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Intent({})", self.action)
    }
}

/// A filter matching intents by action string.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntentFilter {
    actions: Vec<String>,
}

impl IntentFilter {
    /// A filter matching a single action.
    pub fn new(action: &str) -> Self {
        Self {
            actions: vec![action.to_owned()],
        }
    }

    /// Adds another matching action.
    pub fn add_action(&mut self, action: &str) -> &mut Self {
        self.actions.push(action.to_owned());
        self
    }

    /// Whether this filter matches `intent`.
    pub fn matches(&self, intent: &Intent) -> bool {
        self.actions.iter().any(|a| a == intent.action())
    }
}

/// A broadcast receiver (`onReceiveIntent` in SDK m5-rc15 naming).
///
/// Implementations must be `Send + Sync`; the platform invokes them while
/// pumping the device event queue.
pub trait IntentReceiver: Send + Sync {
    /// Called when a broadcast intent matches the receiver's filter.
    /// `ctxt` is the context the receiver was registered on.
    fn on_receive_intent(&self, ctxt: &crate::context::Context, intent: &Intent);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_extras_round_trip() {
        let i = Intent::new("a")
            .with_bool_extra("b", true)
            .with_int_extra("i", -4)
            .with_long_extra("l", 1 << 40)
            .with_double_extra("d", 2.5)
            .with_string_extra("s", "hey");
        assert!(i.get_boolean_extra("b", false));
        assert_eq!(i.get_int_extra("i", 0), -4);
        assert_eq!(i.get_long_extra("l", 0), 1 << 40);
        assert_eq!(i.get_double_extra("d", 0.0), 2.5);
        assert_eq!(i.get_string_extra("s"), Some("hey"));
    }

    #[test]
    fn missing_or_mistyped_extra_returns_default() {
        let i = Intent::new("a").with_int_extra("i", 3);
        assert_eq!(i.get_int_extra("nope", 9), 9);
        // Type mismatch also falls back to the default.
        assert!(!i.get_boolean_extra("i", false));
        assert_eq!(i.get_string_extra("i"), None);
    }

    #[test]
    fn filter_matches_by_action() {
        let f = IntentFilter::new("x.ACTION");
        assert!(f.matches(&Intent::new("x.ACTION")));
        assert!(!f.matches(&Intent::new("y.ACTION")));
    }

    #[test]
    fn filter_with_multiple_actions() {
        let mut f = IntentFilter::new("a");
        f.add_action("b");
        assert!(f.matches(&Intent::new("a")));
        assert!(f.matches(&Intent::new("b")));
        assert!(!f.matches(&Intent::new("c")));
    }
}
