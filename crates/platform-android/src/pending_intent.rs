//! `PendingIntent` — the Android 1.0 wrapper around an [`Intent`].
//!
//! Android 1.0 changed `addProximityAlert` to accept a `PendingIntent`
//! instead of a raw `Intent` (paper §5, Maintenance). A pending intent is
//! a token that lets the system fire the wrapped intent later on the
//! application's behalf.

use crate::intent::Intent;

/// A handle that allows the platform to broadcast the wrapped intent at
/// a later time.
///
/// # Example
///
/// ```
/// use mobivine_android::intent::Intent;
/// use mobivine_android::pending_intent::PendingIntent;
///
/// let pi = PendingIntent::get_broadcast(Intent::new("x.PROXIMITY"));
/// assert_eq!(pi.intent().action(), "x.PROXIMITY");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PendingIntent {
    intent: Intent,
}

impl PendingIntent {
    /// Wraps `intent` for later broadcast (mirrors
    /// `PendingIntent.getBroadcast`).
    pub fn get_broadcast(intent: Intent) -> Self {
        Self { intent }
    }

    /// The wrapped intent.
    pub fn intent(&self) -> &Intent {
        &self.intent
    }

    /// Consumes the wrapper and returns the intent.
    pub fn into_intent(self) -> Intent {
        self.intent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_unwraps() {
        let pi = PendingIntent::get_broadcast(Intent::new("a").with_int_extra("k", 1));
        assert_eq!(pi.intent().get_int_extra("k", 0), 1);
        assert_eq!(pi.into_intent().action(), "a");
    }
}
