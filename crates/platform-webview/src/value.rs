//! Dynamically-typed JavaScript values.
//!
//! Everything that crosses the `addJavaScriptInterface` bridge is a
//! [`JsValue`]: JavaScript has no `double` vs `float` vs `long`, which is
//! precisely why the M-Proxy *syntactic plane* carries a separate
//! JavaScript binding (paper §3.1).

use std::collections::BTreeMap;
use std::fmt;

/// A JavaScript value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum JsValue {
    /// `undefined`.
    #[default]
    Undefined,
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (always an IEEE double, as in JavaScript).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsValue>),
    /// An object (string-keyed).
    Object(BTreeMap<String, JsValue>),
}

impl JsValue {
    /// Builds a string value.
    pub fn str(s: &str) -> Self {
        JsValue::Str(s.to_owned())
    }

    /// Builds an object from key/value pairs.
    pub fn object<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, JsValue)>,
    {
        JsValue::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Whether the value is `undefined` or `null`.
    pub fn is_nullish(&self) -> bool {
        matches!(self, JsValue::Undefined | JsValue::Null)
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsValue]> {
        match self {
            JsValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object property lookup (`value.key`); `undefined` for
    /// non-objects or missing keys, as in JavaScript.
    pub fn get(&self, key: &str) -> JsValue {
        match self {
            JsValue::Object(map) => map.get(key).cloned().unwrap_or(JsValue::Undefined),
            _ => JsValue::Undefined,
        }
    }

    /// Borrowed object property lookup: `None` for non-objects or
    /// missing keys. Unlike [`JsValue::get`] this never clones the
    /// value — hot callers use it to read fields without allocating.
    pub fn get_ref(&self, key: &str) -> Option<&JsValue> {
        match self {
            JsValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Borrowed iteration over an object's entries in key order; empty
    /// for non-objects.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &JsValue)> {
        match self {
            JsValue::Object(map) => Some(map.iter().map(|(k, v)| (k.as_str(), v))),
            _ => None,
        }
        .into_iter()
        .flatten()
    }

    /// JavaScript truthiness.
    pub fn is_truthy(&self) -> bool {
        match self {
            JsValue::Undefined | JsValue::Null => false,
            JsValue::Bool(b) => *b,
            JsValue::Number(n) => *n != 0.0 && !n.is_nan(),
            JsValue::Str(s) => !s.is_empty(),
            JsValue::Array(_) | JsValue::Object(_) => true,
        }
    }

    /// The `typeof` string.
    pub fn type_of(&self) -> &'static str {
        match self {
            JsValue::Undefined => "undefined",
            JsValue::Null | JsValue::Array(_) | JsValue::Object(_) => "object",
            JsValue::Bool(_) => "boolean",
            JsValue::Number(_) => "number",
            JsValue::Str(_) => "string",
        }
    }
}

impl fmt::Display for JsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsValue::Undefined => write!(f, "undefined"),
            JsValue::Null => write!(f, "null"),
            JsValue::Bool(b) => write!(f, "{b}"),
            JsValue::Number(n) => write!(f, "{n}"),
            JsValue::Str(s) => write!(f, "{s}"),
            JsValue::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsValue::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for JsValue {
    fn from(b: bool) -> Self {
        JsValue::Bool(b)
    }
}

impl From<f64> for JsValue {
    fn from(n: f64) -> Self {
        JsValue::Number(n)
    }
}

impl From<i32> for JsValue {
    fn from(n: i32) -> Self {
        JsValue::Number(n as f64)
    }
}

impl From<u64> for JsValue {
    fn from(n: u64) -> Self {
        JsValue::Number(n as f64)
    }
}

impl From<&str> for JsValue {
    fn from(s: &str) -> Self {
        JsValue::Str(s.to_owned())
    }
}

impl From<String> for JsValue {
    fn from(s: String) -> Self {
        JsValue::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_types() {
        assert_eq!(JsValue::Number(4.5).as_number(), Some(4.5));
        assert_eq!(JsValue::Bool(true).as_bool(), Some(true));
        assert_eq!(JsValue::str("x").as_str(), Some("x"));
        assert_eq!(JsValue::Number(1.0).as_str(), None);
        assert_eq!(JsValue::str("1").as_number(), None);
    }

    #[test]
    fn object_get_behaves_like_javascript() {
        let obj = JsValue::object([("lat", JsValue::Number(28.5))]);
        assert_eq!(obj.get("lat"), JsValue::Number(28.5));
        assert_eq!(obj.get("missing"), JsValue::Undefined);
        assert_eq!(JsValue::Number(1.0).get("x"), JsValue::Undefined);
    }

    #[test]
    fn get_ref_borrows_without_cloning() {
        let obj = JsValue::object([
            ("lat", JsValue::Number(28.5)),
            ("name", JsValue::str("fix")),
        ]);
        assert_eq!(obj.get_ref("lat").and_then(JsValue::as_number), Some(28.5));
        assert!(obj.get_ref("missing").is_none());
        assert!(JsValue::Number(1.0).get_ref("x").is_none());
        let keys: Vec<&str> = obj.entries().map(|(k, _)| k).collect();
        assert_eq!(keys, ["lat", "name"]);
        assert_eq!(JsValue::Null.entries().count(), 0);
    }

    #[test]
    fn truthiness_table() {
        assert!(!JsValue::Undefined.is_truthy());
        assert!(!JsValue::Null.is_truthy());
        assert!(!JsValue::Bool(false).is_truthy());
        assert!(!JsValue::Number(0.0).is_truthy());
        assert!(!JsValue::Number(f64::NAN).is_truthy());
        assert!(!JsValue::str("").is_truthy());
        assert!(JsValue::Number(-1.0).is_truthy());
        assert!(JsValue::str("0").is_truthy());
        assert!(JsValue::Array(vec![]).is_truthy());
        assert!(JsValue::Object(Default::default()).is_truthy());
    }

    #[test]
    fn typeof_matches_javascript() {
        assert_eq!(JsValue::Undefined.type_of(), "undefined");
        assert_eq!(JsValue::Null.type_of(), "object");
        assert_eq!(JsValue::Array(vec![]).type_of(), "object");
        assert_eq!(JsValue::Number(1.0).type_of(), "number");
    }

    #[test]
    fn from_impls() {
        assert_eq!(JsValue::from(3), JsValue::Number(3.0));
        assert_eq!(JsValue::from("a"), JsValue::str("a"));
        assert_eq!(JsValue::from(true), JsValue::Bool(true));
    }

    #[test]
    fn display_renders_compound_values() {
        let v = JsValue::object([
            ("a", JsValue::Array(vec![1.into(), 2.into()])),
            ("b", JsValue::Null),
        ]);
        assert_eq!(v.to_string(), "{a:[1,2],b:null}");
    }

    #[test]
    fn is_nullish() {
        assert!(JsValue::Undefined.is_nullish());
        assert!(JsValue::Null.is_nullish());
        assert!(!JsValue::Bool(false).is_nullish());
    }
}
