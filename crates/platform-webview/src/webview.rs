//! The WebView page context.
//!
//! A [`WebView`] hosts "applications written in Web content language"
//! over an Android [`Context`]. Java objects become JavaScript entities
//! via [`WebView::add_javascript_interface`]; the page's JavaScript code
//! reaches them through [`WebView::js_interface`].

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_android::Context;

use crate::bridge::{BridgeError, ErrorCode, JavaScriptInterface};
use crate::notification::NotificationTable;
use crate::value::JsValue;
use crate::wire::{BatchReplies, NodeId, WireBuf, WireValue};

/// A WebView page hosting JavaScript with injected Java interfaces.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobivine_android::{AndroidPlatform, SdkVersion};
/// use mobivine_device::Device;
/// use mobivine_webview::bridge::{BridgeError, JavaScriptInterface};
/// use mobivine_webview::{JsValue, WebView};
///
/// struct Echo;
/// impl JavaScriptInterface for Echo {
///     fn call(&self, method: &str, args: &[JsValue]) -> Result<JsValue, BridgeError> {
///         match method {
///             "echo" => Ok(args.first().cloned().unwrap_or(JsValue::Undefined)),
///             other => Err(BridgeError::bridge(format!("no method {other}"))),
///         }
///     }
/// }
///
/// let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
/// let webview = WebView::new(platform.new_context());
/// webview.add_javascript_interface(Arc::new(Echo), "EchoBridge");
/// let handle = webview.js_interface("EchoBridge").unwrap();
/// let out = handle.invoke("echo", &[JsValue::str("hi")]).unwrap();
/// assert_eq!(out, JsValue::str("hi"));
/// ```
pub struct WebView {
    ctx: Context,
    interfaces: Arc<Mutex<HashMap<String, Arc<dyn JavaScriptInterface>>>>,
    notifications: Arc<NotificationTable>,
    loaded: std::sync::atomic::AtomicBool,
    crossings: Arc<AtomicU64>,
}

impl fmt::Debug for WebView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WebView")
            .field("interfaces", &self.interfaces.lock().len())
            .finish()
    }
}

impl WebView {
    /// Creates a page context on an Android application context. The
    /// page starts loaded.
    pub fn new(ctx: Context) -> Self {
        Self {
            ctx,
            interfaces: Arc::new(Mutex::new(HashMap::new())),
            notifications: Arc::new(NotificationTable::new()),
            loaded: std::sync::atomic::AtomicBool::new(true),
            crossings: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total bridge crossings made through handles of this page, across
    /// every invocation flavour. A batched call of N frames counts as
    /// one crossing — the whole point of batching.
    pub fn bridge_crossings(&self) -> u64 {
        self.crossings.load(Ordering::Relaxed)
    }

    /// Whether the page is still loaded.
    pub fn is_loaded(&self) -> bool {
        self.loaded.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Unloads the page: the JavaScript context is destroyed, so every
    /// injected interface disappears and every notification row closes
    /// (pending and future notifications are dropped). Idempotent.
    pub fn unload(&self) {
        self.loaded
            .store(false, std::sync::atomic::Ordering::SeqCst);
        self.interfaces.lock().clear();
        self.notifications.close_all();
    }

    /// The Android context this page runs on.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// The page's notification table (shared by all wrappers injected
    /// into this page).
    pub fn notifications(&self) -> &Arc<NotificationTable> {
        &self.notifications
    }

    /// `addJavaScriptInterface(object, name)` — injects a Java object
    /// as a JavaScript global. Re-injecting a name replaces the object,
    /// as on the real platform. Injection into an unloaded page is a
    /// no-op (there is no JavaScript context to inject into).
    pub fn add_javascript_interface(&self, object: Arc<dyn JavaScriptInterface>, name: &str) {
        if !self.is_loaded() {
            return;
        }
        self.interfaces.lock().insert(name.to_owned(), object);
    }

    /// Removes an injected interface. Returns `true` if it existed.
    pub fn remove_javascript_interface(&self, name: &str) -> bool {
        self.interfaces.lock().remove(name).is_some()
    }

    /// Resolves an injected interface from the JavaScript side.
    pub fn js_interface(&self, name: &str) -> Option<JsInterfaceHandle> {
        self.interfaces
            .lock()
            .get(name)
            .map(|object| JsInterfaceHandle {
                name: name.to_owned(),
                object: Arc::clone(object),
                crossings: Arc::clone(&self.crossings),
                scratch: Arc::new(Mutex::new(WireScratch::default())),
            })
    }

    /// Names of all injected interfaces, sorted.
    pub fn interface_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.interfaces.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

/// The reusable call/reply arena pair behind one interface handle —
/// "one scratch pair per device/handle". Cleared (capacity retained)
/// at the start of every wire invocation, so a warmed handle crosses
/// the bridge without allocating.
#[derive(Default)]
pub struct WireScratch {
    call: WireBuf,
    reply: WireBuf,
}

/// The JavaScript-side view of an injected Java object.
#[derive(Clone)]
pub struct JsInterfaceHandle {
    name: String,
    object: Arc<dyn JavaScriptInterface>,
    crossings: Arc<AtomicU64>,
    scratch: Arc<Mutex<WireScratch>>,
}

impl fmt::Debug for JsInterfaceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsInterfaceHandle")
            .field("name", &self.name)
            .finish()
    }
}

impl JsInterfaceHandle {
    /// The global name the interface was injected under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invokes a method across the bridge. Function-valued arguments
    /// cannot cross (paper footnote 8); the bridge only carries
    /// [`JsValue`]s, so callback wiring must go through the
    /// notification table.
    ///
    /// # Errors
    ///
    /// Propagates the wrapper's [`BridgeError`] (an error code plus
    /// message, per the paper's exception mapping).
    pub fn invoke(&self, method: &str, args: &[JsValue]) -> Result<JsValue, BridgeError> {
        self.crossings.fetch_add(1, Ordering::Relaxed);
        self.object.call(method, args)
    }

    /// Invokes a method across the bridge carrying an optional W3C
    /// `traceparent` string, the page-side half of cross-bridge trace
    /// propagation. Wrappers that are not trace-aware ignore it.
    ///
    /// # Errors
    ///
    /// Same as [`JsInterfaceHandle::invoke`].
    pub fn invoke_traced(
        &self,
        method: &str,
        args: &[JsValue],
        traceparent: Option<&str>,
    ) -> Result<JsValue, BridgeError> {
        self.crossings.fetch_add(1, Ordering::Relaxed);
        self.object.call_traced(method, args, traceparent)
    }

    /// Invokes a method across the bridge carrying the full marshalled
    /// call context: an optional W3C `traceparent` plus the caller's
    /// remaining deadline budget in virtual milliseconds. Wrappers that
    /// are neither trace- nor deadline-aware ignore both.
    ///
    /// # Errors
    ///
    /// Same as [`JsInterfaceHandle::invoke`]; deadline-aware wrappers
    /// additionally fail fast with a deadline-coded error when the
    /// budget is already exhausted.
    pub fn invoke_with_context(
        &self,
        method: &str,
        args: &[JsValue],
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<JsValue, BridgeError> {
        self.crossings.fetch_add(1, Ordering::Relaxed);
        self.object
            .call_with_context(method, args, traceparent, deadline_budget_ms)
    }

    /// Invokes a method through the zero-copy wire path: `encode` writes
    /// the argument array into the handle's reusable call arena,
    /// [`JavaScriptInterface::call_wire`] services it, and `decode`
    /// reads the reply view. Both arenas are cleared (capacity retained)
    /// first, so a warmed handle allocates nothing here.
    ///
    /// # Errors
    ///
    /// Same as [`JsInterfaceHandle::invoke`].
    pub fn invoke_wire<T>(
        &self,
        method: &str,
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
        encode: impl FnOnce(&mut WireBuf) -> NodeId,
        decode: impl FnOnce(WireValue<'_>) -> Result<T, BridgeError>,
    ) -> Result<T, BridgeError> {
        self.crossings.fetch_add(1, Ordering::Relaxed);
        let mut scratch = self.scratch.lock();
        let WireScratch { call, reply } = &mut *scratch;
        call.clear();
        reply.clear();
        let args = encode(call);
        let node = self.object.call_wire(
            method,
            call.view(args),
            reply,
            traceparent,
            deadline_budget_ms,
        )?;
        decode(reply.view(node))
    }

    /// One crossing carrying N queued calls: `encode` pushes call
    /// frames (method + argument array each), the interface services
    /// them via [`JavaScriptInterface::call_batch`], and `decode` reads
    /// the reply frames — one per call, in order, each carrying either
    /// a result view or its own error code.
    ///
    /// # Errors
    ///
    /// Returns a bridge-coded error when the interface produced a
    /// mismatched reply count; per-entry failures are surfaced to
    /// `decode` inside the reply cursor instead of failing the batch.
    pub fn invoke_batch<T>(
        &self,
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
        encode: impl FnOnce(&mut WireBuf),
        decode: impl FnOnce(BatchReplies<'_>) -> Result<T, BridgeError>,
    ) -> Result<T, BridgeError> {
        self.crossings.fetch_add(1, Ordering::Relaxed);
        let mut scratch = self.scratch.lock();
        let WireScratch { call, reply } = &mut *scratch;
        call.clear();
        reply.clear();
        encode(call);
        self.object
            .call_batch(call, reply, traceparent, deadline_budget_ms);
        if reply.reply_count() != call.frame_count() {
            return Err(BridgeError {
                code: ErrorCode::Bridge,
                message: format!(
                    "batch of {} frames produced {} replies",
                    call.frame_count(),
                    reply.reply_count()
                ),
            });
        }
        decode(reply.replies())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::ErrorCode;
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_device::Device;

    struct Adder;

    impl JavaScriptInterface for Adder {
        fn call(&self, method: &str, args: &[JsValue]) -> Result<JsValue, BridgeError> {
            match method {
                "add" => {
                    let a = crate::bridge::args::number(args, 0)?;
                    let b = crate::bridge::args::number(args, 1)?;
                    Ok(JsValue::Number(a + b))
                }
                other => Err(BridgeError::bridge(format!("unknown method {other}"))),
            }
        }
    }

    fn webview() -> WebView {
        let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
        WebView::new(platform.new_context())
    }

    #[test]
    fn inject_and_invoke() {
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Calc");
        let calc = wv.js_interface("Calc").unwrap();
        let out = calc
            .invoke("add", &[JsValue::Number(2.0), JsValue::Number(3.0)])
            .unwrap();
        assert_eq!(out, JsValue::Number(5.0));
    }

    #[test]
    fn missing_interface_is_none() {
        assert!(webview().js_interface("Ghost").is_none());
    }

    #[test]
    fn unknown_method_is_bridge_error() {
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Calc");
        let err = wv
            .js_interface("Calc")
            .unwrap()
            .invoke("mul", &[])
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Bridge);
    }

    #[test]
    fn type_mismatch_is_bridge_error() {
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Calc");
        let err = wv
            .js_interface("Calc")
            .unwrap()
            .invoke("add", &[JsValue::str("two"), JsValue::Number(1.0)])
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Bridge);
        assert!(err.message.contains("argument 0"));
    }

    #[test]
    fn reinjection_replaces_and_removal_works() {
        struct Zero;
        impl JavaScriptInterface for Zero {
            fn call(&self, _m: &str, _a: &[JsValue]) -> Result<JsValue, BridgeError> {
                Ok(JsValue::Number(0.0))
            }
        }
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "X");
        wv.add_javascript_interface(Arc::new(Zero), "X");
        let out = wv
            .js_interface("X")
            .unwrap()
            .invoke("anything", &[])
            .unwrap();
        assert_eq!(out, JsValue::Number(0.0));
        assert!(wv.remove_javascript_interface("X"));
        assert!(!wv.remove_javascript_interface("X"));
        assert!(wv.js_interface("X").is_none());
    }

    #[test]
    fn interface_names_sorted() {
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Zeta");
        wv.add_javascript_interface(Arc::new(Adder), "Alpha");
        assert_eq!(wv.interface_names(), vec!["Alpha", "Zeta"]);
    }

    #[test]
    fn call_only_interface_services_wire_invocations() {
        // `Adder` implements nothing but `call`; the default-delegation
        // chain (call_wire → call_with_context → call_traced → call)
        // must still service the zero-copy entry point.
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Calc");
        let calc = wv.js_interface("Calc").unwrap();
        let sum = calc
            .invoke_wire(
                "add",
                Some("00-0000000000000000000000000000002a-000000000000002a-01"),
                Some(5_000),
                |buf| {
                    let mark = buf.begin();
                    let a = buf.push_number(2.0);
                    buf.stage_item(a);
                    let b = buf.push_number(3.0);
                    buf.stage_item(b);
                    buf.end_array(mark)
                },
                |reply| {
                    reply
                        .as_number()
                        .ok_or_else(|| BridgeError::bridge("expected a number"))
                },
            )
            .unwrap();
        assert_eq!(sum, 5.0);
    }

    #[test]
    fn call_only_interface_services_batches_with_per_entry_errors() {
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Calc");
        let calc = wv.js_interface("Calc").unwrap();
        let out = calc
            .invoke_batch(
                None,
                None,
                |buf| {
                    let mark = buf.begin();
                    let a = buf.push_number(1.0);
                    buf.stage_item(a);
                    let b = buf.push_number(2.0);
                    buf.stage_item(b);
                    let args = buf.end_array(mark);
                    buf.push_frame("add", args);
                    let bad = buf.empty_args();
                    buf.push_frame("mul", bad);
                    let args2 = {
                        let mark = buf.begin();
                        let a = buf.push_number(10.0);
                        buf.stage_item(a);
                        let b = buf.push_number(20.0);
                        buf.stage_item(b);
                        buf.end_array(mark)
                    };
                    buf.push_frame("add", args2);
                },
                |replies| {
                    Ok(replies
                        .map(|r| match r {
                            Ok(v) => Ok(v.as_number().unwrap()),
                            Err((code, _)) => Err(code),
                        })
                        .collect::<Vec<_>>())
                },
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Ok(3.0));
        assert_eq!(out[1], Err(ErrorCode::Bridge));
        assert_eq!(out[2], Ok(30.0));
    }

    #[test]
    fn crossings_count_every_invocation_once() {
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Calc");
        let calc = wv.js_interface("Calc").unwrap();
        assert_eq!(wv.bridge_crossings(), 0);
        let _ = calc.invoke("add", &[JsValue::Number(1.0), JsValue::Number(1.0)]);
        let _ = calc.invoke_with_context(
            "add",
            &[JsValue::Number(1.0), JsValue::Number(1.0)],
            None,
            None,
        );
        // A three-frame batch is still one crossing.
        let _ = calc.invoke_batch(
            None,
            None,
            |buf| {
                for _ in 0..3 {
                    let args = buf.empty_args();
                    buf.push_frame("mul", args);
                }
            },
            |_replies| Ok(()),
        );
        assert_eq!(wv.bridge_crossings(), 3);
    }

    #[test]
    fn unload_destroys_the_javascript_context() {
        let wv = webview();
        wv.add_javascript_interface(Arc::new(Adder), "Calc");
        let id = wv.notifications().allocate();
        wv.notifications().post(id, JsValue::Number(1.0));
        assert!(wv.is_loaded());
        wv.unload();
        assert!(!wv.is_loaded());
        assert!(wv.js_interface("Calc").is_none());
        assert_eq!(wv.notifications().open_rows(), 0);
        assert!(!wv.notifications().post(id, JsValue::Number(2.0)));
        // Injection into a dead page is a no-op.
        wv.add_javascript_interface(Arc::new(Adder), "Late");
        assert!(wv.js_interface("Late").is_none());
        // Idempotent.
        wv.unload();
    }
}
