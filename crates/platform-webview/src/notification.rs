//! The Notification Table and polling handler.
//!
//! "All notifications ... are stored within the WebView context using a
//! Notification Table. The notifications in this table are retrieved
//! periodically by the JavaScript proxy instance with the help of
//! `startPolling()` function in its `notifHandler` object." (paper §4.1,
//! step 3 and Fig. 6)
//!
//! Java-side wrappers post [`crate::value::JsValue`] notifications under
//! a notification id returned by the originating call; the JavaScript
//! side polls and dispatches them to the registered callback.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_device::Device;

use crate::value::JsValue;

/// Identifier correlating asynchronous notifications with the JS-side
/// invocation that caused them (the `id` returned by
/// `swi.sendTextMsg(...)` in Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NotificationId(u64);

impl NotificationId {
    /// The raw numeric id — what actually crosses the JavaScript bridge
    /// (Fig. 6 returns it from `swi.sendTextMsg(...)`).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Reconstructs an id from the raw number received over the bridge.
    /// Returns `None` for zero, which the table never allocates.
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw > 0).then_some(NotificationId(raw))
    }
}

impl fmt::Display for NotificationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "notif-{}", self.0)
    }
}

/// The per-WebView notification table.
#[derive(Default)]
pub struct NotificationTable {
    next_id: AtomicU64,
    rows: Mutex<HashMap<NotificationId, Vec<JsValue>>>,
}

impl fmt::Debug for NotificationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NotificationTable")
            .field("rows", &self.rows.lock().len())
            .finish()
    }
}

impl NotificationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh notification id (a row in the table).
    pub fn allocate(&self) -> NotificationId {
        let id = NotificationId(self.next_id.fetch_add(1, Ordering::SeqCst) + 1);
        self.rows.lock().insert(id, Vec::new());
        id
    }

    /// Posts a notification under `id`. Returns `false` if the row does
    /// not exist (already closed).
    pub fn post(&self, id: NotificationId, notification: JsValue) -> bool {
        match self.rows.lock().get_mut(&id) {
            Some(row) => {
                row.push(notification);
                true
            }
            None => false,
        }
    }

    /// Drains the pending notifications for `id`, oldest first
    /// (the `getNotifications(notifId)` call in Fig. 6).
    pub fn take(&self, id: NotificationId) -> Vec<JsValue> {
        self.rows
            .lock()
            .get_mut(&id)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Number of pending notifications for `id`.
    pub fn pending(&self, id: NotificationId) -> usize {
        self.rows.lock().get(&id).map(Vec::len).unwrap_or(0)
    }

    /// Closes a row; further posts for `id` are dropped.
    pub fn close(&self, id: NotificationId) {
        self.rows.lock().remove(&id);
    }

    /// Closes every row — what page unload does to the table.
    pub fn close_all(&self) {
        self.rows.lock().clear();
    }

    /// Number of open rows.
    pub fn open_rows(&self) -> usize {
        self.rows.lock().len()
    }
}

/// Default polling period of a [`NotifHandler`], in virtual
/// milliseconds.
pub const DEFAULT_POLL_INTERVAL_MS: u64 = 200;

/// The JavaScript-side `notifHandler`: polls one notification-table row
/// and feeds each notification to a callback.
pub struct NotifHandler {
    device: Device,
    table: Arc<NotificationTable>,
    id: NotificationId,
    interval_ms: u64,
    running: Arc<AtomicBool>,
}

impl fmt::Debug for NotifHandler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NotifHandler")
            .field("id", &self.id)
            .field("interval_ms", &self.interval_ms)
            .field("running", &self.running.load(Ordering::SeqCst))
            .finish()
    }
}

impl NotifHandler {
    /// Creates a handler for row `id` of `table`, polling every
    /// [`DEFAULT_POLL_INTERVAL_MS`].
    pub fn new(device: Device, table: Arc<NotificationTable>, id: NotificationId) -> Self {
        Self {
            device,
            table,
            id,
            interval_ms: DEFAULT_POLL_INTERVAL_MS,
            running: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Overrides the polling interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ms` is zero.
    pub fn with_interval_ms(mut self, interval_ms: u64) -> Self {
        assert!(interval_ms > 0, "poll interval must be non-zero");
        self.interval_ms = interval_ms;
        self
    }

    /// `startPolling()` — begins delivering notifications to
    /// `callback` as virtual time advances. Idempotent while running.
    pub fn start_polling<F>(&self, callback: F)
    where
        F: Fn(JsValue) + Send + Sync + 'static,
    {
        if self.running.swap(true, Ordering::SeqCst) {
            return;
        }
        schedule_poll(
            self.device.clone(),
            Arc::clone(&self.table),
            self.id,
            self.interval_ms,
            Arc::clone(&self.running),
            Arc::new(callback),
        );
    }

    /// Stops polling (the row itself remains until closed).
    pub fn stop_polling(&self) {
        self.running.store(false, Ordering::SeqCst);
    }

    /// Whether the handler is polling.
    pub fn is_polling(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }
}

fn schedule_poll(
    device: Device,
    table: Arc<NotificationTable>,
    id: NotificationId,
    interval_ms: u64,
    running: Arc<AtomicBool>,
    callback: Arc<dyn Fn(JsValue) + Send + Sync>,
) {
    let fire_at = device.now_ms() + interval_ms;
    let events = Arc::clone(device.events());
    events.schedule_at(fire_at, "webview-notif-poll", move |_| {
        if !running.load(Ordering::SeqCst) {
            return;
        }
        for notification in table.take(id) {
            callback(notification);
        }
        schedule_poll(device, table, id, interval_ms, running, callback);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn allocate_post_take() {
        let table = NotificationTable::new();
        let id = table.allocate();
        assert!(table.post(id, JsValue::Number(1.0)));
        assert!(table.post(id, JsValue::Number(2.0)));
        assert_eq!(table.pending(id), 2);
        assert_eq!(
            table.take(id),
            vec![JsValue::Number(1.0), JsValue::Number(2.0)]
        );
        assert_eq!(table.pending(id), 0);
        assert!(table.take(id).is_empty());
    }

    #[test]
    fn ids_are_unique() {
        let table = NotificationTable::new();
        assert_ne!(table.allocate(), table.allocate());
    }

    #[test]
    fn closed_row_drops_posts() {
        let table = NotificationTable::new();
        let id = table.allocate();
        table.close(id);
        assert!(!table.post(id, JsValue::Null));
        assert_eq!(table.pending(id), 0);
    }

    #[test]
    fn polling_delivers_in_order() {
        let device = Device::builder().build();
        let table = Arc::new(NotificationTable::new());
        let id = table.allocate();
        let handler = NotifHandler::new(device.clone(), Arc::clone(&table), id);
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        handler.start_polling(move |v| sink.lock().unwrap().push(v));
        table.post(id, JsValue::str("first"));
        table.post(id, JsValue::str("second"));
        device.advance_ms(1_000);
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[JsValue::str("first"), JsValue::str("second")]
        );
    }

    #[test]
    fn late_posts_are_picked_up_by_subsequent_polls() {
        let device = Device::builder().build();
        let table = Arc::new(NotificationTable::new());
        let id = table.allocate();
        let handler = NotifHandler::new(device.clone(), Arc::clone(&table), id);
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        handler.start_polling(move |v| sink.lock().unwrap().push(v));
        device.advance_ms(1_000);
        assert!(seen.lock().unwrap().is_empty());
        table.post(id, JsValue::Number(7.0));
        device.advance_ms(1_000);
        assert_eq!(seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn stop_polling_halts_delivery() {
        let device = Device::builder().build();
        let table = Arc::new(NotificationTable::new());
        let id = table.allocate();
        let handler = NotifHandler::new(device.clone(), Arc::clone(&table), id);
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        handler.start_polling(move |v| sink.lock().unwrap().push(v));
        assert!(handler.is_polling());
        handler.stop_polling();
        table.post(id, JsValue::Null);
        device.advance_ms(1_000);
        assert!(seen.lock().unwrap().is_empty());
        assert!(!handler.is_polling());
    }

    #[test]
    fn start_polling_is_idempotent() {
        let device = Device::builder().build();
        let table = Arc::new(NotificationTable::new());
        let id = table.allocate();
        let handler = NotifHandler::new(device.clone(), Arc::clone(&table), id);
        let seen = Arc::new(StdMutex::new(Vec::new()));
        for _ in 0..3 {
            let sink = Arc::clone(&seen);
            handler.start_polling(move |v| sink.lock().unwrap().push(v));
        }
        table.post(id, JsValue::Number(1.0));
        device.advance_ms(1_000);
        // Only one poll loop runs, so the notification arrives once.
        assert_eq!(seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn poll_interval_respected() {
        let device = Device::builder().build();
        let table = Arc::new(NotificationTable::new());
        let id = table.allocate();
        let handler =
            NotifHandler::new(device.clone(), Arc::clone(&table), id).with_interval_ms(500);
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        handler.start_polling(move |v| sink.lock().unwrap().push(v));
        table.post(id, JsValue::Number(1.0));
        device.advance_ms(499);
        assert!(seen.lock().unwrap().is_empty());
        device.advance_ms(1);
        assert_eq!(seen.lock().unwrap().len(), 1);
    }
}
