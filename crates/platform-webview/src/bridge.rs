//! Java ↔ JavaScript bridge rules.
//!
//! Two constraints from the paper's WebView proxy design (§4.1):
//!
//! 1. "exceptions thrown by the native interface invocation are
//!    propagated to the corresponding proxy with the help of **error
//!    codes**, wherein an error code is defined for each possible
//!    exception" — [`ErrorCode`] is that enumeration;
//! 2. callbacks cannot cross from Java into JavaScript — the bridge
//!    rejects function-valued arguments; asynchronous results go through
//!    the [`crate::notification`] table instead.

use std::fmt;

use mobivine_android::AndroidException;

use crate::value::JsValue;
use crate::wire::{NodeId, WireBuf, WireValue};

/// Stable numeric error codes for every Android exception the bridge
/// can see. (The JavaScript proxy maps these back to thrown errors.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// `SecurityException`.
    Security = 1,
    /// `IllegalArgumentException`.
    IllegalArgument = 2,
    /// `RemoteException` (e.g. no GPS fix).
    Remote = 3,
    /// `IOException` (transport failures).
    Io = 4,
    /// The invoked API does not exist in the platform version.
    ApiRemoved = 5,
    /// The bridge itself rejected the call (bad interface name, bad
    /// method, type mismatch).
    Bridge = 6,
    /// The caller's deadline budget was exhausted before (or while)
    /// crossing the bridge (`TimeoutException` on the Java side).
    Deadline = 7,
    /// The native side shed the call under overload
    /// (`RejectedExecutionException` on the Java side).
    Overloaded = 8,
}

impl ErrorCode {
    /// The numeric code marshalled over the bridge.
    pub fn code(&self) -> i32 {
        *self as i32
    }

    /// Parses a numeric code back into the enumeration.
    pub fn from_code(code: i32) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::Security),
            2 => Some(ErrorCode::IllegalArgument),
            3 => Some(ErrorCode::Remote),
            4 => Some(ErrorCode::Io),
            5 => Some(ErrorCode::ApiRemoved),
            6 => Some(ErrorCode::Bridge),
            7 => Some(ErrorCode::Deadline),
            8 => Some(ErrorCode::Overloaded),
            _ => None,
        }
    }

    /// The canonical Java exception class a code stands for, when the
    /// code wraps a platform exception. Bridge-layer rejections
    /// ([`ErrorCode::Bridge`]) carry no platform class. This lets the
    /// uniform error model restore provenance that the numeric channel
    /// would otherwise flatten away.
    pub fn canonical_java_class(&self) -> Option<&'static str> {
        match self {
            ErrorCode::Security => Some("java.lang.SecurityException"),
            ErrorCode::IllegalArgument => Some("java.lang.IllegalArgumentException"),
            ErrorCode::Remote => Some("android.os.RemoteException"),
            ErrorCode::Io => Some("java.io.IOException"),
            ErrorCode::ApiRemoved => Some("java.lang.NoSuchMethodError"),
            ErrorCode::Bridge => None,
            ErrorCode::Deadline => Some("java.util.concurrent.TimeoutException"),
            ErrorCode::Overloaded => Some("java.util.concurrent.RejectedExecutionException"),
        }
    }

    /// Maps an Android exception to its code — the "error code is
    /// defined for each possible exception" table.
    pub fn from_android(e: &AndroidException) -> Self {
        match e {
            AndroidException::Security(_) => ErrorCode::Security,
            AndroidException::IllegalArgument(_) => ErrorCode::IllegalArgument,
            AndroidException::Remote(_) => ErrorCode::Remote,
            AndroidException::Io(_) => ErrorCode::Io,
            AndroidException::ApiRemoved { .. } => ErrorCode::ApiRemoved,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An error crossing the bridge into JavaScript: a code plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeError {
    /// The error-code channel value.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl BridgeError {
    /// Builds a bridge-layer error.
    pub fn bridge(message: impl Into<String>) -> Self {
        Self {
            code: ErrorCode::Bridge,
            message: message.into(),
        }
    }

    /// Wraps an Android exception.
    pub fn from_android(e: AndroidException) -> Self {
        Self {
            code: ErrorCode::from_android(&e),
            message: e.to_string(),
        }
    }

    /// The JavaScript-visible error object
    /// (`{ errorCode: n, message: s }`).
    pub fn to_js(&self) -> JsValue {
        JsValue::object([
            ("errorCode", JsValue::Number(self.code.code() as f64)),
            ("message", JsValue::str(&self.message)),
        ])
    }
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bridge error {}: {}", self.code.code(), self.message)
    }
}

impl std::error::Error for BridgeError {}

/// A Java object injected into the JavaScript world via
/// `addJavaScriptInterface`. The paper's `SmsWrapper`,
/// `LocationWrapper` etc. implement this.
pub trait JavaScriptInterface: Send + Sync {
    /// Invokes `method` with JavaScript arguments, returning a
    /// JavaScript value.
    ///
    /// # Errors
    ///
    /// Returns [`BridgeError`] with the appropriate [`ErrorCode`] when
    /// the underlying platform call throws, or a
    /// [`ErrorCode::Bridge`]-coded error for unknown methods or type
    /// mismatches.
    fn call(&self, method: &str, args: &[JsValue]) -> Result<JsValue, BridgeError>;

    /// Invokes `method` carrying an optional W3C `traceparent` string
    /// across the bridge, so middleware above the page can stitch the
    /// JavaScript side and the native side into one trace.
    ///
    /// The default implementation ignores the trace context and
    /// delegates to [`JavaScriptInterface::call`]; trace-aware wrappers
    /// override it to parent their native-side spans on the caller's
    /// context.
    ///
    /// # Errors
    ///
    /// Same as [`JavaScriptInterface::call`].
    fn call_traced(
        &self,
        method: &str,
        args: &[JsValue],
        traceparent: Option<&str>,
    ) -> Result<JsValue, BridgeError> {
        let _ = traceparent;
        self.call(method, args)
    }

    /// Invokes `method` carrying both the optional W3C `traceparent`
    /// string and the caller's remaining deadline budget in virtual
    /// milliseconds — the two pieces of call context the page side
    /// marshals over the bridge. A budget of `Some(0)` means the caller
    /// entered the bridge with nothing left; deadline-aware wrappers
    /// fail fast with [`ErrorCode::Deadline`] instead of invoking the
    /// platform.
    ///
    /// The default implementation ignores the budget and delegates to
    /// [`JavaScriptInterface::call_traced`].
    ///
    /// # Errors
    ///
    /// Same as [`JavaScriptInterface::call`].
    fn call_with_context(
        &self,
        method: &str,
        args: &[JsValue],
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<JsValue, BridgeError> {
        let _ = deadline_budget_ms;
        self.call_traced(method, args, traceparent)
    }

    /// Invokes `method` with arena-encoded arguments, writing the result
    /// into the caller-owned `reply` buffer. This is the zero-copy entry
    /// point: the arguments are borrowed views into the call arena and
    /// the result is encoded in place, so a wire-aware wrapper crosses
    /// the bridge without owned [`JsValue`] trees on either side.
    ///
    /// The default implementation decodes the arguments into owned
    /// values and delegates to
    /// [`call_with_context`](JavaScriptInterface::call_with_context), so
    /// an interface that only implements [`call`](JavaScriptInterface::call)
    /// still services wire invocations (paying the marshalling cost the
    /// override avoids).
    ///
    /// # Errors
    ///
    /// Same as [`JavaScriptInterface::call`].
    fn call_wire(
        &self,
        method: &str,
        args: WireValue<'_>,
        reply: &mut WireBuf,
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) -> Result<NodeId, BridgeError> {
        call_wire_via_values(self, method, args, reply, traceparent, deadline_budget_ms)
    }

    /// Services a batched crossing: every queued frame in `calls` is
    /// invoked in order and exactly one reply frame — result node or
    /// per-entry error code — is appended to `reply`. One entry failing
    /// does not abort the rest of the batch.
    ///
    /// The default implementation loops over
    /// [`call_wire`](JavaScriptInterface::call_wire), so batching
    /// composes with the default-delegation chain down to plain
    /// [`call`](JavaScriptInterface::call).
    fn call_batch(
        &self,
        calls: &WireBuf,
        reply: &mut WireBuf,
        traceparent: Option<&str>,
        deadline_budget_ms: Option<u64>,
    ) {
        for i in 0..calls.frame_count() {
            let (method, args) = calls.frame(i);
            match self.call_wire(method, args, reply, traceparent, deadline_budget_ms) {
                Ok(node) => reply.push_ok_frame(node),
                Err(e) => reply.push_err_frame(e.code, &e.message),
            }
        }
    }
}

/// The compatibility path behind the default
/// [`JavaScriptInterface::call_wire`]: decode the argument views into
/// owned values, delegate to `call_with_context`, and re-encode the
/// owned result into the reply arena.
///
/// Wire-aware wrappers that override `call_wire` for their hot methods
/// call this from their fallback arm so cold methods keep working.
///
/// # Errors
///
/// Same as [`JavaScriptInterface::call`].
pub fn call_wire_via_values(
    iface: &(impl JavaScriptInterface + ?Sized),
    method: &str,
    args: WireValue<'_>,
    reply: &mut WireBuf,
    traceparent: Option<&str>,
    deadline_budget_ms: Option<u64>,
) -> Result<NodeId, BridgeError> {
    let owned = args.to_js_args()?;
    let out = iface.call_with_context(method, &owned, traceparent, deadline_budget_ms)?;
    Ok(reply.push_js(&out))
}

/// Argument-extraction helpers shared by wrapper implementations.
pub mod args {
    use super::{BridgeError, JsValue};

    /// Extracts a required numeric argument.
    ///
    /// # Errors
    ///
    /// Returns a bridge-coded error naming the position on a missing or
    /// non-numeric argument.
    pub fn number(call_args: &[JsValue], index: usize) -> Result<f64, BridgeError> {
        call_args
            .get(index)
            .and_then(JsValue::as_number)
            .ok_or_else(|| BridgeError::bridge(format!("argument {index} must be a number")))
    }

    /// Extracts a required string argument, borrowed from the call
    /// arguments — no allocation on the success path.
    ///
    /// # Errors
    ///
    /// Returns a bridge-coded error naming the position on a missing or
    /// non-string argument.
    pub fn string(call_args: &[JsValue], index: usize) -> Result<&str, BridgeError> {
        call_args
            .get(index)
            .and_then(JsValue::as_str)
            .ok_or_else(|| BridgeError::bridge(format!("argument {index} must be a string")))
    }

    /// Extracts an optional boolean argument (defaults when absent).
    pub fn bool_or(call_args: &[JsValue], index: usize, default: bool) -> bool {
        call_args
            .get(index)
            .and_then(JsValue::as_bool)
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_android_exception_has_a_distinct_code() {
        use mobivine_android::SdkVersion;
        let samples = [
            AndroidException::Security("s".into()),
            AndroidException::IllegalArgument("i".into()),
            AndroidException::Remote("r".into()),
            AndroidException::Io("o".into()),
            AndroidException::ApiRemoved {
                api: "x",
                version: SdkVersion::V1_0,
            },
        ];
        let mut codes: Vec<i32> = samples
            .iter()
            .map(|e| ErrorCode::from_android(e).code())
            .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), samples.len());
    }

    #[test]
    fn codes_round_trip() {
        for code in [
            ErrorCode::Security,
            ErrorCode::IllegalArgument,
            ErrorCode::Remote,
            ErrorCode::Io,
            ErrorCode::ApiRemoved,
            ErrorCode::Bridge,
            ErrorCode::Deadline,
            ErrorCode::Overloaded,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(99), None);
    }

    #[test]
    fn bridge_error_to_js_shape() {
        let err = BridgeError::from_android(AndroidException::Security("denied".into()));
        let js = err.to_js();
        assert_eq!(js.get("errorCode"), JsValue::Number(1.0));
        assert!(js.get("message").as_str().unwrap().contains("denied"));
    }

    #[test]
    fn arg_helpers_validate() {
        let call_args = [JsValue::Number(2.0), JsValue::str("hi")];
        assert_eq!(args::number(&call_args, 0).unwrap(), 2.0);
        assert_eq!(args::string(&call_args, 1).unwrap(), "hi");
        assert!(args::number(&call_args, 1).is_err());
        assert!(args::string(&call_args, 5).is_err());
        assert!(args::bool_or(&call_args, 5, true));
    }
}
