//! Arena-backed zero-copy wire format for the JavaScript bridge.
//!
//! Every `addJavaScriptInterface` crossing used to marshal arguments and
//! results as owned [`JsValue`] trees — one heap allocation per string,
//! one `Vec`/`BTreeMap` per container, on every call.  This module
//! replaces that with a reusable arena: a [`WireBuf`] owns flat vectors
//! of nodes, bytes and child links, values are encoded as offsets into
//! those vectors, and [`WireValue`] is a borrowed *view* over one node.
//! [`WireBuf::clear`] resets the lengths but keeps the capacity, so a
//! warmed buffer services an unbounded stream of calls without touching
//! the heap again.
//!
//! Layout invariants (see DESIGN.md §14):
//!
//! * `nodes` is append-only between clears; a [`NodeId`] indexes it and
//!   stays valid until the next `clear`.
//! * Strings and object keys live in the `bytes` arena as `(start, len)`
//!   spans; the arena holds only valid UTF-8 because every span is
//!   copied from a `&str`.
//! * Containers reference a *contiguous* `(kids_start, kids_len)` range
//!   of the `kids` vector.  Contiguity under arbitrary nesting is
//!   achieved by staging children in `scratch` (a per-buffer stack):
//!   [`WireBuf::begin`] records a mark, children are staged above it,
//!   and [`WireBuf::end_array`]/[`WireBuf::end_object`] drain the staged
//!   range into `kids` in one go.  Inner containers always finish before
//!   their parent stages the next child, so ranges never interleave.
//! * `frames` (queued calls) and `replies` (per-entry results) support
//!   batching: one crossing carries N calls and returns N replies with
//!   individual error codes.

use crate::bridge::{BridgeError, ErrorCode};
use crate::value::JsValue;

/// Index of an encoded value inside a [`WireBuf`].
///
/// Valid until the owning buffer is cleared.  Ids are only meaningful
/// for the buffer that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeId(u32);

/// One encoded value.  Strings and containers hold spans into the
/// owning buffer's `bytes` / `kids` arenas.
#[derive(Clone, Copy, Debug)]
enum Node {
    Undefined,
    Null,
    Bool(bool),
    Number(f64),
    Str { start: u32, len: u32 },
    Array { kids_start: u32, kids_len: u32 },
    Object { kids_start: u32, kids_len: u32 },
}

/// One child of a container: a key span (zero-length for array items)
/// plus the child's node.
#[derive(Clone, Copy, Debug)]
struct Kid {
    key_start: u32,
    key_len: u32,
    node: NodeId,
}

/// One queued call in a batch: the method-name span plus the arguments
/// array node.
#[derive(Clone, Copy, Debug)]
struct CallFrame {
    method_start: u32,
    method_len: u32,
    args: NodeId,
}

/// One reply in a batch: either the result node or an error code with a
/// message span.
#[derive(Clone, Copy, Debug)]
enum ReplyFrame {
    Ok(NodeId),
    Err {
        code: ErrorCode,
        msg_start: u32,
        msg_len: u32,
    },
}

/// Reusable arena for encoding bridge calls and replies.
///
/// Cleared-not-freed: [`clear`](Self::clear) keeps all capacity, so a
/// warmed buffer encodes without allocating.
#[derive(Default)]
pub struct WireBuf {
    nodes: Vec<Node>,
    bytes: Vec<u8>,
    kids: Vec<Kid>,
    scratch: Vec<Kid>,
    frames: Vec<CallFrame>,
    replies: Vec<ReplyFrame>,
}

impl WireBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all arenas to length zero while retaining their capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.bytes.clear();
        self.kids.clear();
        self.scratch.clear();
        self.frames.clear();
        self.replies.clear();
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    fn push_bytes(&mut self, s: &str) -> (u32, u32) {
        let start = self.bytes.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        (start, s.len() as u32)
    }

    fn span_str(&self, start: u32, len: u32) -> &str {
        let range = start as usize..(start + len) as usize;
        // Invariant: every span was copied from a `&str`, so the arena
        // slice is valid UTF-8 at `&str` boundaries.
        core::str::from_utf8(&self.bytes[range]).expect("wire byte arena holds valid UTF-8")
    }

    /// Encodes `undefined`.
    pub fn push_undefined(&mut self) -> NodeId {
        self.push_node(Node::Undefined)
    }

    /// Encodes `null`.
    pub fn push_null(&mut self) -> NodeId {
        self.push_node(Node::Null)
    }

    /// Encodes a boolean.
    pub fn push_bool(&mut self, value: bool) -> NodeId {
        self.push_node(Node::Bool(value))
    }

    /// Encodes a number.
    pub fn push_number(&mut self, value: f64) -> NodeId {
        self.push_node(Node::Number(value))
    }

    /// Encodes a string by copying it into the byte arena.
    pub fn push_str(&mut self, value: &str) -> NodeId {
        let (start, len) = self.push_bytes(value);
        self.push_node(Node::Str { start, len })
    }

    /// Opens a container; returns the scratch mark to pass back to
    /// [`end_array`](Self::end_array) / [`end_object`](Self::end_object).
    pub fn begin(&mut self) -> usize {
        self.scratch.len()
    }

    /// Stages an already-encoded node as the next array item of the
    /// innermost open container.
    pub fn stage_item(&mut self, node: NodeId) {
        self.scratch.push(Kid {
            key_start: 0,
            key_len: 0,
            node,
        });
    }

    /// Stages an already-encoded node as a keyed entry of the innermost
    /// open object.
    pub fn stage_entry(&mut self, key: &str, node: NodeId) {
        let (key_start, key_len) = self.push_bytes(key);
        self.scratch.push(Kid {
            key_start,
            key_len,
            node,
        });
    }

    fn drain_scratch(&mut self, mark: usize) -> (u32, u32) {
        let kids_start = self.kids.len() as u32;
        let kids_len = (self.scratch.len() - mark) as u32;
        self.kids.extend(self.scratch.drain(mark..));
        (kids_start, kids_len)
    }

    /// Closes an array opened at `mark`, draining its staged items into
    /// a contiguous kid range.
    pub fn end_array(&mut self, mark: usize) -> NodeId {
        let (kids_start, kids_len) = self.drain_scratch(mark);
        self.push_node(Node::Array {
            kids_start,
            kids_len,
        })
    }

    /// Closes an object opened at `mark`, draining its staged entries
    /// into a contiguous kid range.
    pub fn end_object(&mut self, mark: usize) -> NodeId {
        let (kids_start, kids_len) = self.drain_scratch(mark);
        self.push_node(Node::Object {
            kids_start,
            kids_len,
        })
    }

    /// Encodes an empty argument array — the common no-argument call.
    pub fn empty_args(&mut self) -> NodeId {
        let mark = self.begin();
        self.end_array(mark)
    }

    /// Recursively encodes an owned [`JsValue`] tree.
    pub fn push_js(&mut self, value: &JsValue) -> NodeId {
        match value {
            JsValue::Undefined => self.push_undefined(),
            JsValue::Null => self.push_null(),
            JsValue::Bool(b) => self.push_bool(*b),
            JsValue::Number(n) => self.push_number(*n),
            JsValue::Str(s) => self.push_str(s),
            JsValue::Array(items) => {
                let mark = self.begin();
                for item in items {
                    let node = self.push_js(item);
                    self.stage_item(node);
                }
                self.end_array(mark)
            }
            JsValue::Object(map) => {
                let mark = self.begin();
                for (key, item) in map {
                    let node = self.push_js(item);
                    self.stage_entry(key, node);
                }
                self.end_object(mark)
            }
        }
    }

    /// A borrowed view over one encoded node.
    pub fn view(&self, node: NodeId) -> WireValue<'_> {
        WireValue { buf: self, node }
    }

    /// Queues one call frame for a batched crossing.
    pub fn push_frame(&mut self, method: &str, args: NodeId) {
        let (method_start, method_len) = self.push_bytes(method);
        self.frames.push(CallFrame {
            method_start,
            method_len,
            args,
        });
    }

    /// Number of queued call frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The `i`-th queued call frame as `(method, args)`.
    ///
    /// # Panics
    /// Panics if `i >= frame_count()`.
    pub fn frame(&self, i: usize) -> (&str, WireValue<'_>) {
        let frame = self.frames[i];
        (
            self.span_str(frame.method_start, frame.method_len),
            self.view(frame.args),
        )
    }

    /// Appends a successful reply frame.
    pub fn push_ok_frame(&mut self, node: NodeId) {
        self.replies.push(ReplyFrame::Ok(node));
    }

    /// Appends a failed reply frame with its error code and message.
    pub fn push_err_frame(&mut self, code: ErrorCode, message: &str) {
        let (msg_start, msg_len) = self.push_bytes(message);
        self.replies.push(ReplyFrame::Err {
            code,
            msg_start,
            msg_len,
        });
    }

    /// Number of reply frames.
    pub fn reply_count(&self) -> usize {
        self.replies.len()
    }

    /// Iterator-style accessor over the reply frames.
    pub fn replies(&self) -> BatchReplies<'_> {
        BatchReplies { buf: self, next: 0 }
    }

    /// The `i`-th reply frame, or `None` past the end.
    pub fn reply(&self, i: usize) -> Option<Result<WireValue<'_>, (ErrorCode, &str)>> {
        self.replies.get(i).map(|frame| match *frame {
            ReplyFrame::Ok(node) => Ok(self.view(node)),
            ReplyFrame::Err {
                code,
                msg_start,
                msg_len,
            } => Err((code, self.span_str(msg_start, msg_len))),
        })
    }
}

/// Borrowed view over one node of a [`WireBuf`].
#[derive(Clone, Copy)]
pub struct WireValue<'a> {
    buf: &'a WireBuf,
    node: NodeId,
}

impl<'a> WireValue<'a> {
    fn node(&self) -> Node {
        self.buf.nodes[self.node.0 as usize]
    }

    /// JavaScript `typeof`-style tag, mirroring [`JsValue::type_of`].
    pub fn type_of(&self) -> &'static str {
        match self.node() {
            Node::Undefined => "undefined",
            Node::Null | Node::Array { .. } | Node::Object { .. } => "object",
            Node::Bool(_) => "boolean",
            Node::Number(_) => "number",
            Node::Str { .. } => "string",
        }
    }

    /// `true` for `undefined` and `null`.
    pub fn is_nullish(&self) -> bool {
        matches!(self.node(), Node::Undefined | Node::Null)
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self.node() {
            Node::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self.node() {
            Node::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The borrowed string payload, if this is a string.
    pub fn as_str(&self) -> Option<&'a str> {
        match self.node() {
            Node::Str { start, len } => Some(self.buf.span_str(start, len)),
            _ => None,
        }
    }

    /// Number of children, for arrays and objects; 0 otherwise.
    pub fn len(&self) -> usize {
        match self.node() {
            Node::Array { kids_len, .. } | Node::Object { kids_len, .. } => kids_len as usize,
            _ => 0,
        }
    }

    /// Whether this container has no children (also `true` for scalars).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn kid(&self, i: usize) -> Option<Kid> {
        match self.node() {
            Node::Array {
                kids_start,
                kids_len,
            }
            | Node::Object {
                kids_start,
                kids_len,
            } if (i as u32) < kids_len => Some(self.buf.kids[kids_start as usize + i]),
            _ => None,
        }
    }

    /// The `i`-th array item (or object value, in insertion order).
    pub fn item(&self, i: usize) -> Option<WireValue<'a>> {
        self.kid(i).map(|kid| self.buf.view(kid.node))
    }

    /// The `i`-th object entry as `(key, value)`.
    pub fn entry(&self, i: usize) -> Option<(&'a str, WireValue<'a>)> {
        self.kid(i).map(|kid| {
            (
                self.buf.span_str(kid.key_start, kid.key_len),
                self.buf.view(kid.node),
            )
        })
    }

    /// Looks up an object entry by key without cloning.
    pub fn get(&self, key: &str) -> Option<WireValue<'a>> {
        if let Node::Object {
            kids_start,
            kids_len,
        } = self.node()
        {
            let range = kids_start as usize..(kids_start + kids_len) as usize;
            for kid in &self.buf.kids[range] {
                if self.buf.span_str(kid.key_start, kid.key_len) == key {
                    return Some(self.buf.view(kid.node));
                }
            }
        }
        None
    }

    /// Decodes this view back into an owned [`JsValue`] tree.
    ///
    /// This allocates by design — it is the compatibility path for
    /// interfaces that only understand owned values.
    pub fn to_js(&self) -> JsValue {
        match self.node() {
            Node::Undefined => JsValue::Undefined,
            Node::Null => JsValue::Null,
            Node::Bool(b) => JsValue::Bool(b),
            Node::Number(n) => JsValue::Number(n),
            Node::Str { start, len } => JsValue::Str(self.buf.span_str(start, len).to_owned()),
            Node::Array { kids_len, .. } => JsValue::Array(
                (0..kids_len as usize)
                    .map(|i| {
                        self.item(i)
                            .map(|v| v.to_js())
                            .unwrap_or(JsValue::Undefined)
                    })
                    .collect(),
            ),
            Node::Object { kids_len, .. } => JsValue::Object(
                (0..kids_len as usize)
                    .filter_map(|i| self.entry(i).map(|(k, v)| (k.to_owned(), v.to_js())))
                    .collect(),
            ),
        }
    }

    /// Decodes an argument array into owned values, for the
    /// compatibility fallback of `call_wire`.
    pub fn to_js_args(&self) -> Result<Vec<JsValue>, BridgeError> {
        match self.node() {
            Node::Array { kids_len, .. } => Ok((0..kids_len as usize)
                .filter_map(|i| self.item(i).map(|v| v.to_js()))
                .collect()),
            _ => Err(BridgeError::bridge(
                "wire call arguments must be an array node",
            )),
        }
    }
}

/// Borrowed cursor over a batch's reply frames.
pub struct BatchReplies<'a> {
    buf: &'a WireBuf,
    next: usize,
}

impl<'a> BatchReplies<'a> {
    /// Number of reply frames in the batch.
    pub fn len(&self) -> usize {
        self.buf.reply_count()
    }

    /// Whether the batch produced no replies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Random access to the `i`-th reply.
    pub fn get(&self, i: usize) -> Option<Result<WireValue<'a>, (ErrorCode, &'a str)>> {
        self.buf.reply(i)
    }
}

impl<'a> Iterator for BatchReplies<'a> {
    type Item = Result<WireValue<'a>, (ErrorCode, &'a str)>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.buf.reply(self.next);
        if item.is_some() {
            self.next += 1;
        }
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut buf = WireBuf::new();
        for value in [
            JsValue::Undefined,
            JsValue::Null,
            JsValue::Bool(true),
            JsValue::Number(-12.5),
            JsValue::str(""),
            JsValue::str("hello"),
        ] {
            let id = buf.push_js(&value);
            assert_eq!(buf.view(id).to_js(), value);
        }
    }

    #[test]
    fn nested_containers_round_trip() {
        let value = JsValue::object(vec![
            ("empty", JsValue::object(vec![])),
            (
                "inner",
                JsValue::Array(vec![
                    JsValue::Number(1.0),
                    JsValue::object(vec![("deep", JsValue::str("yes"))]),
                    JsValue::Null,
                ]),
            ),
            ("tail", JsValue::str("after")),
        ]);
        let mut buf = WireBuf::new();
        let id = buf.push_js(&value);
        assert_eq!(buf.view(id).to_js(), value);
    }

    #[test]
    fn view_accessors_borrow_without_cloning() {
        let mut buf = WireBuf::new();
        let mark = buf.begin();
        let lat = buf.push_number(47.6);
        buf.stage_entry("latitude", lat);
        let name = buf.push_str("fix");
        buf.stage_entry("name", name);
        let id = buf.end_object(mark);

        let view = buf.view(id);
        assert_eq!(view.len(), 2);
        assert_eq!(view.get("latitude").and_then(|v| v.as_number()), Some(47.6));
        assert_eq!(view.get("name").and_then(|v| v.as_str()), Some("fix"));
        assert!(view.get("missing").is_none());
        assert_eq!(view.entry(1).map(|(k, _)| k), Some("name"));
        assert_eq!(view.type_of(), "object");
    }

    #[test]
    fn clear_retains_capacity() {
        let mut buf = WireBuf::new();
        let value = JsValue::Array(vec![JsValue::str("warm"), JsValue::Number(1.0)]);
        buf.push_js(&value);
        let args = buf.empty_args();
        buf.push_frame("warm", args);
        let bytes_cap = buf.bytes.capacity();
        let nodes_cap = buf.nodes.capacity();
        buf.clear();
        assert_eq!(buf.nodes.len(), 0);
        assert_eq!(buf.frame_count(), 0);
        assert_eq!(buf.bytes.capacity(), bytes_cap);
        assert_eq!(buf.nodes.capacity(), nodes_cap);
    }

    #[test]
    fn frames_and_replies_preserve_order_and_codes() {
        let mut call = WireBuf::new();
        let a = call.empty_args();
        call.push_frame("first", a);
        let mark = call.begin();
        let arg = call.push_str("x");
        call.stage_item(arg);
        let b = call.end_array(mark);
        call.push_frame("second", b);
        assert_eq!(call.frame_count(), 2);
        assert_eq!(call.frame(0).0, "first");
        assert_eq!(call.frame(1).1.item(0).and_then(|v| v.as_str()), Some("x"));

        let mut reply = WireBuf::new();
        let ok = reply.push_number(7.0);
        reply.push_ok_frame(ok);
        reply.push_err_frame(ErrorCode::Deadline, "budget exhausted");
        let frames: Vec<_> = reply.replies().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(
            frames[0].as_ref().ok().and_then(|v| v.as_number()),
            Some(7.0)
        );
        match &frames[1] {
            Err((code, msg)) => {
                assert_eq!(*code, ErrorCode::Deadline);
                assert_eq!(*msg, "budget exhausted");
            }
            Ok(_) => panic!("expected an error frame"),
        }
    }

    #[test]
    fn nan_numbers_survive_the_wire() {
        let mut buf = WireBuf::new();
        let id = buf.push_js(&JsValue::Number(f64::NAN));
        match buf.view(id).to_js() {
            JsValue::Number(n) => assert!(n.is_nan()),
            other => panic!("expected a number, got {other:?}"),
        }
    }

    #[test]
    fn non_array_args_are_rejected() {
        let mut buf = WireBuf::new();
        let id = buf.push_number(1.0);
        let err = buf.view(id).to_js_args().unwrap_err();
        assert_eq!(err.code, ErrorCode::Bridge);
    }

    /// Deterministic mirror of the workspace `properties.rs` round-trip
    /// property: a seeded splitmix64 generator builds hundreds of
    /// random nested values — NaN, empty strings, empty containers,
    /// deep mixes — and every one must survive `JsValue → WireBuf →
    /// WireValue → JsValue` through a single, repeatedly-cleared arena.
    #[test]
    fn random_js_values_round_trip_deterministically() {
        fn next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn gen_value(state: &mut u64, depth: u32) -> JsValue {
            let roll = if depth >= 3 {
                next(state) % 6
            } else {
                next(state) % 8
            };
            match roll {
                0 => JsValue::Undefined,
                1 => JsValue::Null,
                2 => JsValue::Bool(next(state).is_multiple_of(2)),
                3 => match next(state) % 4 {
                    0 => JsValue::Number(f64::NAN),
                    1 => JsValue::Number(-0.0),
                    2 => JsValue::Number(f64::from_bits(next(state)) % 1e12),
                    _ => JsValue::Number(next(state) as f64 / 1e3),
                },
                4 | 5 => {
                    let len = (next(state) % 13) as usize;
                    JsValue::Str(
                        (0..len)
                            .map(|_| (b' ' + (next(state) % 95) as u8) as char)
                            .collect(),
                    )
                }
                6 => {
                    let len = (next(state) % 4) as usize;
                    JsValue::Array((0..len).map(|_| gen_value(state, depth + 1)).collect())
                }
                _ => {
                    let len = next(state) % 4;
                    JsValue::Object(
                        (0..len)
                            .map(|i| (format!("k{i}"), gen_value(state, depth + 1)))
                            .collect(),
                    )
                }
            }
        }

        fn wire_eq(a: &JsValue, b: &JsValue) -> bool {
            match (a, b) {
                (JsValue::Number(x), JsValue::Number(y)) => x == y || (x.is_nan() && y.is_nan()),
                (JsValue::Array(xs), JsValue::Array(ys)) => {
                    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| wire_eq(x, y))
                }
                (JsValue::Object(xs), JsValue::Object(ys)) => {
                    xs.len() == ys.len()
                        && xs
                            .iter()
                            .zip(ys)
                            .all(|((ka, va), (kb, vb))| ka == kb && wire_eq(va, vb))
                }
                _ => a == b,
            }
        }

        let mut state = 0xC0FF_EE00_D15E_A5E5u64;
        let mut buf = WireBuf::new();
        for case in 0..512 {
            let value = gen_value(&mut state, 0);
            buf.clear();
            let node = buf.push_js(&value);
            let back = buf.view(node).to_js();
            assert!(wire_eq(&back, &value), "case {case}: {back:?} != {value:?}");
        }
    }

    /// Deterministic mirror of the batch-framing property: for random
    /// frame counts and failure patterns, N frames in yield N replies
    /// out, order and per-entry error codes intact.
    #[test]
    fn random_batches_preserve_framing_deterministically() {
        fn next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        let mut state = 0xDEC0_DE00_0BAD_F00Du64;
        let mut call = WireBuf::new();
        let mut reply = WireBuf::new();
        for _ in 0..64 {
            let frames = (next(&mut state) % 7 + 1) as usize;
            let failures: Vec<bool> = (0..frames)
                .map(|_| next(&mut state).is_multiple_of(3))
                .collect();
            call.clear();
            reply.clear();
            for i in 0..frames {
                let mark = call.begin();
                let arg = call.push_number(i as f64);
                call.stage_item(arg);
                let args = call.end_array(mark);
                call.push_frame(&format!("m{i}"), args);
            }
            assert_eq!(call.frame_count(), frames);
            for (i, &failed) in failures.iter().enumerate() {
                let (method, args) = call.frame(i);
                assert_eq!(method, format!("m{i}"));
                assert_eq!(args.item(0).and_then(|v| v.as_number()), Some(i as f64));
                if failed {
                    reply.push_err_frame(ErrorCode::Overloaded, &format!("shed {i}"));
                } else {
                    let node = reply.push_number(i as f64 * 2.0);
                    reply.push_ok_frame(node);
                }
            }
            assert_eq!(reply.reply_count(), frames);
            for (i, &failed) in failures.iter().enumerate() {
                match reply.reply(i).expect("one reply per frame") {
                    Ok(value) => {
                        assert!(!failed, "entry {i} lost its error");
                        assert_eq!(value.as_number(), Some(i as f64 * 2.0));
                    }
                    Err((code, message)) => {
                        assert!(failed, "entry {i} failed spuriously");
                        assert_eq!(code, ErrorCode::Overloaded);
                        assert_eq!(message, format!("shed {i}"));
                    }
                }
            }
        }
    }
}
