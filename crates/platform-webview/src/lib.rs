#![warn(missing_docs)]
//! Simulated Android WebView platform.
//!
//! "Android WebView renders applications written in Web content language,
//! such as HTML and JavaScript. To enable platform interfaces ... Android
//! offers a generic API `addJavaScriptInterface()` to add a Java object
//! inside a WebView application, treat it as a JavaScript entity, and use
//! the same for invoking a native platform interface." (paper §4.1)
//!
//! This crate models that environment:
//!
//! - [`value::JsValue`] — the dynamically-typed JavaScript value world
//!   that crosses the bridge,
//! - [`webview::WebView`] — a page context created from an Android
//!   [`mobivine_android::Context`], with
//!   [`webview::WebView::add_javascript_interface`],
//! - [`bridge`] — Java↔JS marshalling rules, including the constraint
//!   that exceptions propagate as **error codes** (paper §4.1, step 2),
//! - [`notification`] — the **Notification Table** plus polling
//!   `notifHandler`, needed because "callback notifications received by
//!   an underlying Java object are not available to the invoking call in
//!   JavaScript" (paper footnote 8).

pub mod bridge;
pub mod notification;
pub mod value;
pub mod webview;
pub mod wire;

pub use bridge::{BridgeError, ErrorCode};
pub use value::JsValue;
pub use webview::WebView;
pub use wire::{BatchReplies, NodeId, WireBuf, WireValue};
