//! The **proxy** variant of the workforce app — the paper's Figs. 8
//! and 9.
//!
//! One implementation, every platform. The uniform proxy APIs mean the
//! registration code, the callback signature and the business logic are
//! byte-for-byte identical whether the app runs on Android, S60 or
//! WebView; only the one-line runtime construction differs. Compare
//! with the three hand-written native variants in this crate.

use std::sync::Arc;

use mobivine::api::{CallProxy, HttpProxy, LocationProxy, SmsProxy};
use mobivine::registry::Mobivine;
use mobivine::types::{ProximityEvent, SharedProximityListener};

use crate::logic::{AppEvents, WorkforceLogic};
use crate::model::{AgentConfig, Task};

/// The proxy-based workforce app. Platform-independent: construct it
/// with any [`Mobivine`] runtime.
pub struct ProxyWorkforceApp {
    runtime: Mobivine,
    logic: Arc<WorkforceLogic>,
    events: Arc<AppEvents>,
    tasks: Vec<Task>,
    listeners: Vec<SharedProximityListener>,
}

impl ProxyWorkforceApp {
    /// Assembles the app over a platform runtime.
    ///
    /// # Errors
    ///
    /// Propagates proxy-construction errors. The Call proxy is treated
    /// as optional — on S60 the app degrades to SMS-only supervisor
    /// contact without any platform-specific code.
    pub fn new(
        runtime: Mobivine,
        config: AgentConfig,
        events: Arc<AppEvents>,
    ) -> Result<Self, mobivine::error::ProxyError> {
        let sms = runtime.proxy::<dyn SmsProxy>()?;
        let http = runtime.proxy::<dyn HttpProxy>()?;
        let call = runtime.proxy::<dyn CallProxy>().ok();
        let logic = Arc::new(WorkforceLogic::new(
            config,
            Arc::clone(&events),
            sms,
            http,
            call,
        ));
        Ok(Self {
            runtime,
            logic,
            events,
            tasks: Vec::new(),
            listeners: Vec::new(),
        })
    }

    /// The tasks fetched during [`ProxyWorkforceApp::start`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The observable event log.
    pub fn events(&self) -> &Arc<AppEvents> {
        &self.events
    }

    /// Fetches tasks and registers one proximity alert per task —
    /// the entire Fig. 8 body.
    ///
    /// # Errors
    ///
    /// Propagates proxy errors.
    pub fn start(&mut self) -> Result<(), mobivine::error::ProxyError> {
        self.tasks = self.logic.fetch_tasks()?;
        let location = self.runtime.proxy::<dyn LocationProxy>()?;
        for task in &self.tasks {
            // registering for proximity events
            let logic = Arc::clone(&self.logic);
            let task_for_listener = task.clone();
            let listener: SharedProximityListener = Arc::new(move |event: &ProximityEvent| {
                /* business logic for handling proximity events */
                logic.handle_proximity(&task_for_listener, event);
            });
            location.add_proximity_alert(
                task.latitude,
                task.longitude,
                0.0,
                task.radius_m,
                -1,
                Arc::clone(&listener),
            )?;
            self.listeners.push(listener);
        }
        Ok(())
    }

    /// Quick communication with the supervisor — call where supported,
    /// SMS fallback, decided by the logic layer, not the platform.
    pub fn contact_supervisor(&self, note: &str) {
        self.logic.contact_supervisor(note);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOutcome};
    use mobivine_android::{AndroidPlatform, SdkVersion};
    use mobivine_s60::S60Platform;
    use mobivine_webview::WebView;

    fn run_scenario(
        make_runtime: impl FnOnce(&Scenario) -> Mobivine,
    ) -> (Scenario, Arc<AppEvents>) {
        let scenario = Scenario::two_site_patrol(1);
        let runtime = make_runtime(&scenario);
        let events = AppEvents::new();
        let mut app =
            ProxyWorkforceApp::new(runtime, scenario.config.clone(), Arc::clone(&events)).unwrap();
        app.start().unwrap();
        assert_eq!(app.tasks().len(), 2);
        scenario.device.advance_ms(scenario.patrol_duration_ms());
        scenario.device.advance_ms(1_000);
        (scenario, events)
    }

    fn assert_expected(scenario: &Scenario, events: &AppEvents) {
        assert_eq!(events.count_prefix("arrived:"), 2);
        assert_eq!(events.count_prefix("departed:"), 2);
        assert_eq!(events.count_prefix("task-complete:"), 2);
        assert_eq!(
            ScenarioOutcome::collect(scenario),
            ScenarioOutcome::expected_two_site()
        );
    }

    #[test]
    fn same_app_runs_on_android() {
        let (scenario, events) = run_scenario(|s| {
            let platform = AndroidPlatform::new(s.device.clone(), SdkVersion::M5Rc15);
            Mobivine::for_android(platform.new_context())
        });
        assert_expected(&scenario, &events);
    }

    #[test]
    fn same_app_runs_on_android_1_0_unchanged() {
        // The maintenance experiment: not one line of app code changes.
        let (scenario, events) = run_scenario(|s| {
            let platform = AndroidPlatform::new(s.device.clone(), SdkVersion::V1_0);
            Mobivine::for_android(platform.new_context())
        });
        assert_expected(&scenario, &events);
    }

    #[test]
    fn same_app_runs_on_s60() {
        let (scenario, events) =
            run_scenario(|s| Mobivine::for_s60(S60Platform::new(s.device.clone())));
        assert_expected(&scenario, &events);
    }

    #[test]
    fn same_app_runs_on_webview() {
        let (scenario, events) = run_scenario(|s| {
            let platform = AndroidPlatform::new(s.device.clone(), SdkVersion::M5Rc15);
            Mobivine::for_webview(Arc::new(WebView::new(platform.new_context())))
        });
        assert_expected(&scenario, &events);
    }

    #[test]
    fn supervisor_contact_degrades_gracefully_per_platform() {
        // Android: call succeeds.
        let scenario = Scenario::two_site_patrol(3);
        let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
        let events = AppEvents::new();
        let app = ProxyWorkforceApp::new(
            Mobivine::for_android(platform.new_context()),
            scenario.config.clone(),
            Arc::clone(&events),
        )
        .unwrap();
        app.contact_supervisor("need parts");
        assert_eq!(events.count_prefix("supervisor-contact:call"), 1);

        // S60: same call site, SMS fallback — no app change.
        let scenario = Scenario::two_site_patrol(4);
        let events = AppEvents::new();
        let app = ProxyWorkforceApp::new(
            Mobivine::for_s60(S60Platform::new(scenario.device.clone())),
            scenario.config.clone(),
            Arc::clone(&events),
        )
        .unwrap();
        app.contact_supervisor("need parts");
        assert_eq!(events.count_prefix("supervisor-contact:sms"), 1);
    }
}
