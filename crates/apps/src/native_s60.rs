//! The **native S60** variant of the workforce app — the paper's
//! Fig. 2(b), faithfully verbose.
//!
//! JSR-179 proximity is single-shot with no exit events and no
//! expiration, so the application itself must keep a location listener
//! running, compute distances to detect exits, re-register the
//! proximity listener for re-entries, and check its own timeout — the
//! exact machinery of the paper's listing, here once *per task*.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use mobivine_s60::io::Connector;
use mobivine_s60::location::{
    Coordinates, Criteria, LocationListener, LocationProvider, ProximityListener, NO_REQUIREMENT,
};
use mobivine_s60::messaging::{MessageConnection, MessageType};
use mobivine_s60::midlet::Midlet;
use mobivine_s60::S60Platform;

use crate::logic::AppEvents;
use crate::model::{ActivityEntry, AgentConfig, Task};

/// The S60-native workforce MIDlet.
pub struct NativeS60App {
    config: AgentConfig,
    events: Arc<AppEvents>,
    tasks: Vec<Task>,
    machines: Vec<Arc<ManualProximityMachine>>,
}

impl NativeS60App {
    /// Creates the MIDlet for `config`.
    pub fn new(config: AgentConfig, events: Arc<AppEvents>) -> Self {
        Self {
            config,
            events,
            tasks: Vec::new(),
            machines: Vec::new(),
        }
    }

    /// The tasks fetched during `startApp`.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Quick communication with the supervisor. S60 exposes **no call
    /// interface** (paper §4.1), so the native app can only SMS.
    pub fn contact_supervisor(&self, platform: &S60Platform, note: &str) {
        let url = format!("sms://{}", self.config.supervisor_msisdn);
        if let Ok(connection) = MessageConnection::open_client(platform, &url) {
            let mut message = connection.new_message(MessageType::Text);
            message.set_payload_text(note);
            if connection.send(&message).is_ok() {
                self.events.record("supervisor-contact:sms");
            }
        }
    }

    fn fetch_tasks(&mut self, platform: &S60Platform) {
        let url = format!(
            "http://{}/tasks?agent={}",
            self.config.server_host, self.config.agent_id
        );
        match Connector::open_http(platform, &url) {
            Ok(connection) => match connection.read_fully() {
                Ok(body) => {
                    self.tasks = serde_json::from_str(&body).unwrap_or_default();
                    self.events
                        .record(format!("tasks-fetched:{}", self.tasks.len()));
                }
                Err(_e) => {
                    // Handle S60 specific exceptions
                }
            },
            Err(_e) => {
                // Handle S60 specific exceptions
            }
        }
    }
}

/// The per-task proximity machinery of Fig. 2(b): one object playing
/// both `ProximityListener` and `LocationListener`.
struct ManualProximityMachine {
    platform: S60Platform,
    config: AgentConfig,
    events: Arc<AppEvents>,
    task: Task,
    coordinates: Coordinates,
    radius: f32,
    start_time_s: u64,
    time_out_s: i64,
    entering: AtomicBool,
    provider: Arc<LocationProvider>,
    self_ref: Mutex<Weak<ManualProximityMachine>>,
}

impl ManualProximityMachine {
    fn install(
        platform: &S60Platform,
        config: &AgentConfig,
        events: &Arc<AppEvents>,
        task: &Task,
        time_out_s: i64,
    ) -> Option<Arc<Self>> {
        // registering for proximity events — Fig. 2(b)'s startApp body.
        let mut criteria = Criteria::new();
        criteria.set_preferred_response_time(NO_REQUIREMENT);
        criteria.set_vertical_accuracy(50);
        let provider = match LocationProvider::get_instance(platform, criteria) {
            Ok(provider) => Arc::new(provider),
            Err(_e) => {
                // Handle S60 specific exceptions
                return None;
            }
        };
        let machine = Arc::new(ManualProximityMachine {
            platform: platform.clone(),
            config: config.clone(),
            events: Arc::clone(events),
            task: task.clone(),
            coordinates: Coordinates::new(task.latitude, task.longitude, 0.0),
            radius: task.radius_m as f32,
            start_time_s: platform.device().clock().now_secs(),
            time_out_s,
            entering: AtomicBool::new(false),
            provider,
            self_ref: Mutex::new(Weak::new()),
        });
        *machine.self_ref.lock() = Arc::downgrade(&machine);
        machine.provider.set_location_listener(
            Some(Arc::clone(&machine) as Arc<dyn LocationListener>),
            -1,
            -1,
            -1,
        );
        if LocationProvider::add_proximity_listener(
            platform,
            Arc::clone(&machine) as Arc<dyn ProximityListener>,
            machine.coordinates,
            machine.radius,
        )
        .is_err()
        {
            // Handle S60 specific exceptions
            return None;
        }
        Some(machine)
    }

    fn timed_out(&self) -> bool {
        if self.time_out_s < 0 {
            return false;
        }
        let current_time = self.platform.device().clock().now_secs();
        (current_time - self.start_time_s) as i64 > self.time_out_s
    }

    fn stop_everything(&self) {
        self.provider.set_location_listener(None, -1, -1, -1);
        if let Some(me) = self.self_ref.lock().upgrade() {
            let listener: Arc<dyn ProximityListener> = me;
            LocationProvider::remove_proximity_listener(&self.platform, &listener);
        }
    }

    fn business_logic_entry(&self, at_ms: u64) {
        self.events.record(format!("arrived:site-{}", self.task.id));
        // SMS the supervisor through the full JSR-120 ceremony.
        let url = format!("sms://{}", self.config.supervisor_msisdn);
        if let Ok(connection) = MessageConnection::open_client(&self.platform, &url) {
            let mut message = connection.new_message(MessageType::Text);
            message.set_payload_text(&format!(
                "Agent {} arrived at site {} ({})",
                self.config.agent_id, self.task.id, self.task.description
            ));
            if connection.send(&message).is_ok() {
                self.events
                    .record(format!("sms:arrival-site-{}", self.task.id));
            }
        }
        self.post_activity(at_ms, format!("arrived site {}", self.task.id));
    }

    fn business_logic_exit(&self, at_ms: u64) {
        self.events
            .record(format!("departed:site-{}", self.task.id));
        self.post_activity(at_ms, format!("left site {}", self.task.id));
        let body = serde_json::json!({
            "agent_id": self.config.agent_id,
            "task_id": self.task.id,
        })
        .to_string();
        if let Ok(mut connection) = Connector::open_http(
            &self.platform,
            &format!("http://{}/task-complete", self.config.server_host),
        ) {
            let _ = connection.set_request_method("POST");
            let _ = connection.write_body(body.as_bytes());
            if connection.response_code().is_ok() {
                self.events
                    .record(format!("task-complete:site-{}", self.task.id));
            }
        }
    }

    fn post_activity(&self, at_ms: u64, event: String) {
        let entry = ActivityEntry {
            agent_id: self.config.agent_id,
            at_ms,
            event,
        };
        let Ok(body) = serde_json::to_vec(&entry) else {
            self.events.record("activity-log-failed:serialize");
            return;
        };
        if let Ok(mut connection) = Connector::open_http(
            &self.platform,
            &format!("http://{}/activity-log", self.config.server_host),
        ) {
            let _ = connection.set_request_method("POST");
            let _ = connection.write_body(&body);
            if connection.response_code().is_ok() {
                self.events.record("activity-logged");
            }
        }
    }
}

impl ProximityListener for ManualProximityMachine {
    fn proximity_event(
        &self,
        _coordinates: &Coordinates,
        location: &mobivine_s60::location::Location,
    ) {
        if self.timed_out() {
            // time out — Fig. 2(b) tears everything down here.
            self.stop_everything();
            return;
        }
        self.entering.store(true, Ordering::SeqCst);
        self.business_logic_entry(location.timestamp_ms());
    }
}

impl LocationListener for ManualProximityMachine {
    fn location_updated(
        &self,
        _provider: &LocationProvider,
        location: &mobivine_s60::location::Location,
    ) {
        if self.timed_out() {
            self.stop_everything();
            return;
        }
        if !self.entering.load(Ordering::SeqCst) {
            return;
        }
        if !location.is_valid() {
            return;
        }
        let here = location.qualified_coordinates();
        let distance = here.distance(&self.coordinates);
        if distance > self.radius {
            self.entering.store(false, Ordering::SeqCst);
            self.business_logic_exit(location.timestamp_ms());
            // re-register for the next entry — the manual re-arm the
            // proxy model hides.
            if let Some(me) = self.self_ref.lock().upgrade() {
                if LocationProvider::add_proximity_listener(
                    &self.platform,
                    me as Arc<dyn ProximityListener>,
                    self.coordinates,
                    self.radius,
                )
                .is_err()
                {
                    // Handle S60 specific exceptions
                }
            }
        }
    }
}

impl Midlet for NativeS60App {
    fn start_app(&mut self, platform: &S60Platform) {
        if !self.machines.is_empty() {
            return; // resumed; registrations persist
        }
        self.fetch_tasks(platform);
        for task in self.tasks.clone() {
            if let Some(machine) =
                ManualProximityMachine::install(platform, &self.config, &self.events, &task, -1)
            {
                self.machines.push(machine);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOutcome};
    use mobivine_s60::midlet::MidletHost;

    #[test]
    fn native_s60_app_full_scenario() {
        let scenario = Scenario::two_site_patrol(1);
        let platform = S60Platform::new(scenario.device.clone());
        let events = AppEvents::new();
        let app = NativeS60App::new(scenario.config.clone(), Arc::clone(&events));
        let mut host = MidletHost::new(app, platform);
        host.start().unwrap();
        assert_eq!(host.midlet().tasks().len(), 2);
        scenario.device.advance_ms(scenario.patrol_duration_ms());
        assert_eq!(events.count_prefix("arrived:"), 2);
        assert_eq!(events.count_prefix("departed:"), 2);
        scenario.device.advance_ms(1_000);
        assert_eq!(
            ScenarioOutcome::collect(&scenario),
            ScenarioOutcome::expected_two_site()
        );
    }

    #[test]
    fn contact_supervisor_is_sms_only_on_s60() {
        let scenario = Scenario::two_site_patrol(2);
        let platform = S60Platform::new(scenario.device.clone());
        let events = AppEvents::new();
        let app = NativeS60App::new(scenario.config.clone(), Arc::clone(&events));
        app.contact_supervisor(&platform, "need parts");
        assert_eq!(events.count_prefix("supervisor-contact:sms"), 1);
        assert_eq!(events.count_prefix("supervisor-contact:call"), 0);
    }
}
