//! The server-side application (paper Fig. 1, right half).
//!
//! "Each device-side component … communicates with the server side
//! application that does the tasks of book-keeping, request allocation,
//! etc." Built "using Web standards": JSON over HTTP routes on the
//! simulated network.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mobivine::registry::Mobivine;
use mobivine_device::net::{HttpResponse, Method, SimNetwork};
use mobivine_device::Device;
use mobivine_telemetry::slo::{links_from_incidents, slo_report_json};
use mobivine_telemetry::MetricsRegistry;

use crate::model::{ActivityEntry, Task};

/// Installs a Prometheus-style `GET /metrics` route on `network` under
/// `host`, rendering `registry` in text exposition format at request
/// time. Pair it with the device registry
/// (`device.metrics()`) or a runtime's telemetry registry so scrapes
/// observe live counters.
pub fn install_metrics_route(network: &SimNetwork, host: &str, registry: Arc<MetricsRegistry>) {
    network.register_route(host, Method::Get, "/metrics", move |_req| {
        HttpResponse::ok(registry.render_prometheus())
    });
}

/// Installs a `GET /health` liveness route on `network` under `host`,
/// reporting `runtime`'s protection-layer state as JSON.
///
/// The answer is always `200` (the route responding *is* the liveness
/// signal); the body carries `"status": "ok"` until the overload layer
/// has shed a call or the resilience layer has opened a circuit, after
/// which it reads `"degraded"` — the counters are cumulative over the
/// runtime's life, matching the simulated fleet's "has this device ever
/// been in trouble" digest. Layers that are not wired report `null`.
pub fn install_health_route(network: &SimNetwork, host: &str, runtime: Arc<Mobivine>) {
    network.register_route(host, Method::Get, "/health", move |_req| {
        let overload = runtime.overload_metrics().map(|m| m.snapshot());
        let resilience = runtime.resilience_metrics().map(|m| m.snapshot());
        let shed = overload.as_ref().map_or(0, |o| o.shed);
        let circuit_opens = resilience.as_ref().map_or(0, |r| r.circuit_opens);
        let status = if shed > 0 || circuit_opens > 0 {
            "degraded"
        } else {
            "ok"
        };
        let overload_json = overload.map_or(serde_json::Value::Null, |o| {
            serde_json::json!({
                "shed": o.shed,
                "deadline_fail_fast": o.deadline_fail_fast,
                "bulkhead_rejections": o.bulkhead_rejections,
            })
        });
        let resilience_json = resilience.map_or(serde_json::Value::Null, |r| {
            serde_json::json!({
                "circuit_opens": r.circuit_opens,
                "circuit_rejections": r.circuit_rejections,
                "deadline_exhausted": r.deadline_exhausted,
            })
        });
        let incidents_json = runtime.incidents().map_or(serde_json::Value::Null, |s| {
            serde_json::json!({
                "promoted": s.promoted_total(),
                "dropped": s.dropped(),
            })
        });
        let body = serde_json::json!({
            "status": status,
            "overload": overload_json,
            "resilience": resilience_json,
            "incidents": incidents_json,
        });
        HttpResponse::ok(body.to_string())
    });
}

/// Installs a `GET /slo` route on `network` under `host`, answering the
/// `mobivine.slo.v1` burn-rate report for `runtime`'s SLO engine
/// evaluated at `device`'s current virtual time, with links into the
/// flight recorder's promoted traces
/// ([`mobivine_telemetry::slo::validate_slo_json`] round-trips the
/// body).
///
/// Answers `404` when the runtime has no SLO engine attached — the
/// route is installable unconditionally; the status tells scrapers
/// whether objectives are declared.
pub fn install_slo_route(network: &SimNetwork, host: &str, device: Device, runtime: Arc<Mobivine>) {
    network.register_route(host, Method::Get, "/slo", move |_req| {
        let Some(engine) = runtime.slo_engine() else {
            return HttpResponse::status_only(404);
        };
        let report = engine.report(device.now_ms());
        let links = match runtime.incidents() {
            Some(store) => links_from_incidents(std::slice::from_ref(store)),
            None => Vec::new(),
        };
        HttpResponse::ok(slo_report_json(&report, &links))
    });
}

/// A size snapshot of one [`WfmServer`]'s state, used by the fleet
/// engine to report per-shard server load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WfmServerCounts {
    /// Tasks ever assigned.
    pub tasks: u64,
    /// Completion reports received.
    pub completed: u64,
    /// Activity-log entries received.
    pub activity: u64,
    /// Track points received.
    pub tracks: u64,
}

/// A recorded agent position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Reporting agent.
    pub agent_id: u64,
    /// Latitude, degrees.
    pub latitude: f64,
    /// Longitude, degrees.
    pub longitude: f64,
    /// Report time, virtual ms.
    pub at_ms: u64,
}

#[derive(Debug, Default)]
struct ServerState {
    tasks: Vec<(u64, Task)>,    // (assigned agent, task)
    completed: Vec<(u64, u64)>, // (agent, task id)
    activity: Vec<ActivityEntry>,
    tracks: Vec<TrackPoint>,
    /// When set, `/report-location` stops accepting once this many
    /// track points are stored and answers `503` + `Retry-After`
    /// instead — the server-side half of the overload story, giving
    /// clients an explicit back-off hint.
    track_capacity: Option<u64>,
    /// The back-off hint emitted on a capacity rejection, virtual ms.
    retry_after_ms: u64,
    /// `/report-location` posts rejected over capacity.
    tracks_rejected: u64,
}

/// The workforce-management server: agent tracking, request assignment
/// and activity logging.
#[derive(Clone, Default)]
pub struct WfmServer {
    state: Arc<Mutex<ServerState>>,
}

impl std::fmt::Debug for WfmServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("WfmServer")
            .field("tasks", &state.tasks.len())
            .field("activity", &state.activity.len())
            .finish()
    }
}

impl WfmServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `task` to `agent_id` (the dispatcher's "request
    /// assignment" role).
    pub fn assign_task(&self, agent_id: u64, task: Task) {
        self.state.lock().tasks.push((agent_id, task));
    }

    /// Caps stored track points at `capacity`: further
    /// `/report-location` posts are rejected with `503` and a
    /// `Retry-After` header advising `retry_after_ms` of virtual
    /// back-off (rounded up to whole seconds on the wire, per HTTP).
    pub fn set_track_capacity(&self, capacity: u64, retry_after_ms: u64) {
        let mut state = self.state.lock();
        state.track_capacity = Some(capacity);
        state.retry_after_ms = retry_after_ms.max(1);
    }

    /// How many `/report-location` posts the capacity guard rejected.
    pub fn tracks_rejected(&self) -> u64 {
        self.state.lock().tracks_rejected
    }

    /// Open tasks currently assigned to `agent_id`.
    pub fn tasks_for(&self, agent_id: u64) -> Vec<Task> {
        let state = self.state.lock();
        state
            .tasks
            .iter()
            .filter(|(a, t)| *a == agent_id && !state.completed.contains(&(*a, t.id)))
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// The activity log, in arrival order.
    pub fn activity_log(&self) -> Vec<ActivityEntry> {
        self.state.lock().activity.clone()
    }

    /// All recorded track points for `agent_id`.
    pub fn track(&self, agent_id: u64) -> Vec<TrackPoint> {
        self.state
            .lock()
            .tracks
            .iter()
            .filter(|t| t.agent_id == agent_id)
            .cloned()
            .collect()
    }

    /// A size snapshot of the server's state (cheap: four lengths under
    /// one lock).
    pub fn counts(&self) -> WfmServerCounts {
        let state = self.state.lock();
        WfmServerCounts {
            tasks: state.tasks.len() as u64,
            completed: state.completed.len() as u64,
            activity: state.activity.len() as u64,
            tracks: state.tracks.len() as u64,
        }
    }

    /// Tasks `agent_id` has completed.
    pub fn completed_tasks(&self, agent_id: u64) -> Vec<u64> {
        self.state
            .lock()
            .completed
            .iter()
            .filter(|(a, _)| *a == agent_id)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Installs the HTTP routes on `network` under `host`.
    ///
    /// Routes: `GET /tasks?agent=N`, `POST /activity-log`,
    /// `POST /report-location`, `POST /task-complete`.
    pub fn install(&self, network: &SimNetwork, host: &str) {
        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Get, "/tasks", move |req| {
            let agent_id: Option<u64> = req.url.query.as_deref().and_then(|q| {
                q.split('&')
                    .find_map(|kv| kv.strip_prefix("agent="))
                    .and_then(|v| v.parse().ok())
            });
            match agent_id {
                Some(agent_id) => {
                    let state = state.lock();
                    let tasks: Vec<&Task> = state
                        .tasks
                        .iter()
                        .filter(|(a, t)| *a == agent_id && !state.completed.contains(&(*a, t.id)))
                        .map(|(_, t)| t)
                        .collect();
                    match serde_json::to_vec(&tasks) {
                        Ok(body) => HttpResponse::ok(body),
                        Err(_) => HttpResponse::status_only(500),
                    }
                }
                None => HttpResponse::status_only(400),
            }
        });

        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Post, "/activity-log", move |req| {
            match serde_json::from_slice::<ActivityEntry>(&req.body) {
                Ok(entry) => {
                    state.lock().activity.push(entry);
                    HttpResponse::ok("logged")
                }
                Err(_) => HttpResponse::status_only(400),
            }
        });

        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Post, "/report-location", move |req| {
            match serde_json::from_slice::<TrackPoint>(&req.body) {
                Ok(point) => {
                    let mut state = state.lock();
                    if let Some(capacity) = state.track_capacity {
                        if state.tracks.len() as u64 >= capacity {
                            state.tracks_rejected += 1;
                            let retry_after_secs = state.retry_after_ms.div_ceil(1_000);
                            return HttpResponse::status_only(503)
                                .header("Retry-After", retry_after_secs.to_string());
                        }
                    }
                    state.tracks.push(point);
                    HttpResponse::ok("tracked")
                }
                Err(_) => HttpResponse::status_only(400),
            }
        });

        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Post, "/task-complete", move |req| {
            #[derive(Deserialize)]
            struct Complete {
                agent_id: u64,
                task_id: u64,
            }
            match serde_json::from_slice::<Complete>(&req.body) {
                Ok(c) => {
                    state.lock().completed.push((c.agent_id, c.task_id));
                    HttpResponse::ok("completed")
                }
                Err(_) => HttpResponse::status_only(400),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::net::HttpRequest;
    use mobivine_device::Device;

    fn task(id: u64) -> Task {
        Task {
            id,
            latitude: 28.5,
            longitude: 77.3,
            radius_m: 100.0,
            description: format!("task {id}"),
        }
    }

    fn installed() -> (Device, WfmServer) {
        let device = Device::builder().build();
        let server = WfmServer::new();
        server.install(device.network(), "wfm.example");
        (device, server)
    }

    #[test]
    fn tasks_route_filters_by_agent_and_completion() {
        let (device, server) = installed();
        server.assign_task(1, task(10));
        server.assign_task(1, task(11));
        server.assign_task(2, task(20));
        let req = HttpRequest::get("http://wfm.example/tasks?agent=1").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        let tasks: Vec<Task> = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(tasks.len(), 2);

        // Complete one and re-query.
        let body = serde_json::json!({"agent_id": 1, "task_id": 10}).to_string();
        let req = HttpRequest::post("http://wfm.example/task-complete", body).unwrap();
        device.network().execute(&req).unwrap();
        let req = HttpRequest::get("http://wfm.example/tasks?agent=1").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        let tasks: Vec<Task> = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].id, 11);
        assert_eq!(server.completed_tasks(1), vec![10]);
    }

    #[test]
    fn tasks_route_requires_agent_parameter() {
        let (device, _server) = installed();
        let req = HttpRequest::get("http://wfm.example/tasks").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn activity_log_accumulates() {
        let (device, server) = installed();
        let entry = ActivityEntry {
            agent_id: 1,
            at_ms: 1000,
            event: "arrived".into(),
        };
        let req = HttpRequest::post(
            "http://wfm.example/activity-log",
            serde_json::to_vec(&entry).unwrap(),
        )
        .unwrap();
        device.network().execute(&req).unwrap();
        assert_eq!(server.activity_log(), vec![entry]);
    }

    #[test]
    fn malformed_posts_are_400() {
        let (device, server) = installed();
        let req = HttpRequest::post("http://wfm.example/activity-log", "not json").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 400);
        assert!(server.activity_log().is_empty());
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let device = Device::builder().build();
        install_metrics_route(
            device.network(),
            "wfm.example",
            Arc::clone(device.metrics()),
        );
        // Generate some device traffic so counters are non-zero.
        device
            .network()
            .register_route("wfm.example", Method::Get, "/ping", |_| {
                HttpResponse::ok("pong")
            });
        let ping = HttpRequest::get("http://wfm.example/ping").unwrap();
        device.network().execute(&ping).unwrap();

        let req = HttpRequest::get("http://wfm.example/metrics").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(
            text.contains("device_net_requests_total"),
            "exposition missing net counter:\n{text}"
        );
    }

    #[test]
    fn health_route_reports_protection_state() {
        use mobivine::overload::OverloadPolicy;
        use mobivine::resilience::ResiliencePolicy;
        use mobivine_android::{AndroidPlatform, SdkVersion};

        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let runtime = Arc::new(
            mobivine::registry::Mobivine::builder()
                .with_telemetry()
                .with_resilience(ResiliencePolicy::default())
                .with_overload(OverloadPolicy::default())
                .android(platform.new_context())
                .build()
                .unwrap(),
        );
        install_health_route(device.network(), "wfm.example", runtime);
        let req = HttpRequest::get("http://wfm.example/health").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        let doc: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(
            doc.get_field("status"),
            Some(&serde_json::Value::String("ok".into()))
        );
        let overload = doc.get_field("overload").expect("overload block");
        assert_eq!(
            overload.get_field("shed"),
            Some(&serde_json::Value::Number(0.0))
        );
        let incidents = doc.get_field("incidents").expect("incidents block");
        assert_eq!(
            incidents.get_field("promoted"),
            Some(&serde_json::Value::Number(0.0))
        );
    }

    #[test]
    fn slo_route_serves_a_valid_burn_rate_report() {
        use mobivine::api::LocationProxy;
        use mobivine_android::{AndroidPlatform, SdkVersion};
        use mobivine_telemetry::slo::validate_slo_json;
        use mobivine_telemetry::{SloEngine, SloObjective, SloTarget};

        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let engine = Arc::new(SloEngine::new(vec![SloObjective {
            name: "location-availability".into(),
            proxy: "Location".into(),
            method: "getLocation".into(),
            platform: "android".into(),
            target: SloTarget::Availability {
                target_ppm: 999_000,
            },
        }]));
        let runtime = Arc::new(
            mobivine::registry::Mobivine::builder()
                .with_telemetry()
                .with_slo(Arc::clone(&engine))
                .android(platform.new_context())
                .build()
                .unwrap(),
        );
        let location = runtime.proxy::<dyn LocationProxy>().unwrap();
        for _ in 0..4 {
            location.get_location().unwrap();
        }
        install_slo_route(device.network(), "wfm.example", device.clone(), runtime);
        let req = HttpRequest::get("http://wfm.example/slo").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        let summary = validate_slo_json(&body).expect("slo report round-trips");
        assert_eq!(summary.objectives, 1);
        assert_eq!(summary.breached, 0);
    }

    #[test]
    fn slo_route_is_404_without_an_engine() {
        use mobivine_android::{AndroidPlatform, SdkVersion};

        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let runtime = Arc::new(
            mobivine::registry::Mobivine::for_android(platform.new_context()).with_telemetry(),
        );
        install_slo_route(device.network(), "wfm.example", device.clone(), runtime);
        let req = HttpRequest::get("http://wfm.example/slo").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn track_points_recorded_per_agent() {
        let (device, server) = installed();
        for (agent, t) in [(1u64, 100u64), (2, 200), (1, 300)] {
            let point = TrackPoint {
                agent_id: agent,
                latitude: 28.0,
                longitude: 77.0,
                at_ms: t,
            };
            let req = HttpRequest::post(
                "http://wfm.example/report-location",
                serde_json::to_vec(&point).unwrap(),
            )
            .unwrap();
            device.network().execute(&req).unwrap();
        }
        assert_eq!(server.track(1).len(), 2);
        assert_eq!(server.track(2).len(), 1);
    }

    #[test]
    fn over_capacity_tracks_get_503_with_retry_after() {
        let (device, server) = installed();
        server.set_track_capacity(2, 2_500);
        let post = |at_ms: u64| {
            let point = TrackPoint {
                agent_id: 1,
                latitude: 28.0,
                longitude: 77.0,
                at_ms,
            };
            let req = HttpRequest::post(
                "http://wfm.example/report-location",
                serde_json::to_vec(&point).unwrap(),
            )
            .unwrap();
            device.network().execute(&req).unwrap().0
        };
        assert_eq!(post(1).status, 200);
        assert_eq!(post(2).status, 200);
        let rejected = post(3);
        assert_eq!(rejected.status, 503);
        // 2500ms rounds up to 3 whole seconds on the wire.
        assert_eq!(rejected.header_value("retry-after"), Some("3"));
        assert_eq!(server.track(1).len(), 2, "over-capacity post not stored");
        assert_eq!(server.tracks_rejected(), 1);
        assert_eq!(server.counts().tracks, 2);
    }
}
