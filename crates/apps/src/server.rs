//! The server-side application (paper Fig. 1, right half).
//!
//! "Each device-side component … communicates with the server side
//! application that does the tasks of book-keeping, request allocation,
//! etc." Built "using Web standards": JSON over HTTP routes on the
//! simulated network.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mobivine::journal::fnv1a;
use mobivine::registry::Mobivine;
use mobivine::{
    CheckpointCell, IdempotencyKey, Journal, JournalMetrics, JournalPolicy, JournalSnapshot, Lsn,
};
use mobivine_device::fault::{CrashKind, CrashSchedule};
use mobivine_device::net::{HttpResponse, Method, SimNetwork};
use mobivine_device::Device;
use mobivine_telemetry::slo::{links_from_incidents, slo_report_json};
use mobivine_telemetry::MetricsRegistry;

use crate::model::{ActivityEntry, Task};

/// Installs a Prometheus-style `GET /metrics` route on `network` under
/// `host`, rendering `registry` in text exposition format at request
/// time. Pair it with the device registry
/// (`device.metrics()`) or a runtime's telemetry registry so scrapes
/// observe live counters.
pub fn install_metrics_route(network: &SimNetwork, host: &str, registry: Arc<MetricsRegistry>) {
    network.register_route(host, Method::Get, "/metrics", move |_req| {
        HttpResponse::ok(registry.render_prometheus())
    });
}

/// Installs a `GET /health` liveness route on `network` under `host`,
/// reporting `runtime`'s protection-layer state as JSON.
///
/// The answer is always `200` (the route responding *is* the liveness
/// signal); the body carries `"status": "ok"` until the overload layer
/// has shed a call or the resilience layer has opened a circuit, after
/// which it reads `"degraded"` — the counters are cumulative over the
/// runtime's life, matching the simulated fleet's "has this device ever
/// been in trouble" digest. Layers that are not wired report `null`.
pub fn install_health_route(network: &SimNetwork, host: &str, runtime: Arc<Mobivine>) {
    network.register_route(host, Method::Get, "/health", move |_req| {
        let overload = runtime.overload_metrics().map(|m| m.snapshot());
        let resilience = runtime.resilience_metrics().map(|m| m.snapshot());
        let shed = overload.as_ref().map_or(0, |o| o.shed);
        let circuit_opens = resilience.as_ref().map_or(0, |r| r.circuit_opens);
        let status = if shed > 0 || circuit_opens > 0 {
            "degraded"
        } else {
            "ok"
        };
        let overload_json = overload.map_or(serde_json::Value::Null, |o| {
            serde_json::json!({
                "shed": o.shed,
                "deadline_fail_fast": o.deadline_fail_fast,
                "bulkhead_rejections": o.bulkhead_rejections,
            })
        });
        let resilience_json = resilience.map_or(serde_json::Value::Null, |r| {
            serde_json::json!({
                "circuit_opens": r.circuit_opens,
                "circuit_rejections": r.circuit_rejections,
                "deadline_exhausted": r.deadline_exhausted,
            })
        });
        let incidents_json = runtime.incidents().map_or(serde_json::Value::Null, |s| {
            serde_json::json!({
                "promoted": s.promoted_total(),
                "dropped": s.dropped(),
            })
        });
        let body = serde_json::json!({
            "status": status,
            "overload": overload_json,
            "resilience": resilience_json,
            "incidents": incidents_json,
        });
        HttpResponse::ok(body.to_string())
    });
}

/// Installs a `GET /slo` route on `network` under `host`, answering the
/// `mobivine.slo.v1` burn-rate report for `runtime`'s SLO engine
/// evaluated at `device`'s current virtual time, with links into the
/// flight recorder's promoted traces
/// ([`mobivine_telemetry::slo::validate_slo_json`] round-trips the
/// body).
///
/// Answers `404` when the runtime has no SLO engine attached — the
/// route is installable unconditionally; the status tells scrapers
/// whether objectives are declared.
pub fn install_slo_route(network: &SimNetwork, host: &str, device: Device, runtime: Arc<Mobivine>) {
    network.register_route(host, Method::Get, "/slo", move |_req| {
        let Some(engine) = runtime.slo_engine() else {
            return HttpResponse::status_only(404);
        };
        let report = engine.report(device.now_ms());
        let links = match runtime.incidents() {
            Some(store) => links_from_incidents(std::slice::from_ref(store)),
            None => Vec::new(),
        };
        HttpResponse::ok(slo_report_json(&report, &links))
    });
}

/// A size snapshot of one [`WfmServer`]'s state, used by the fleet
/// engine to report per-shard server load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WfmServerCounts {
    /// Tasks ever assigned.
    pub tasks: u64,
    /// Completion reports received.
    pub completed: u64,
    /// Activity-log entries received.
    pub activity: u64,
    /// Track points received.
    pub tracks: u64,
}

/// A recorded agent position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Reporting agent.
    pub agent_id: u64,
    /// Latitude, degrees.
    pub latitude: f64,
    /// Longitude, degrees.
    pub longitude: f64,
    /// Report time, virtual ms.
    pub at_ms: u64,
}

/// Knobs for a crash-fault-tolerant [`WfmServer`]
/// ([`WfmServer::durable`]).
#[derive(Debug, Clone, Default)]
pub struct DurabilityConfig {
    /// Take a checkpoint (state snapshot + journal high-water mark)
    /// after this many applied mutations. `0` disables checkpoints —
    /// recovery replays from genesis.
    pub checkpoint_every: u32,
    /// Journal knobs (segment size; fsync latency is a client-side
    /// concern and unused here).
    pub policy: JournalPolicy,
    /// When set, mutations whose idempotency key the schedule claims
    /// crash the server at the scheduled point (torn write / intent
    /// gap / post-effect) and immediately recover.
    pub crash: Option<Arc<CrashSchedule>>,
}

/// The checkpoint payload: everything the journal protects. Task
/// assignments and capacity knobs are dispatcher-owned configuration
/// (they arrive out-of-band, not through the mutating HTTP routes) and
/// survive a middleware crash on their own.
#[derive(Debug, Clone, Default)]
struct DurableSnapshot {
    completed: Vec<(u64, u64)>,
    activity: Vec<ActivityEntry>,
    tracks: Vec<TrackPoint>,
    applied: HashSet<u64>,
    keyed_applies: u64,
}

/// Per-server durability state: the WAL, the checkpoint slot, the
/// applied-key table, the crash schedule and the recovery ledger.
#[derive(Debug)]
struct DurableState {
    journal: Journal,
    metrics: Arc<JournalMetrics>,
    checkpoint: CheckpointCell<DurableSnapshot>,
    checkpoint_every: u32,
    since_checkpoint: u32,
    /// Idempotency keys whose effect committed in the current state
    /// generation (wiped by a crash, rebuilt by checkpoint + replay).
    applied: HashSet<u64>,
    /// Total keyed applies in the current generation. Exactly-once
    /// holds iff this equals `applied.len()` — the duplicates gate.
    keyed_applies: u64,
    /// Re-deliveries answered from the journal (`already-applied`).
    suppressed_duplicates: u64,
    crash: Option<Arc<CrashSchedule>>,
    recoveries: u64,
    torn_crashes: u64,
    gap_crashes: u64,
    effect_crashes: u64,
    replayed_records: u64,
    /// Deterministic virtual recovery cost per crash survived, µs.
    recovery_cost_us: Vec<u64>,
}

/// The recovery ledger of a durable [`WfmServer`], reported by the
/// fleet's crash-storm digest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerRecoverySnapshot {
    /// Crashes survived (one recovery pass each).
    pub recoveries: u64,
    /// Crashes that tore the intent record mid-write.
    pub torn_crashes: u64,
    /// Crashes in the gap between a durable intent and its effect.
    pub gap_crashes: u64,
    /// Crashes after the effect but before the covering checkpoint.
    pub effect_crashes: u64,
    /// Committed records replayed across all recoveries.
    pub replayed_records: u64,
    /// Torn tail records truncated across all recoveries.
    pub torn_truncated: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Re-deliveries answered from the journal.
    pub suppressed_duplicates: u64,
    /// Total keyed applies in the current state generation.
    pub keyed_applies: u64,
    /// Distinct idempotency keys applied in the current generation.
    pub distinct_keys: u64,
    /// Virtual recovery cost per crash, µs, in crash order.
    pub recovery_cost_us: Vec<u64>,
}

impl ServerRecoverySnapshot {
    /// Keyed effects applied more than once — exactly-once demands 0.
    pub fn duplicates(&self) -> u64 {
        self.keyed_applies.saturating_sub(self.distinct_keys)
    }
}

#[derive(Debug, Default)]
struct ServerState {
    tasks: Vec<(u64, Task)>,    // (assigned agent, task)
    completed: Vec<(u64, u64)>, // (agent, task id)
    activity: Vec<ActivityEntry>,
    tracks: Vec<TrackPoint>,
    /// When set, `/report-location` stops accepting once this many
    /// track points are stored and answers `503` + `Retry-After`
    /// instead — the server-side half of the overload story, giving
    /// clients an explicit back-off hint.
    track_capacity: Option<u64>,
    /// The back-off hint emitted on a capacity rejection, virtual ms.
    retry_after_ms: u64,
    /// `/report-location` posts rejected over capacity.
    tracks_rejected: u64,
    /// Present on servers built with [`WfmServer::durable`].
    durability: Option<DurableState>,
}

/// Completion report body, shared by the live route and journal replay.
#[derive(Debug, Serialize, Deserialize)]
struct CompleteBody {
    agent_id: u64,
    task_id: u64,
}

/// Extracts the `idem` query parameter carried by the client-side
/// `Journaled` HTTP decorator.
fn idem_from_query(query: Option<&str>) -> Option<IdempotencyKey> {
    query.and_then(|q| {
        q.split('&')
            .find_map(|kv| kv.strip_prefix("idem="))
            .and_then(IdempotencyKey::from_hex)
    })
}

/// Encodes one journal record: `{tag}|{key-hex-or-dash}|{json}`.
fn encode_record(tag: &str, key: Option<IdempotencyKey>, json: &str) -> String {
    let key = key
        .map(IdempotencyKey::to_hex)
        .unwrap_or_else(|| "-".into());
    format!("{tag}|{key}|{json}")
}

/// Applies one decoded mutation. This is the ONLY place journaled
/// effects reach server state — live requests and recovery replay both
/// come through here, which is what makes replay idempotent by
/// construction. Returns `false` for an undecodable record.
fn apply_record(
    state: &mut ServerState,
    mut bookkeeping: Option<(&mut HashSet<u64>, &mut u64)>,
    payload: &str,
) -> bool {
    let mut parts = payload.splitn(3, '|');
    let (Some(tag), Some(key), Some(json)) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    let applied = match tag {
        "track" => serde_json::from_str::<TrackPoint>(json)
            .map(|p| state.tracks.push(p))
            .is_ok(),
        "activity" => serde_json::from_str::<ActivityEntry>(json)
            .map(|e| state.activity.push(e))
            .is_ok(),
        "complete" => serde_json::from_str::<CompleteBody>(json)
            .map(|c| state.completed.push((c.agent_id, c.task_id)))
            .is_ok(),
        _ => false,
    };
    if applied {
        if let (Some((applied_set, keyed)), Some(k)) =
            (bookkeeping.as_mut(), IdempotencyKey::from_hex(key))
        {
            applied_set.insert(k.0);
            **keyed += 1;
        }
    }
    applied
}

/// Wipes the crashed generation and rebuilds it from the latest
/// checkpoint plus a journal replay, recording the crash in the
/// recovery ledger.
fn recover_after_crash(state: &mut ServerState, d: &mut DurableState, kind: CrashKind) {
    // Process death: journal-protected in-memory state is gone.
    state.completed.clear();
    state.activity.clear();
    state.tracks.clear();
    d.applied.clear();
    d.keyed_applies = 0;
    let from = match d.checkpoint.load() {
        Some((snap, high_water)) => {
            state.completed = snap.completed;
            state.activity = snap.activity;
            state.tracks = snap.tracks;
            d.applied = snap.applied;
            d.keyed_applies = snap.keyed_applies;
            high_water
        }
        None => Lsn(0),
    };
    let recovery = d.journal.recover(from);
    let replayed = recovery.records.len() as u64;
    for record in &recovery.records {
        if let Ok(payload) = std::str::from_utf8(&record.payload) {
            apply_record(state, Some((&mut d.applied, &mut d.keyed_applies)), payload);
        }
    }
    d.recoveries += 1;
    match kind {
        CrashKind::TornWrite => d.torn_crashes += 1,
        CrashKind::BeforeEffect => d.gap_crashes += 1,
        CrashKind::AfterEffect => d.effect_crashes += 1,
    }
    d.replayed_records += replayed;
    // Deterministic virtual recovery cost: a fixed restart overhead,
    // per-record replay work, and a torn-tail scan surcharge (µs).
    let cost_us = 150 + 40 * replayed + 90 * recovery.torn_records;
    d.recovery_cost_us.push(cost_us);
}

/// Snapshots state + applied table into the checkpoint slot once
/// `checkpoint_every` applies have accumulated, then GCs sealed journal
/// segments below the new high-water mark.
fn maybe_checkpoint(state: &mut ServerState, d: &mut DurableState) {
    if d.checkpoint_every == 0 {
        return;
    }
    d.since_checkpoint += 1;
    if d.since_checkpoint < d.checkpoint_every {
        return;
    }
    d.since_checkpoint = 0;
    let snapshot = DurableSnapshot {
        completed: state.completed.clone(),
        activity: state.activity.clone(),
        tracks: state.tracks.clone(),
        applied: d.applied.clone(),
        keyed_applies: d.keyed_applies,
    };
    let high_water = d.journal.durable_end();
    d.checkpoint.save(snapshot, high_water);
    d.journal.truncate_before(high_water);
    d.metrics.note_checkpoint();
}

/// The durable mutation path: duplicate check → journal the intent →
/// (scheduled crash?) → fsync barrier → effect → checkpoint. The
/// intent is journaled and fsynced BEFORE `apply_record` runs — the
/// write-ahead invariant.
fn durable_mutate(
    state: &mut ServerState,
    tag: &str,
    key: Option<IdempotencyKey>,
    json: &str,
    success_body: &str,
) -> HttpResponse {
    let Some(mut d) = state.durability.take() else {
        return HttpResponse::status_only(500);
    };
    if let Some(k) = key {
        if d.applied.contains(&k.0) {
            d.suppressed_duplicates += 1;
            d.metrics.note_already_applied();
            state.durability = Some(d);
            return HttpResponse::ok("already-applied");
        }
    }
    let payload = encode_record(tag, key, json);
    d.journal.append(payload.as_bytes());
    let scheduled = key.and_then(|k| d.crash.as_ref().and_then(|c| c.take(k.0)));
    let response = match scheduled {
        Some(kind @ CrashKind::TornWrite) => {
            // Process dies mid-write: all but the last byte of the
            // frame reached the disk queue — a torn tail for recovery
            // to truncate.
            let keep = d.journal.volatile_len().saturating_sub(1);
            d.journal.crash(Some(keep));
            recover_after_crash(state, &mut d, kind);
            HttpResponse::status_only(503)
        }
        Some(kind @ CrashKind::BeforeEffect) => {
            // Intent is durable, effect never ran: replay applies it.
            d.journal.fsync();
            d.journal.crash(None);
            recover_after_crash(state, &mut d, kind);
            HttpResponse::status_only(503)
        }
        Some(kind @ CrashKind::AfterEffect) => {
            // Effect ran but the covering checkpoint didn't: the wipe
            // discards it and replay re-applies it — net exactly once.
            d.journal.fsync();
            apply_record(
                state,
                Some((&mut d.applied, &mut d.keyed_applies)),
                &payload,
            );
            d.journal.crash(None);
            recover_after_crash(state, &mut d, kind);
            HttpResponse::status_only(503)
        }
        None => {
            d.journal.fsync();
            let applied = apply_record(
                state,
                Some((&mut d.applied, &mut d.keyed_applies)),
                &payload,
            );
            if applied {
                maybe_checkpoint(state, &mut d);
                HttpResponse::ok(success_body)
            } else {
                HttpResponse::status_only(500)
            }
        }
    };
    state.durability = Some(d);
    response
}

/// The workforce-management server: agent tracking, request assignment
/// and activity logging.
#[derive(Clone, Default)]
pub struct WfmServer {
    state: Arc<Mutex<ServerState>>,
}

impl std::fmt::Debug for WfmServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("WfmServer")
            .field("tasks", &state.tasks.len())
            .field("activity", &state.activity.len())
            .finish()
    }
}

impl WfmServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty crash-fault-tolerant server: every mutating
    /// route journals an intent record (and crosses the fsync barrier)
    /// *before* its effect runs, checkpoints every
    /// `config.checkpoint_every` applies, dedups re-deliveries by
    /// idempotency key, and — when `config.crash` is armed — dies and
    /// recovers at the scheduled crash points.
    pub fn durable(config: DurabilityConfig) -> Self {
        let metrics = JournalMetrics::shared();
        let journal = Journal::new(&config.policy, Arc::clone(&metrics));
        let server = Self::default();
        server.state.lock().durability = Some(DurableState {
            journal,
            metrics,
            checkpoint: CheckpointCell::new(),
            checkpoint_every: config.checkpoint_every,
            since_checkpoint: 0,
            applied: HashSet::new(),
            keyed_applies: 0,
            suppressed_duplicates: 0,
            crash: config.crash,
            recoveries: 0,
            torn_crashes: 0,
            gap_crashes: 0,
            effect_crashes: 0,
            replayed_records: 0,
            recovery_cost_us: Vec::new(),
        });
        server
    }

    /// The durability counters, when built with [`WfmServer::durable`].
    pub fn journal_snapshot(&self) -> Option<JournalSnapshot> {
        self.state
            .lock()
            .durability
            .as_ref()
            .map(|d| d.metrics.snapshot())
    }

    /// The recovery ledger, when built with [`WfmServer::durable`].
    pub fn recovery_snapshot(&self) -> Option<ServerRecoverySnapshot> {
        let state = self.state.lock();
        state.durability.as_ref().map(|d| ServerRecoverySnapshot {
            recoveries: d.recoveries,
            torn_crashes: d.torn_crashes,
            gap_crashes: d.gap_crashes,
            effect_crashes: d.effect_crashes,
            replayed_records: d.replayed_records,
            torn_truncated: d.metrics.snapshot().torn_truncated,
            checkpoints: d.metrics.snapshot().checkpoints,
            suppressed_duplicates: d.suppressed_duplicates,
            keyed_applies: d.keyed_applies,
            distinct_keys: d.applied.len() as u64,
            recovery_cost_us: d.recovery_cost_us.clone(),
        })
    }

    /// An order-sensitive FNV-1a digest of the journal-protected state
    /// (completions, activity log, track points). Two servers that
    /// processed the same logical mutations — crash-free or through
    /// any number of recoveries — digest identically.
    pub fn state_digest(&self) -> u64 {
        let state = self.state.lock();
        let mut buf = String::new();
        for (agent, task) in &state.completed {
            buf.push_str(&format!("c|{agent}|{task}\n"));
        }
        for e in &state.activity {
            buf.push_str(&format!("a|{}|{}|{}\n", e.agent_id, e.at_ms, e.event));
        }
        for p in &state.tracks {
            buf.push_str(&format!(
                "t|{}|{:.6}|{:.6}|{}\n",
                p.agent_id, p.latitude, p.longitude, p.at_ms
            ));
        }
        fnv1a(buf.as_bytes())
    }

    /// Assigns `task` to `agent_id` (the dispatcher's "request
    /// assignment" role).
    pub fn assign_task(&self, agent_id: u64, task: Task) {
        self.state.lock().tasks.push((agent_id, task));
    }

    /// Caps stored track points at `capacity`: further
    /// `/report-location` posts are rejected with `503` and a
    /// `Retry-After` header advising `retry_after_ms` of virtual
    /// back-off (rounded up to whole seconds on the wire, per HTTP).
    pub fn set_track_capacity(&self, capacity: u64, retry_after_ms: u64) {
        let mut state = self.state.lock();
        state.track_capacity = Some(capacity);
        state.retry_after_ms = retry_after_ms.max(1);
    }

    /// How many `/report-location` posts the capacity guard rejected.
    pub fn tracks_rejected(&self) -> u64 {
        self.state.lock().tracks_rejected
    }

    /// Open tasks currently assigned to `agent_id`.
    pub fn tasks_for(&self, agent_id: u64) -> Vec<Task> {
        let state = self.state.lock();
        state
            .tasks
            .iter()
            .filter(|(a, t)| *a == agent_id && !state.completed.contains(&(*a, t.id)))
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// The activity log, in arrival order.
    pub fn activity_log(&self) -> Vec<ActivityEntry> {
        self.state.lock().activity.clone()
    }

    /// All recorded track points for `agent_id`.
    pub fn track(&self, agent_id: u64) -> Vec<TrackPoint> {
        self.state
            .lock()
            .tracks
            .iter()
            .filter(|t| t.agent_id == agent_id)
            .cloned()
            .collect()
    }

    /// A size snapshot of the server's state (cheap: four lengths under
    /// one lock).
    pub fn counts(&self) -> WfmServerCounts {
        let state = self.state.lock();
        WfmServerCounts {
            tasks: state.tasks.len() as u64,
            completed: state.completed.len() as u64,
            activity: state.activity.len() as u64,
            tracks: state.tracks.len() as u64,
        }
    }

    /// Tasks `agent_id` has completed.
    pub fn completed_tasks(&self, agent_id: u64) -> Vec<u64> {
        self.state
            .lock()
            .completed
            .iter()
            .filter(|(a, _)| *a == agent_id)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Installs the HTTP routes on `network` under `host`.
    ///
    /// Routes: `GET /tasks?agent=N`, `POST /activity-log`,
    /// `POST /report-location`, `POST /task-complete`.
    pub fn install(&self, network: &SimNetwork, host: &str) {
        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Get, "/tasks", move |req| {
            let agent_id: Option<u64> = req.url.query.as_deref().and_then(|q| {
                q.split('&')
                    .find_map(|kv| kv.strip_prefix("agent="))
                    .and_then(|v| v.parse().ok())
            });
            match agent_id {
                Some(agent_id) => {
                    let state = state.lock();
                    let tasks: Vec<&Task> = state
                        .tasks
                        .iter()
                        .filter(|(a, t)| *a == agent_id && !state.completed.contains(&(*a, t.id)))
                        .map(|(_, t)| t)
                        .collect();
                    match serde_json::to_vec(&tasks) {
                        Ok(body) => HttpResponse::ok(body),
                        Err(_) => HttpResponse::status_only(500),
                    }
                }
                None => HttpResponse::status_only(400),
            }
        });

        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Post, "/activity-log", move |req| {
            match serde_json::from_slice::<ActivityEntry>(&req.body) {
                Ok(entry) => {
                    let mut state = state.lock();
                    if state.durability.is_some() {
                        let Ok(json) = serde_json::to_string(&entry) else {
                            return HttpResponse::status_only(500);
                        };
                        let key = idem_from_query(req.url.query.as_deref());
                        return durable_mutate(&mut state, "activity", key, &json, "logged");
                    }
                    state.activity.push(entry);
                    HttpResponse::ok("logged")
                }
                Err(_) => HttpResponse::status_only(400),
            }
        });

        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Post, "/report-location", move |req| {
            match serde_json::from_slice::<TrackPoint>(&req.body) {
                Ok(point) => {
                    let mut state = state.lock();
                    // Capacity shedding happens before journaling: a
                    // rejected request burns no intent record.
                    if let Some(capacity) = state.track_capacity {
                        if state.tracks.len() as u64 >= capacity {
                            state.tracks_rejected += 1;
                            let retry_after_secs = state.retry_after_ms.div_ceil(1_000);
                            return HttpResponse::status_only(503)
                                .header("Retry-After", retry_after_secs.to_string());
                        }
                    }
                    if state.durability.is_some() {
                        let Ok(json) = serde_json::to_string(&point) else {
                            return HttpResponse::status_only(500);
                        };
                        let key = idem_from_query(req.url.query.as_deref());
                        return durable_mutate(&mut state, "track", key, &json, "tracked");
                    }
                    state.tracks.push(point);
                    HttpResponse::ok("tracked")
                }
                Err(_) => HttpResponse::status_only(400),
            }
        });

        let state = Arc::clone(&self.state);
        network.register_route(host, Method::Post, "/task-complete", move |req| {
            match serde_json::from_slice::<CompleteBody>(&req.body) {
                Ok(c) => {
                    let mut state = state.lock();
                    if state.durability.is_some() {
                        let Ok(json) = serde_json::to_string(&c) else {
                            return HttpResponse::status_only(500);
                        };
                        let key = idem_from_query(req.url.query.as_deref());
                        return durable_mutate(&mut state, "complete", key, &json, "completed");
                    }
                    state.completed.push((c.agent_id, c.task_id));
                    HttpResponse::ok("completed")
                }
                Err(_) => HttpResponse::status_only(400),
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_device::net::HttpRequest;
    use mobivine_device::Device;

    fn task(id: u64) -> Task {
        Task {
            id,
            latitude: 28.5,
            longitude: 77.3,
            radius_m: 100.0,
            description: format!("task {id}"),
        }
    }

    fn installed() -> (Device, WfmServer) {
        let device = Device::builder().build();
        let server = WfmServer::new();
        server.install(device.network(), "wfm.example");
        (device, server)
    }

    #[test]
    fn tasks_route_filters_by_agent_and_completion() {
        let (device, server) = installed();
        server.assign_task(1, task(10));
        server.assign_task(1, task(11));
        server.assign_task(2, task(20));
        let req = HttpRequest::get("http://wfm.example/tasks?agent=1").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        let tasks: Vec<Task> = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(tasks.len(), 2);

        // Complete one and re-query.
        let body = serde_json::json!({"agent_id": 1, "task_id": 10}).to_string();
        let req = HttpRequest::post("http://wfm.example/task-complete", body).unwrap();
        device.network().execute(&req).unwrap();
        let req = HttpRequest::get("http://wfm.example/tasks?agent=1").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        let tasks: Vec<Task> = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].id, 11);
        assert_eq!(server.completed_tasks(1), vec![10]);
    }

    #[test]
    fn tasks_route_requires_agent_parameter() {
        let (device, _server) = installed();
        let req = HttpRequest::get("http://wfm.example/tasks").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn activity_log_accumulates() {
        let (device, server) = installed();
        let entry = ActivityEntry {
            agent_id: 1,
            at_ms: 1000,
            event: "arrived".into(),
        };
        let req = HttpRequest::post(
            "http://wfm.example/activity-log",
            serde_json::to_vec(&entry).unwrap(),
        )
        .unwrap();
        device.network().execute(&req).unwrap();
        assert_eq!(server.activity_log(), vec![entry]);
    }

    #[test]
    fn malformed_posts_are_400() {
        let (device, server) = installed();
        let req = HttpRequest::post("http://wfm.example/activity-log", "not json").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 400);
        assert!(server.activity_log().is_empty());
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let device = Device::builder().build();
        install_metrics_route(
            device.network(),
            "wfm.example",
            Arc::clone(device.metrics()),
        );
        // Generate some device traffic so counters are non-zero.
        device
            .network()
            .register_route("wfm.example", Method::Get, "/ping", |_| {
                HttpResponse::ok("pong")
            });
        let ping = HttpRequest::get("http://wfm.example/ping").unwrap();
        device.network().execute(&ping).unwrap();

        let req = HttpRequest::get("http://wfm.example/metrics").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(
            text.contains("device_net_requests_total"),
            "exposition missing net counter:\n{text}"
        );
    }

    #[test]
    fn health_route_reports_protection_state() {
        use mobivine::overload::OverloadPolicy;
        use mobivine::resilience::ResiliencePolicy;
        use mobivine_android::{AndroidPlatform, SdkVersion};

        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let runtime = Arc::new(
            mobivine::registry::Mobivine::builder()
                .with_telemetry()
                .with_resilience(ResiliencePolicy::default())
                .with_overload(OverloadPolicy::default())
                .android(platform.new_context())
                .build()
                .unwrap(),
        );
        install_health_route(device.network(), "wfm.example", runtime);
        let req = HttpRequest::get("http://wfm.example/health").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        let doc: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(
            doc.get_field("status"),
            Some(&serde_json::Value::String("ok".into()))
        );
        let overload = doc.get_field("overload").expect("overload block");
        assert_eq!(
            overload.get_field("shed"),
            Some(&serde_json::Value::Number(0.0))
        );
        let incidents = doc.get_field("incidents").expect("incidents block");
        assert_eq!(
            incidents.get_field("promoted"),
            Some(&serde_json::Value::Number(0.0))
        );
    }

    #[test]
    fn slo_route_serves_a_valid_burn_rate_report() {
        use mobivine::api::LocationProxy;
        use mobivine_android::{AndroidPlatform, SdkVersion};
        use mobivine_telemetry::slo::validate_slo_json;
        use mobivine_telemetry::{SloEngine, SloObjective, SloTarget};

        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let engine = Arc::new(SloEngine::new(vec![SloObjective {
            name: "location-availability".into(),
            proxy: "Location".into(),
            method: "getLocation".into(),
            platform: "android".into(),
            target: SloTarget::Availability {
                target_ppm: 999_000,
            },
        }]));
        let runtime = Arc::new(
            mobivine::registry::Mobivine::builder()
                .with_telemetry()
                .with_slo(Arc::clone(&engine))
                .android(platform.new_context())
                .build()
                .unwrap(),
        );
        let location = runtime.proxy::<dyn LocationProxy>().unwrap();
        for _ in 0..4 {
            location.get_location().unwrap();
        }
        install_slo_route(device.network(), "wfm.example", device.clone(), runtime);
        let req = HttpRequest::get("http://wfm.example/slo").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        let body = String::from_utf8(resp.body).unwrap();
        let summary = validate_slo_json(&body).expect("slo report round-trips");
        assert_eq!(summary.objectives, 1);
        assert_eq!(summary.breached, 0);
    }

    #[test]
    fn slo_route_is_404_without_an_engine() {
        use mobivine_android::{AndroidPlatform, SdkVersion};

        let device = Device::builder().build();
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let runtime = Arc::new(
            mobivine::registry::Mobivine::for_android(platform.new_context()).with_telemetry(),
        );
        install_slo_route(device.network(), "wfm.example", device.clone(), runtime);
        let req = HttpRequest::get("http://wfm.example/slo").unwrap();
        let (resp, _) = device.network().execute(&req).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn track_points_recorded_per_agent() {
        let (device, server) = installed();
        for (agent, t) in [(1u64, 100u64), (2, 200), (1, 300)] {
            let point = TrackPoint {
                agent_id: agent,
                latitude: 28.0,
                longitude: 77.0,
                at_ms: t,
            };
            let req = HttpRequest::post(
                "http://wfm.example/report-location",
                serde_json::to_vec(&point).unwrap(),
            )
            .unwrap();
            device.network().execute(&req).unwrap();
        }
        assert_eq!(server.track(1).len(), 2);
        assert_eq!(server.track(2).len(), 1);
    }

    fn durable_installed(config: DurabilityConfig) -> (Device, WfmServer) {
        let device = Device::builder().build();
        let server = WfmServer::durable(config);
        server.install(device.network(), "wfm.example");
        (device, server)
    }

    fn post_track(device: &Device, key: IdempotencyKey, at_ms: u64) -> u16 {
        let point = TrackPoint {
            agent_id: 1,
            latitude: 28.0,
            longitude: 77.0,
            at_ms,
        };
        let url = format!("http://wfm.example/report-location?idem={}", key.to_hex());
        let req = HttpRequest::post(&url, serde_json::to_vec(&point).unwrap()).unwrap();
        device.network().execute(&req).unwrap().0.status
    }

    #[test]
    fn durable_server_dedups_re_delivered_idempotency_keys() {
        let (device, server) = durable_installed(DurabilityConfig {
            checkpoint_every: 1,
            ..Default::default()
        });
        let key = IdempotencyKey::derive(11, 0, 1, 0);
        assert_eq!(post_track(&device, key, 100), 200);
        assert_eq!(post_track(&device, key, 100), 200, "duplicate is a 200");
        assert_eq!(server.counts().tracks, 1, "effect committed exactly once");
        let ledger = server.recovery_snapshot().unwrap();
        assert_eq!(ledger.suppressed_duplicates, 1);
        assert_eq!(ledger.duplicates(), 0);
        let journal = server.journal_snapshot().unwrap();
        assert_eq!(journal.appends, 1);
        assert_eq!(journal.already_applied, 1);
        assert_eq!(journal.checkpoints, 1);
    }

    #[test]
    fn torn_write_crash_truncates_the_tail_and_the_retry_commits_once() {
        let key = IdempotencyKey::derive(11, 0, 1, 0);
        let schedule = CrashSchedule::new([(key.0, CrashKind::TornWrite)]);
        schedule.arm();
        let (device, server) = durable_installed(DurabilityConfig {
            checkpoint_every: 1,
            crash: Some(Arc::clone(&schedule)),
            ..Default::default()
        });
        assert_eq!(post_track(&device, key, 100), 503, "crash kills the call");
        assert_eq!(server.counts().tracks, 0, "torn intent never committed");
        assert_eq!(post_track(&device, key, 100), 200, "retry commits");
        assert_eq!(server.counts().tracks, 1);
        let ledger = server.recovery_snapshot().unwrap();
        assert_eq!(ledger.recoveries, 1);
        assert_eq!(ledger.torn_crashes, 1);
        assert_eq!(ledger.torn_truncated, 1);
        assert_eq!(ledger.replayed_records, 0, "torn frame is not replayable");
        assert_eq!(ledger.duplicates(), 0);
    }

    #[test]
    fn intent_effect_gap_crash_is_healed_by_replay_and_the_retry_dedups() {
        let key = IdempotencyKey::derive(11, 0, 2, 0);
        let schedule = CrashSchedule::new([(key.0, CrashKind::BeforeEffect)]);
        schedule.arm();
        let (device, server) = durable_installed(DurabilityConfig {
            checkpoint_every: 1,
            crash: Some(Arc::clone(&schedule)),
            ..Default::default()
        });
        assert_eq!(post_track(&device, key, 200), 503);
        assert_eq!(server.counts().tracks, 1, "replay applied the intent");
        assert_eq!(post_track(&device, key, 200), 200, "retry is a dedup hit");
        assert_eq!(server.counts().tracks, 1, "still exactly once");
        let ledger = server.recovery_snapshot().unwrap();
        assert_eq!(ledger.gap_crashes, 1);
        assert_eq!(ledger.replayed_records, 1);
        assert_eq!(ledger.suppressed_duplicates, 1);
        assert_eq!(ledger.duplicates(), 0);
    }

    #[test]
    fn post_effect_crash_does_not_duplicate_across_wipe_and_replay() {
        let key = IdempotencyKey::derive(11, 0, 3, 0);
        let schedule = CrashSchedule::new([(key.0, CrashKind::AfterEffect)]);
        schedule.arm();
        let (device, server) = durable_installed(DurabilityConfig {
            checkpoint_every: 1,
            crash: Some(Arc::clone(&schedule)),
            ..Default::default()
        });
        assert_eq!(post_track(&device, key, 300), 503);
        assert_eq!(server.counts().tracks, 1, "wipe + replay nets one apply");
        assert_eq!(post_track(&device, key, 300), 200);
        assert_eq!(server.counts().tracks, 1);
        let ledger = server.recovery_snapshot().unwrap();
        assert_eq!(ledger.effect_crashes, 1);
        assert_eq!(ledger.replayed_records, 1);
        assert_eq!(ledger.duplicates(), 0);
    }

    #[test]
    fn crashed_and_crash_free_servers_digest_identically() {
        let crash_key = IdempotencyKey::derive(11, 0, 2, 1);
        let schedule = CrashSchedule::new([(crash_key.0, CrashKind::BeforeEffect)]);
        schedule.arm();
        let (crashing_device, crashing) = durable_installed(DurabilityConfig {
            checkpoint_every: 1,
            crash: Some(Arc::clone(&schedule)),
            ..Default::default()
        });
        let (clean_device, clean) = durable_installed(DurabilityConfig {
            checkpoint_every: 1,
            ..Default::default()
        });
        for round in 1..=3u64 {
            for op in 0..4u64 {
                let key = IdempotencyKey::derive(11, 0, round, op);
                let at_ms = round * 1_000 + op;
                let status = post_track(&crashing_device, key, at_ms);
                if status == 503 {
                    assert_eq!(post_track(&crashing_device, key, at_ms), 200);
                }
                assert_eq!(post_track(&clean_device, key, at_ms), 200);
            }
        }
        assert_eq!(crashing.state_digest(), clean.state_digest());
        assert_eq!(crashing.counts(), clean.counts());
        assert_eq!(crashing.recovery_snapshot().unwrap().duplicates(), 0);
        assert_eq!(crashing.recovery_snapshot().unwrap().recoveries, 1);
    }

    #[test]
    fn sparse_checkpoints_bound_replay_but_preserve_state() {
        // checkpoint_every=3: a crash after 5 applies replays the 2
        // records past the checkpoint, not all 5.
        let crash_key = IdempotencyKey::derive(7, 0, 1, 5);
        let schedule = CrashSchedule::new([(crash_key.0, CrashKind::BeforeEffect)]);
        schedule.arm();
        let (device, server) = durable_installed(DurabilityConfig {
            checkpoint_every: 3,
            crash: Some(Arc::clone(&schedule)),
            ..Default::default()
        });
        for op in 0..5u64 {
            let key = IdempotencyKey::derive(7, 0, 1, op);
            assert_eq!(post_track(&device, key, 100 + op), 200);
        }
        assert_eq!(post_track(&device, crash_key, 105), 503);
        assert_eq!(
            server.counts().tracks,
            6,
            "checkpoint + replay restored all"
        );
        let ledger = server.recovery_snapshot().unwrap();
        // Applies 0..2 are covered by the checkpoint; 3, 4 and the
        // crashed intent replay.
        assert_eq!(ledger.replayed_records, 3);
        assert_eq!(ledger.checkpoints, 1);
        assert_eq!(ledger.duplicates(), 0);
    }

    #[test]
    fn over_capacity_tracks_get_503_with_retry_after() {
        let (device, server) = installed();
        server.set_track_capacity(2, 2_500);
        let post = |at_ms: u64| {
            let point = TrackPoint {
                agent_id: 1,
                latitude: 28.0,
                longitude: 77.0,
                at_ms,
            };
            let req = HttpRequest::post(
                "http://wfm.example/report-location",
                serde_json::to_vec(&point).unwrap(),
            )
            .unwrap();
            device.network().execute(&req).unwrap().0
        };
        assert_eq!(post(1).status, 200);
        assert_eq!(post(2).status, 200);
        let rejected = post(3);
        assert_eq!(rejected.status, 503);
        // 2500ms rounds up to 3 whole seconds on the wire.
        assert_eq!(rejected.header_value("retry-after"), Some("3"));
        assert_eq!(server.track(1).len(), 2, "over-capacity post not stored");
        assert_eq!(server.tracks_rejected(), 1);
        assert_eq!(server.counts().tracks, 2);
    }
}
