//! Code metrics over the app variants — the quantitative backing for
//! the paper's portability (§5 Q1) and complexity (§5 Q2) arguments.
//!
//! The paper argues from code fragments (Fig. 2 vs Figs. 8/9); here the
//! complete variant sources are embedded and measured: lines of code,
//! references to platform-specific APIs, callback-machinery footprint,
//! and a cross-platform similarity ratio for the portability claim.

/// Metrics for one source module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeMetrics {
    /// Non-blank, non-comment lines.
    pub loc: usize,
    /// Occurrences of platform-specific API identifiers.
    pub platform_api_refs: usize,
    /// Lines implementing callback plumbing (receivers, listeners,
    /// polling, re-registration).
    pub callback_machinery_lines: usize,
}

/// Identifiers that mark *platform-specific* API usage. A defragmented
/// application should contain (almost) none of these.
pub const PLATFORM_MARKERS: &[&str] = &[
    // Android
    "IntentReceiver",
    "IntentFilter",
    "Intent::new",
    "get_system_service",
    "SystemService",
    "HttpUriRequest",
    "PendingIntent",
    "KEY_PROXIMITY_ENTERING",
    // S60 / J2ME
    "LocationProvider",
    "ProximityListener for",
    "LocationListener for",
    "MessageConnection",
    "Connector::open_http",
    "Criteria::new",
    "set_location_listener",
    "add_proximity_listener",
    // WebView bridge plumbing
    "JavaScriptInterface",
    "add_javascript_interface",
    "js_interface",
    "pollProximity",
    "JsValue",
];

/// Lines counted as callback machinery.
pub const CALLBACK_MARKERS: &[&str] = &[
    "register_receiver",
    "on_receive_intent",
    "schedule_poll",
    "proximity_event",
    "location_updated",
    "set_location_listener",
    "add_proximity_listener",
    "pollProximity",
    "self_ref",
];

/// Computes metrics for a Rust source text.
pub fn analyze(source: &str) -> CodeMetrics {
    let mut loc = 0;
    let mut platform_api_refs = 0;
    let mut callback_machinery_lines = 0;
    let mut in_tests = false;
    for line in source.lines() {
        let trimmed = line.trim();
        // Exclude the test modules: the comparison is about application
        // code, not its tests.
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("//") || trimmed.starts_with("//!") {
            continue;
        }
        loc += 1;
        platform_api_refs += PLATFORM_MARKERS
            .iter()
            .filter(|m| trimmed.contains(*m))
            .count();
        if CALLBACK_MARKERS.iter().any(|m| trimmed.contains(m)) {
            callback_machinery_lines += 1;
        }
    }
    CodeMetrics {
        loc,
        platform_api_refs,
        callback_machinery_lines,
    }
}

/// Fraction of `a`'s substantive code lines that appear verbatim
/// (trimmed) in `b` — a crude but effective portability measure: near
/// 1.0 means porting is copying. Lines shorter than 10 characters
/// (closing braces, lone keywords) are excluded so boilerplate does not
/// inflate the score.
pub fn similarity(a: &str, b: &str) -> f64 {
    let lines = |s: &str| -> Vec<String> {
        let mut in_tests = false;
        s.lines()
            .filter_map(|l| {
                let t = l.trim();
                if t.starts_with("#[cfg(test)]") {
                    in_tests = true;
                }
                if in_tests || t.len() < 10 || t.starts_with("//") {
                    None
                } else {
                    Some(t.to_owned())
                }
            })
            .collect()
    };
    let a_lines = lines(a);
    let b_lines: std::collections::HashSet<String> = lines(b).into_iter().collect();
    if a_lines.is_empty() {
        return 1.0;
    }
    let shared = a_lines.iter().filter(|l| b_lines.contains(*l)).count();
    shared as f64 / a_lines.len() as f64
}

/// Renders the middleware's resilience counters as a small operator
/// report: one aligned row per counter plus the derived mean
/// attempts-per-call, the headline number for retry amplification.
pub fn resilience_report(snapshot: &mobivine::resilience::ResilienceSnapshot) -> String {
    let rows: &[(&str, u64)] = &[
        ("calls", snapshot.calls),
        ("attempts", snapshot.attempts),
        ("retries", snapshot.retries),
        ("successes", snapshot.successes),
        ("transient failures", snapshot.transient_failures),
        ("fatal failures", snapshot.fatal_failures),
        ("circuit rejections", snapshot.circuit_rejections),
        ("circuit opens", snapshot.circuit_opens),
        ("fallback: last known fix", snapshot.fallback_last_known),
        ("fallback: configured default", snapshot.fallback_default),
        ("deadline exhausted", snapshot.deadline_exhausted),
    ];
    let width = rows.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
    let mut out = String::from("resilience counters\n");
    for (name, value) in rows {
        out.push_str(&format!("  {name:<width$}  {value}\n"));
    }
    let mean = snapshot.attempts as f64 / snapshot.calls.max(1) as f64;
    out.push_str(&format!("  {:<width$}  {mean:.2}\n", "mean attempts/call"));
    out
}

/// A named variant source for the evaluation tables.
#[derive(Debug, Clone, Copy)]
pub struct VariantSource {
    /// Variant label (`native-android`, `proxy`, …).
    pub name: &'static str,
    /// Platform label.
    pub platform: &'static str,
    /// Whether this is a proxy-based variant.
    pub uses_proxies: bool,
    /// The embedded source text.
    pub source: &'static str,
}

/// The evaluation corpus: the three native variants, the shared
/// business logic, and the proxy variant (which is the *entire*
/// device-side delta per platform).
pub fn variant_sources() -> Vec<VariantSource> {
    vec![
        VariantSource {
            name: "native-android",
            platform: "android",
            uses_proxies: false,
            source: include_str!("native_android.rs"),
        },
        VariantSource {
            name: "native-s60",
            platform: "s60",
            uses_proxies: false,
            source: include_str!("native_s60.rs"),
        },
        VariantSource {
            name: "native-android-v1.0",
            platform: "android (SDK 1.0)",
            uses_proxies: false,
            source: include_str!("native_android_v1.rs"),
        },
        VariantSource {
            name: "native-webview",
            platform: "android-webview",
            uses_proxies: false,
            source: include_str!("native_webview.rs"),
        },
        VariantSource {
            name: "proxy (all platforms)",
            platform: "android+s60+webview",
            uses_proxies: true,
            source: include_str!("proxy_app.rs"),
        },
        VariantSource {
            name: "shared business logic",
            platform: "android+s60+webview",
            uses_proxies: true,
            source: include_str!("logic.rs"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_skips_blanks_comments_and_tests() {
        let source = "// comment\n\nfn real() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n";
        let m = analyze(source);
        assert_eq!(m.loc, 1);
    }

    #[test]
    fn platform_markers_counted() {
        let source = "let r = IntentReceiver::x();\nlet c = Criteria::new();\n";
        let m = analyze(source);
        assert_eq!(m.platform_api_refs, 2);
    }

    #[test]
    fn proxy_variant_is_smaller_than_every_native_variant() {
        // The paper's complexity claim (§5 Q2).
        let sources = variant_sources();
        let proxy_loc: usize = sources
            .iter()
            .filter(|v| v.uses_proxies)
            .map(|v| analyze(v.source).loc)
            .sum();
        for native in sources.iter().filter(|v| !v.uses_proxies) {
            let native_loc = analyze(native.source).loc;
            // Proxy app alone (without shared logic) must beat each
            // native variant; with shared logic it must beat the three
            // natives combined.
            let proxy_app_loc = analyze(
                sources
                    .iter()
                    .find(|v| v.name.starts_with("proxy"))
                    .unwrap()
                    .source,
            )
            .loc;
            assert!(
                proxy_app_loc < native_loc,
                "proxy app ({proxy_app_loc} loc) should be smaller than {} ({native_loc} loc)",
                native.name
            );
        }
        let natives_total: usize = sources
            .iter()
            .filter(|v| !v.uses_proxies)
            .map(|v| analyze(v.source).loc)
            .sum();
        assert!(
            proxy_loc < natives_total,
            "one proxy app + logic ({proxy_loc}) vs three native apps ({natives_total})"
        );
    }

    #[test]
    fn proxy_variant_has_fewer_platform_api_references() {
        let sources = variant_sources();
        let proxy = sources
            .iter()
            .find(|v| v.name.starts_with("proxy"))
            .unwrap();
        let proxy_refs = analyze(proxy.source).platform_api_refs;
        for native in sources.iter().filter(|v| !v.uses_proxies) {
            let native_refs = analyze(native.source).platform_api_refs;
            assert!(
                proxy_refs < native_refs / 2,
                "proxy refs {proxy_refs} vs {} refs {native_refs}",
                native.name
            );
        }
    }

    #[test]
    fn proxy_variant_has_less_callback_machinery() {
        let sources = variant_sources();
        let proxy = sources
            .iter()
            .find(|v| v.name.starts_with("proxy"))
            .unwrap();
        let proxy_cb = analyze(proxy.source).callback_machinery_lines;
        for native in sources.iter().filter(|v| !v.uses_proxies) {
            let native_cb = analyze(native.source).callback_machinery_lines;
            assert!(
                proxy_cb < native_cb,
                "proxy callback lines {proxy_cb} vs {} {native_cb}",
                native.name
            );
        }
    }

    #[test]
    fn native_variants_share_little_code() {
        // Portability without proxies is poor: the Android and S60
        // native variants are mostly disjoint.
        let sources = variant_sources();
        let android = sources.iter().find(|v| v.name == "native-android").unwrap();
        let s60 = sources.iter().find(|v| v.name == "native-s60").unwrap();
        let sim = similarity(android.source, s60.source);
        assert!(sim < 0.5, "native cross-platform similarity {sim}");
    }

    #[test]
    fn proxy_variant_is_identical_across_platforms_by_construction() {
        // There is exactly ONE proxy variant source; its cross-platform
        // similarity is 1.0 by definition. Assert the degenerate case
        // holds through the metric too.
        let sources = variant_sources();
        let proxy = sources
            .iter()
            .find(|v| v.name.starts_with("proxy"))
            .unwrap();
        assert_eq!(similarity(proxy.source, proxy.source), 1.0);
    }

    #[test]
    fn resilience_report_lists_every_counter_and_the_mean() {
        let snapshot = mobivine::resilience::ResilienceSnapshot {
            calls: 4,
            attempts: 6,
            retries: 2,
            successes: 4,
            transient_failures: 2,
            ..Default::default()
        };
        let report = resilience_report(&snapshot);
        assert!(report.starts_with("resilience counters\n"));
        for needle in [
            "calls",
            "attempts",
            "retries",
            "successes",
            "transient failures",
            "fatal failures",
            "circuit rejections",
            "circuit opens",
            "fallback: last known fix",
            "fallback: configured default",
            "deadline exhausted",
        ] {
            assert!(report.contains(needle), "missing row {needle:?}");
        }
        // 6 attempts over 4 calls.
        assert!(report.contains("mean attempts/call"));
        assert!(report.ends_with("1.50\n"), "report was:\n{report}");
    }

    #[test]
    fn resilience_report_handles_the_empty_snapshot() {
        let report = resilience_report(&Default::default());
        assert!(
            report.contains("0.00"),
            "zero calls must not divide by zero"
        );
    }

    #[test]
    fn similarity_is_zero_for_disjoint_code() {
        assert_eq!(
            similarity("fn alpha_long() { x }", "fn beta_longer() { y }"),
            0.0
        );
        // Sources with no substantive lines trivially score 1.0.
        assert_eq!(similarity("", "fn beta_longer() { y }"), 1.0);
    }
}
