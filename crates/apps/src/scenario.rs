//! A reusable simulation scenario for driving any app variant.
//!
//! One field agent patrols a straight route that passes through two
//! task sites; the supervisor's number is registered with the SMSC and
//! the workforce server is installed on the simulated network.

use mobivine_device::movement::MovementModel;
use mobivine_device::{Device, GeoPoint};

use crate::model::{AgentConfig, Task};
use crate::server::WfmServer;

/// Region center the scenarios are laid out around (the paper authors'
/// lab in Vasant Kunj, New Delhi).
pub const REGION_CENTER: GeoPoint = GeoPoint {
    latitude: 28.5355,
    longitude: 77.3910,
    altitude: 0.0,
};

/// A ready-to-run world: device, server, agent configuration, tasks.
pub struct Scenario {
    /// The simulated handset.
    pub device: Device,
    /// The server-side application (installed on the device's network).
    pub server: WfmServer,
    /// The agent's configuration.
    pub config: AgentConfig,
    /// The tasks assigned to the agent.
    pub tasks: Vec<Task>,
    /// Agent walking speed, m/s.
    pub speed_mps: f64,
    /// Total route length, metres.
    pub route_length_m: f64,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("agent", &self.config.agent_id)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl Scenario {
    /// The standard evaluation scenario: the agent starts 500 m west of
    /// site 1, walks due east at 10 m/s past site 1 (at 500 m) and
    /// site 2 (at 1300 m), ending 500 m beyond site 2. Both sites have
    /// a 100 m radius, so the route generates two enter/exit pairs.
    pub fn two_site_patrol(seed: u64) -> Self {
        let start = REGION_CENTER.destination(270.0, 500.0);
        let site1 = REGION_CENTER;
        let site2 = REGION_CENTER.destination(90.0, 800.0);
        let end = site2.destination(90.0, 500.0);
        let speed_mps = 10.0;
        let route_length_m = start.distance_m(&end);
        let config = AgentConfig::for_agent(7);
        let device = Device::builder()
            .seed(seed)
            .msisdn(&config.msisdn)
            .position(start)
            .movement(MovementModel::waypoints(vec![start, end], speed_mps))
            .build();
        device.gps().set_noise_enabled(false);
        device.smsc().register_address(&config.supervisor_msisdn);

        let server = WfmServer::new();
        server.install(device.network(), &config.server_host);
        let tasks = vec![
            Task {
                id: 1,
                latitude: site1.latitude,
                longitude: site1.longitude,
                radius_m: 100.0,
                description: "inspect transformer".into(),
            },
            Task {
                id: 2,
                latitude: site2.latitude,
                longitude: site2.longitude,
                radius_m: 100.0,
                description: "replace meter".into(),
            },
        ];
        for task in &tasks {
            server.assign_task(config.agent_id, task.clone());
        }
        Self {
            device,
            server,
            config,
            tasks,
            speed_mps,
            route_length_m,
        }
    }

    /// Virtual milliseconds for the agent to finish the route, plus
    /// slack for trailing callbacks.
    pub fn patrol_duration_ms(&self) -> u64 {
        let travel_s = self.route_length_m / self.speed_mps;
        ((travel_s + 30.0) * 1000.0) as u64
    }
}

/// What a completed scenario run produced, collected from the server
/// and SMSC — identical regardless of which app variant ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Activity-log entries the server received.
    pub activity_entries: usize,
    /// Tasks the server recorded as complete.
    pub completed_tasks: usize,
    /// Messages in the supervisor's inbox.
    pub supervisor_messages: usize,
}

impl ScenarioOutcome {
    /// Collects the outcome from a scenario after a run.
    pub fn collect(scenario: &Scenario) -> Self {
        Self {
            activity_entries: scenario.server.activity_log().len(),
            completed_tasks: scenario
                .server
                .completed_tasks(scenario.config.agent_id)
                .len(),
            supervisor_messages: scenario
                .device
                .smsc()
                .inbox(&scenario.config.supervisor_msisdn)
                .len(),
        }
    }

    /// The expected outcome of [`Scenario::two_site_patrol`]: two
    /// arrivals and two departures logged, two tasks completed, two
    /// supervisor SMSes.
    pub fn expected_two_site() -> Self {
        Self {
            activity_entries: 4,
            completed_tasks: 2,
            supervisor_messages: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_geometry_is_sane() {
        let scenario = Scenario::two_site_patrol(0);
        assert_eq!(scenario.tasks.len(), 2);
        assert!((scenario.route_length_m - 1800.0).abs() < 5.0);
        // The device starts outside both sites.
        let start = scenario.device.gps().true_position();
        for task in &scenario.tasks {
            let site = GeoPoint::new(task.latitude, task.longitude);
            assert!(start.distance_m(&site) > task.radius_m);
        }
    }

    #[test]
    fn agent_walks_through_both_sites() {
        let scenario = Scenario::two_site_patrol(0);
        let mut entered = [false, false];
        for _ in 0..250 {
            scenario.device.advance_ms(1_000);
            let here = scenario.device.gps().true_position();
            for (i, task) in scenario.tasks.iter().enumerate() {
                let site = GeoPoint::new(task.latitude, task.longitude);
                if here.distance_m(&site) <= task.radius_m {
                    entered[i] = true;
                }
            }
        }
        assert!(entered[0] && entered[1]);
        // And ends outside both.
        let end = scenario.device.gps().true_position();
        for task in &scenario.tasks {
            let site = GeoPoint::new(task.latitude, task.longitude);
            assert!(end.distance_m(&site) > task.radius_m);
        }
    }

    #[test]
    fn server_pre_assigned_the_tasks() {
        let scenario = Scenario::two_site_patrol(0);
        assert_eq!(scenario.server.tasks_for(scenario.config.agent_id).len(), 2);
    }
}
