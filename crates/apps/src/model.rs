//! Shared domain types of the workforce-management solution.

use serde::{Deserialize, Serialize};

/// A field task: visit a site and perform work there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task identifier.
    pub id: u64,
    /// Site latitude, degrees.
    pub latitude: f64,
    /// Site longitude, degrees.
    pub longitude: f64,
    /// Radius of the site region, metres.
    pub radius_m: f64,
    /// Work description.
    pub description: String,
}

/// Configuration of one field agent's device-side application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Agent identifier.
    pub agent_id: u64,
    /// The agent's phone number.
    pub msisdn: String,
    /// The region supervisor's phone number (for `sendSms` /
    /// `makeACall` quick communication, Fig. 1).
    pub supervisor_msisdn: String,
    /// Host name of the server-side application.
    pub server_host: String,
}

impl AgentConfig {
    /// A ready-made configuration for agent `agent_id` against the
    /// default simulated server.
    pub fn for_agent(agent_id: u64) -> Self {
        Self {
            agent_id,
            msisdn: format!("+91-98-AGENT-{agent_id}"),
            supervisor_msisdn: "+91-98-SUPERVISOR".to_owned(),
            server_host: "wfm.example".to_owned(),
        }
    }
}

/// An entry in the activity log sent to the server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityEntry {
    /// Reporting agent.
    pub agent_id: u64,
    /// Virtual time of the event, ms.
    pub at_ms: u64,
    /// What happened (`arrived site 3`, `left site 3`, …).
    pub event: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_serializes_to_json() {
        let task = Task {
            id: 3,
            latitude: 28.5,
            longitude: 77.3,
            radius_m: 100.0,
            description: "inspect transformer".into(),
        };
        let json = serde_json::to_string(&task).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(back, task);
    }

    #[test]
    fn agent_config_defaults() {
        let config = AgentConfig::for_agent(7);
        assert_eq!(config.msisdn, "+91-98-AGENT-7");
        assert_eq!(config.server_host, "wfm.example");
    }

    #[test]
    fn activity_entry_round_trips() {
        let entry = ActivityEntry {
            agent_id: 1,
            at_ms: 42_000,
            event: "arrived site 3".into(),
        };
        let json = serde_json::to_string(&entry).unwrap();
        assert_eq!(serde_json::from_str::<ActivityEntry>(&json).unwrap(), entry);
    }
}
