#![warn(missing_docs)]
//! The mobile workforce-management application (paper §2, Fig. 1) —
//! built **six ways**, plus its server side and a code-metrics
//! analyzer.
//!
//! The paper's evaluation (§5) argues portability, complexity and
//! maintainability by comparing the *native* implementation of the
//! application's platform blocks (Fig. 2) with the *proxy-based* one
//! (Figs. 8/9). This crate is that corpus:
//!
//! | module | role |
//! |---|---|
//! | [`model`] | shared domain types (tasks, agent configuration) |
//! | [`server`] | the server-side application (tracking, request assignment, activity log) |
//! | [`logic`] | platform-neutral business logic used by the proxy variants |
//! | [`native_android`] | native Android variant — Intent/IntentReceiver machinery in the open (Fig. 2(a)) |
//! | [`native_android_v1`] | the same app after the forced m5→1.0 migration (`PendingIntent` rewrite) |
//! | [`native_s60`] | native S60 variant — hand-written exit detection / re-registration / timeout (Fig. 2(b)) |
//! | [`native_webview`] | native WebView variant — app-rolled wrapper + notification polling |
//! | [`proxy_app`] | the proxy variant — one implementation, all platforms (Figs. 8/9) |
//! | [`scenario`] | a reusable simulation scenario driving any variant |
//! | [`fleet`] | the fleet-scale load engine: thousands of devices through a sharded registry |
//! | [`metrics`] | code metrics over the variants' sources (LoC, platform-API references, similarity) |

pub mod fleet;
pub mod logic;
pub mod metrics;
pub mod model;
pub mod native_android;
pub mod native_android_v1;
pub mod native_s60;
pub mod native_webview;
pub mod proxy_app;
pub mod scenario;
pub mod server;

pub use fleet::{Fleet, FleetConfig, FleetReport};
pub use model::{AgentConfig, Task};
pub use scenario::{Scenario, ScenarioOutcome};
