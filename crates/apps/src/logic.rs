//! Platform-neutral business logic.
//!
//! The paper's portability claim (§5): with proxies, "business logic for
//! handling proximity alerts … is now concentrated at one place" and
//! "the code around the API is also similar". This module is that one
//! place — the proxy variants on all three platforms reuse it verbatim,
//! while each native variant has to re-implement the equivalent inline.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine::api::{CallProxy, HttpProxy, SmsProxy};
use mobivine::error::ProxyError;
use mobivine::types::ProximityEvent;

use crate::model::{ActivityEntry, AgentConfig, Task};

/// An observable log of application-level events, shared by every
/// variant so tests and benches can assert behavioural equivalence
/// across platforms and implementation styles.
#[derive(Default)]
pub struct AppEvents {
    log: Mutex<Vec<String>>,
}

impl fmt::Debug for AppEvents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppEvents")
            .field("count", &self.log.lock().len())
            .finish()
    }
}

impl AppEvents {
    /// Creates an empty log.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records an event.
    pub fn record(&self, event: impl Into<String>) {
        self.log.lock().push(event.into());
    }

    /// Snapshot of the log.
    pub fn snapshot(&self) -> Vec<String> {
        self.log.lock().clone()
    }

    /// Number of events whose label starts with `prefix`.
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.log
            .lock()
            .iter()
            .filter(|e| e.starts_with(prefix))
            .count()
    }
}

/// The shared device-side business logic of the workforce app.
pub struct WorkforceLogic {
    config: AgentConfig,
    events: Arc<AppEvents>,
    sms: Arc<dyn SmsProxy>,
    http: Arc<dyn HttpProxy>,
    call: Option<Arc<dyn CallProxy>>,
}

impl fmt::Debug for WorkforceLogic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkforceLogic")
            .field("agent", &self.config.agent_id)
            .finish()
    }
}

impl WorkforceLogic {
    /// Assembles the logic from the uniform proxies. `call` is optional
    /// because some platforms (S60) expose no call interface.
    pub fn new(
        config: AgentConfig,
        events: Arc<AppEvents>,
        sms: Arc<dyn SmsProxy>,
        http: Arc<dyn HttpProxy>,
        call: Option<Arc<dyn CallProxy>>,
    ) -> Self {
        Self {
            config,
            events,
            sms,
            http,
            call,
        }
    }

    /// The agent configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The business logic invoked on each proximity boundary crossing —
    /// the body of `proximityEvent` in the paper's Fig. 8.
    pub fn handle_proximity(&self, task: &Task, event: &ProximityEvent) {
        if event.entering {
            self.events.record(format!("arrived:site-{}", task.id));
            let _ = self.sms.send_text_message(
                &self.config.supervisor_msisdn,
                &format!(
                    "Agent {} arrived at site {} ({})",
                    self.config.agent_id, task.id, task.description
                ),
                None,
            );
            self.events.record(format!("sms:arrival-site-{}", task.id));
            self.log_activity(
                event.current_location.timestamp_ms,
                format!("arrived site {}", task.id),
            );
        } else {
            self.events.record(format!("departed:site-{}", task.id));
            self.log_activity(
                event.current_location.timestamp_ms,
                format!("left site {}", task.id),
            );
            let body = serde_json::json!({
                "agent_id": self.config.agent_id,
                "task_id": task.id,
            })
            .to_string();
            let _ = self.http.request(
                "POST",
                &format!("http://{}/task-complete", self.config.server_host),
                body.as_bytes(),
            );
            self.events
                .record(format!("task-complete:site-{}", task.id));
        }
    }

    /// Fetches the agent's open tasks from the server.
    ///
    /// # Errors
    ///
    /// Propagates proxy transport errors.
    pub fn fetch_tasks(&self) -> Result<Vec<Task>, ProxyError> {
        let url = format!(
            "http://{}/tasks?agent={}",
            self.config.server_host, self.config.agent_id
        );
        let response = self.http.request("GET", &url, &[])?;
        let tasks: Vec<Task> = serde_json::from_slice(&response.body).unwrap_or_default();
        self.events.record(format!("tasks-fetched:{}", tasks.len()));
        Ok(tasks)
    }

    /// Quick communication with the region supervisor: voice call where
    /// the platform supports it, SMS fallback otherwise (the S60 gap).
    pub fn contact_supervisor(&self, note: &str) {
        if let Some(call) = &self.call {
            if call.make_a_call(&self.config.supervisor_msisdn).is_ok() {
                self.events.record("supervisor-contact:call");
                return;
            }
            self.events.record("supervisor-contact:call-failed");
        }
        let _ = self
            .sms
            .send_text_message(&self.config.supervisor_msisdn, note, None);
        self.events.record("supervisor-contact:sms");
    }

    fn log_activity(&self, at_ms: u64, event: String) {
        let entry = ActivityEntry {
            agent_id: self.config.agent_id,
            at_ms,
            event,
        };
        let Ok(body) = serde_json::to_vec(&entry) else {
            self.events.record("activity-log-failed:serialize");
            return;
        };
        let _ = self.http.request(
            "POST",
            &format!("http://{}/activity-log", self.config.server_host),
            &body,
        );
        self.events.record("activity-logged");
    }
}
