//! The **native WebView** variant of the workforce app.
//!
//! Without MobiVine, a WebView developer must hand-roll everything the
//! paper's §4.1 pipeline provides: an application-specific Java bridge
//! object exposed through `addJavaScriptInterface`, a home-grown
//! queue standing in for the Notification Table (Java callbacks cannot
//! reach JavaScript), and a manual polling loop in the page. This
//! module is that hand-rolled version, business logic entangled with
//! the plumbing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mobivine_android::context::{service_names, Context, SystemService};
use mobivine_android::http::HttpUriRequest;
use mobivine_android::intent::{Intent, IntentFilter, IntentReceiver};
use mobivine_android::location::KEY_PROXIMITY_ENTERING;
use mobivine_webview::bridge::{args, BridgeError, JavaScriptInterface};
use mobivine_webview::{JsValue, WebView};

use crate::logic::AppEvents;
use crate::model::{ActivityEntry, AgentConfig, Task};

const ACTION_BASE: &str = "com.acme.wfm.webview.PROXIMITY";

/// The hand-written application bridge: one grab-bag Java object doing
/// HTTP, SMS and proximity registration for this one app.
pub struct AppBridge {
    ctx: Context,
    /// The home-grown notification queue (what MobiVine generalizes
    /// into the Notification Table).
    proximity_queue: Arc<Mutex<Vec<JsValue>>>,
}

impl AppBridge {
    /// Creates the bridge over an Android context.
    pub fn new(ctx: Context) -> Self {
        Self {
            ctx,
            proximity_queue: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

struct QueueingReceiver {
    action: String,
    task_id: u64,
    queue: Arc<Mutex<Vec<JsValue>>>,
}

impl IntentReceiver for QueueingReceiver {
    fn on_receive_intent(&self, _ctxt: &Context, intent: &Intent) {
        if intent.action() != self.action {
            return;
        }
        let entering = intent.get_boolean_extra(KEY_PROXIMITY_ENTERING, false);
        self.queue.lock().push(JsValue::object([
            ("taskId", self.task_id.into()),
            ("entering", entering.into()),
        ]));
    }
}

impl JavaScriptInterface for AppBridge {
    fn call(&self, method: &str, call_args: &[JsValue]) -> Result<JsValue, BridgeError> {
        match method {
            "httpGet" => {
                let url = args::string(call_args, 0)?;
                let request =
                    HttpUriRequest::get(url).map_err(|e| BridgeError::bridge(e.to_string()))?;
                let response = self
                    .ctx
                    .http_client()
                    .execute(&request)
                    .map_err(|e| BridgeError::bridge(e.to_string()))?;
                Ok(JsValue::Str(response.body_text()))
            }
            "httpPost" => {
                let url = args::string(call_args, 0)?;
                let body = args::string(call_args, 1)?;
                let request = HttpUriRequest::post(url, body.as_bytes().to_vec())
                    .map_err(|e| BridgeError::bridge(e.to_string()))?;
                let response = self
                    .ctx
                    .http_client()
                    .execute(&request)
                    .map_err(|e| BridgeError::bridge(e.to_string()))?;
                Ok(JsValue::Number(response.status as f64))
            }
            "sendSms" => {
                let destination = args::string(call_args, 0)?;
                let text = args::string(call_args, 1)?;
                match self.ctx.get_system_service(service_names::SMS_SERVICE) {
                    Ok(SystemService::Sms(sms)) => {
                        sms.send_text_message(destination, None, text, None)
                            .map_err(|e| BridgeError::bridge(e.to_string()))?;
                        Ok(JsValue::Bool(true))
                    }
                    _ => Err(BridgeError::bridge("sms service unavailable")),
                }
            }
            "addProximityAlert" => {
                let latitude = args::number(call_args, 0)?;
                let longitude = args::number(call_args, 1)?;
                let radius = args::number(call_args, 2)?;
                let task_id = args::number(call_args, 3)? as u64;
                let action = format!("{ACTION_BASE}.{task_id}");
                let receiver = Arc::new(QueueingReceiver {
                    action: action.clone(),
                    task_id,
                    queue: Arc::clone(&self.proximity_queue),
                });
                self.ctx
                    .register_receiver(receiver, IntentFilter::new(&action));
                match self.ctx.get_system_service(service_names::LOCATION_SERVICE) {
                    Ok(SystemService::Location(lm)) => {
                        lm.add_proximity_alert(
                            latitude,
                            longitude,
                            radius as f32,
                            -1,
                            Intent::new(&action),
                        )
                        .map_err(|e| BridgeError::bridge(e.to_string()))?;
                        Ok(JsValue::Bool(true))
                    }
                    _ => Err(BridgeError::bridge("location service unavailable")),
                }
            }
            "pollProximity" => {
                let drained: Vec<JsValue> = std::mem::take(&mut *self.proximity_queue.lock());
                Ok(JsValue::Array(drained))
            }
            other => Err(BridgeError::bridge(format!(
                "AppBridge has no method {other}"
            ))),
        }
    }
}

/// The page-side application: fetches tasks, registers alerts through
/// the bridge, and runs its own polling loop.
pub struct NativeWebViewApp {
    config: AgentConfig,
    events: Arc<AppEvents>,
    tasks: Arc<Mutex<Vec<Task>>>,
    polling: Arc<AtomicBool>,
}

impl NativeWebViewApp {
    /// Creates the page application for `config`.
    pub fn new(config: AgentConfig, events: Arc<AppEvents>) -> Self {
        Self {
            config,
            events,
            tasks: Arc::new(Mutex::new(Vec::new())),
            polling: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The tasks fetched during [`NativeWebViewApp::start`].
    pub fn tasks(&self) -> Vec<Task> {
        self.tasks.lock().clone()
    }

    /// `JSInit`: injects the bridge, fetches tasks, registers alerts
    /// and starts the hand-rolled polling loop.
    pub fn start(&self, webview: &WebView) {
        webview.add_javascript_interface(
            Arc::new(AppBridge::new(webview.context().clone())),
            "AppBridge",
        );
        let Some(bridge) = webview.js_interface("AppBridge") else {
            self.events.record("bridge-injection-failed");
            return;
        };
        // Fetch tasks over the bridge.
        let url = format!(
            "http://{}/tasks?agent={}",
            self.config.server_host, self.config.agent_id
        );
        if let Ok(body) = bridge.invoke("httpGet", &[JsValue::Str(url)]) {
            let tasks: Vec<Task> =
                serde_json::from_str(body.as_str().unwrap_or("[]")).unwrap_or_default();
            self.events.record(format!("tasks-fetched:{}", tasks.len()));
            *self.tasks.lock() = tasks;
        }
        // Register the alerts.
        for task in self.tasks.lock().iter() {
            let _ = bridge.invoke(
                "addProximityAlert",
                &[
                    task.latitude.into(),
                    task.longitude.into(),
                    task.radius_m.into(),
                    task.id.into(),
                ],
            );
        }
        // The manual polling loop (what MobiVine's notifHandler does
        // generically).
        self.polling.store(true, Ordering::SeqCst);
        schedule_poll(
            webview.context().device().clone(),
            bridge,
            self.config.clone(),
            Arc::clone(&self.tasks),
            Arc::clone(&self.events),
            Arc::clone(&self.polling),
        );
    }

    /// Stops the polling loop.
    pub fn stop(&self) {
        self.polling.store(false, Ordering::SeqCst);
    }
}

fn schedule_poll(
    device: mobivine_device::Device,
    bridge: mobivine_webview::webview::JsInterfaceHandle,
    config: AgentConfig,
    tasks: Arc<Mutex<Vec<Task>>>,
    events: Arc<AppEvents>,
    polling: Arc<AtomicBool>,
) {
    let fire_at = device.now_ms() + 500;
    let queue = Arc::clone(device.events());
    queue.schedule_at(fire_at, "native-webview-poll", move |_| {
        if !polling.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(JsValue::Array(notifications)) = bridge.invoke("pollProximity", &[]) {
            for notification in notifications {
                let task_id = notification
                    .get_ref("taskId")
                    .and_then(JsValue::as_number)
                    .unwrap_or(0.0) as u64;
                let entering = notification
                    .get_ref("entering")
                    .and_then(JsValue::as_bool)
                    .unwrap_or(false);
                let task = tasks.lock().iter().find(|t| t.id == task_id).cloned();
                let Some(task) = task else { continue };
                // Business logic inline in the poll loop — the
                // entanglement the proxy model untangles.
                if entering {
                    events.record(format!("arrived:site-{}", task.id));
                    let _ = bridge.invoke(
                        "sendSms",
                        &[
                            JsValue::str(&config.supervisor_msisdn),
                            JsValue::Str(format!(
                                "Agent {} arrived at site {} ({})",
                                config.agent_id, task.id, task.description
                            )),
                        ],
                    );
                    events.record(format!("sms:arrival-site-{}", task.id));
                    post_activity(
                        &bridge,
                        &config,
                        &events,
                        device.now_ms(),
                        format!("arrived site {}", task.id),
                    );
                } else {
                    events.record(format!("departed:site-{}", task.id));
                    post_activity(
                        &bridge,
                        &config,
                        &events,
                        device.now_ms(),
                        format!("left site {}", task.id),
                    );
                    let body = serde_json::json!({
                        "agent_id": config.agent_id,
                        "task_id": task.id,
                    })
                    .to_string();
                    let _ = bridge.invoke(
                        "httpPost",
                        &[
                            JsValue::Str(format!("http://{}/task-complete", config.server_host)),
                            JsValue::Str(body),
                        ],
                    );
                    events.record(format!("task-complete:site-{}", task.id));
                }
            }
        }
        schedule_poll(device, bridge, config, tasks, events, polling);
    });
}

fn post_activity(
    bridge: &mobivine_webview::webview::JsInterfaceHandle,
    config: &AgentConfig,
    events: &Arc<AppEvents>,
    at_ms: u64,
    event: String,
) {
    let entry = ActivityEntry {
        agent_id: config.agent_id,
        at_ms,
        event,
    };
    let Ok(body) = serde_json::to_string(&entry) else {
        events.record("activity-log-failed:serialize");
        return;
    };
    let _ = bridge.invoke(
        "httpPost",
        &[
            JsValue::Str(format!("http://{}/activity-log", config.server_host)),
            JsValue::Str(body),
        ],
    );
    events.record("activity-logged");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioOutcome};
    use mobivine_android::{AndroidPlatform, SdkVersion};

    #[test]
    fn native_webview_app_full_scenario() {
        let scenario = Scenario::two_site_patrol(1);
        let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
        let webview = WebView::new(platform.new_context());
        let events = AppEvents::new();
        let app = NativeWebViewApp::new(scenario.config.clone(), Arc::clone(&events));
        app.start(&webview);
        assert_eq!(app.tasks().len(), 2);
        scenario.device.advance_ms(scenario.patrol_duration_ms());
        assert_eq!(events.count_prefix("arrived:"), 2);
        assert_eq!(events.count_prefix("departed:"), 2);
        scenario.device.advance_ms(1_000);
        assert_eq!(
            ScenarioOutcome::collect(&scenario),
            ScenarioOutcome::expected_two_site()
        );
        app.stop();
    }
}
