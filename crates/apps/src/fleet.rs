//! The fleet-scale load engine (ROADMAP "production-scale" work item).
//!
//! The paper evaluates MobiVine one handset at a time (Figure 10). This
//! module exercises the middleware as a *system*: a deterministic
//! multi-worker scheduler drives thousands of simulated devices —
//! Android, S60 and WebView in a fixed interleave — through rounds of
//! SMS/HTTP/location traffic, resolving every proxy through a
//! [`ShardedRegistry`] (memoized acquisition, per-shard shared
//! catalogs) and dispatching the traffic in per-device batches onto
//! each device's `SimNetwork`.
//!
//! Determinism is the design constraint everything else bends around:
//!
//! - every device's behaviour derives from a per-device splitmix64
//!   stream seeded from `(fleet seed, device index)`;
//! - workers own disjoint contiguous device ranges
//!   ([`mobivine_device::cohort::Cohort::partition`]) and all
//!   cross-device aggregation happens in device-index order after the
//!   workers join, so thread interleaving cannot leak into results;
//! - latencies are *virtual* milliseconds read off each device's
//!   `SimClock`, never the wall clock.
//!
//! Two runs of [`Fleet::run`] with the same [`FleetConfig`] therefore
//! produce byte-identical [`FleetReport`]s, worker count included.

use std::fmt;
use std::sync::Arc;

use mobivine::api::{HttpProxy, LocationProxy, SmsProxy};
use mobivine::cache::{CachePolicy, CacheSnapshot};
use mobivine::error::{ProxyError, ProxyErrorKind};
use mobivine::overload::{with_deadline, Deadline, OverloadPolicy, OverloadSnapshot};
use mobivine::property::PropertyValue;
use mobivine::shard::ShardedRegistry;
use mobivine::webview::BATCH_PROPERTY;
use mobivine::{with_idempotency_key, IdempotencyKey, JournalPolicy};
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::cohort::{Cohort, CohortPartition};
use mobivine_device::fault::{CrashKind, CrashSchedule, FaultPlan};
use mobivine_device::Device;
use mobivine_s60::S60Platform;
use mobivine_telemetry::{
    Labels, PromotionPolicy, PromotionReason, SloEngine, SloObjective, SloReport, SloTarget,
};
use mobivine_webview::WebView;

use crate::server::{DurabilityConfig, TrackPoint, WfmServer, WfmServerCounts};

/// The supervisor MSISDN every fleet device texts.
pub const FLEET_SUPERVISOR: &str = "+91-98-SUPERVISOR";

/// The server host name of `shard` (one [`WfmServer`] per shard,
/// reachable from every member device's simulated network).
pub fn shard_host(shard: usize) -> String {
    format!("wfm.shard{shard}.example")
}

/// A brownout scenario: one shard's devices are hit with a traffic ramp
/// (`ops_multiplier`× the fleet's per-round ops) while every one of
/// their calls runs under a batch-arrival deadline. With `admission`
/// on, those devices are built with the overload layer
/// ([`mobivine::overload`]): the AIMD admission gate sheds the excess,
/// the deadline budget fail-fasts the queue tail, and the accepted
/// calls' sojourn p99 stays within `p99_target_ms`. With `admission`
/// off the same ramp runs unprotected and the sojourn p99 blows past
/// the target — the comparison the bench gate pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// The shard whose member devices receive the ramp.
    pub target_shard: usize,
    /// Traffic multiplier applied to the target shard's per-round ops.
    pub ops_multiplier: u32,
    /// Per-batch deadline budget, virtual ms: every op of a round's
    /// batch conceptually arrives at flush start and must finish within
    /// this budget of that instant.
    pub deadline_budget_ms: u64,
    /// The accepted-call sojourn p99 bound the overload layer must
    /// hold; also the AIMD loop's convergence target.
    pub p99_target_ms: u64,
    /// Whether the target shard's devices get the overload layer. Off
    /// = the unprotected baseline arm.
    pub admission: bool,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            target_shard: 0,
            ops_multiplier: 10,
            deadline_budget_ms: 400,
            p99_target_ms: 256,
            admission: true,
        }
    }
}

/// Durability arm of a fleet run: every device runtime journals its
/// mutating proxy calls ([`mobivine::registry::MobivineBuilder::with_journal`])
/// and every shard's [`WfmServer`] is built crash-fault-tolerant
/// ([`WfmServer::durable`]) with intents journaled before effects and
/// idempotency-key dedup on re-delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityFleetConfig {
    /// Server checkpoint cadence (state snapshot every N applies;
    /// `0` = journal-only, replay from genesis). A crash storm
    /// requires `1` so each recovery's replay length is determined by
    /// the crash kind alone, keeping the digest worker-invariant.
    pub checkpoint_every: u32,
}

impl Default for DurabilityFleetConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 1,
        }
    }
}

/// A crash storm: each shard's middleware is killed at deterministic
/// points — mid-record (torn write), between intent and effect, and
/// after the effect but before its checkpoint — and recovers by
/// checkpoint + journal replay. Victim calls are chosen by idempotency
/// key from the seeded traffic plan, so the storm is identical across
/// worker counts and reruns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashStormConfig {
    /// Crashes to schedule per shard, cycling through the crash kinds
    /// starting with torn-write then intent/effect-gap — so any value
    /// ≥ 2 exercises both headline kinds on every shard.
    pub crashes_per_shard: usize,
}

impl Default for CrashStormConfig {
    fn default() -> Self {
        Self {
            crashes_per_shard: 3,
        }
    }
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated devices (platform mix: device `i` is
    /// Android, S60 or WebView by `i % 3`).
    pub devices: usize,
    /// Number of registry shards / [`WfmServer`] instances.
    pub shards: usize,
    /// Number of worker threads stepping the fleet.
    pub workers: usize,
    /// Lockstep rounds to run.
    pub rounds: u64,
    /// Virtual length of one round, milliseconds.
    pub tick_ms: u64,
    /// Proxy operations per device per round.
    pub ops_per_round: u32,
    /// Master seed; all per-device randomness derives from it.
    pub seed: u64,
    /// When `true`, the traffic planner draws a read-heavy mix (¾
    /// location reads) instead of the default write-leaning mix. The
    /// plan depends only on the seeded stream, so the same seed yields
    /// the same batches with caching on or off.
    pub read_heavy: bool,
    /// When `true`, every device runtime is built with the read-through
    /// proxy cache ([`mobivine::cache`], default [`CachePolicy`])
    /// between the overload and traced layers. Cache counters are
    /// reported in [`FleetReport::cache`] and deliberately kept out of
    /// the checksum: caching must not change what the fleet computes,
    /// only how much binding-plane work it takes.
    pub cache: bool,
    /// When `true`, every device runtime is built with plane-aware
    /// telemetry (traced proxy decorators + shared metrics registry).
    /// The traced hot path is allocation-free after wiring, so this
    /// costs atomics and span-record moves, not heap churn.
    pub telemetry: bool,
    /// Per-worker-ring span retention cap when `telemetry` is on.
    /// Small by default: at fleet scale the rings are a sampling
    /// window; traces worth keeping are *promoted* out of them into
    /// each device's bounded incident store.
    pub span_retention: usize,
    /// Per-device incident-store capacity: how many promoted traces
    /// each device keeps (further promotions are counted and dropped).
    /// Only meaningful with `telemetry` on.
    pub incident_capacity: usize,
    /// When `true` (requires `telemetry`), every device runtime gets a
    /// per-device [`SloEngine`] over a fleet-wide objective template
    /// (availability per proxy method per platform, plus latency
    /// objectives under a brownout); the per-device reports are merged
    /// in device-index order into the report's incident digest.
    pub slo: bool,
    /// Optional brownout scenario overwhelming one shard.
    pub brownout: Option<BrownoutConfig>,
    /// Bridge-bound workload arm. `None` keeps the classic plan: every
    /// `LocationFix` op is a plain `getLocation`. `Some(batched)` turns
    /// every `LocationFix` into a *multi-read*
    /// ([`LocationProxy::get_location_with_power`]): on WebView devices
    /// the read crosses the JavaScript bridge, and `batched` selects
    /// whether the two reads share one batched crossing (`true`) or
    /// make two wire calls (`false`) — toggled per device through the
    /// JavaScript-local [`BATCH_PROPERTY`] after warm-up. Android/S60
    /// devices serve the same multi-read natively, so the two arms
    /// compute identical counters and their checksums must match;
    /// [`FleetReport::bridge`] reports the crossing counts the arms
    /// differ by (kept out of the checksum, like the cache digest).
    pub bridge_batch: Option<bool>,
    /// When set, the fleet runs durable: client runtimes journal
    /// mutating calls, shard servers journal intents before effects,
    /// and every HTTP report carries a deterministic idempotency key.
    /// Journal counters land in [`FleetReport::recovery`], kept out of
    /// the checksum: durability must not change what the fleet
    /// computes, only how much it survives.
    pub durability: Option<DurabilityFleetConfig>,
    /// Optional crash storm (requires `durability` with
    /// `checkpoint_every == 1`; mutually exclusive with `brownout`).
    pub crash_plan: Option<CrashStormConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            devices: 1_000,
            shards: 8,
            workers: 4,
            rounds: 4,
            tick_ms: 1_000,
            ops_per_round: 2,
            seed: 7,
            read_heavy: false,
            cache: false,
            telemetry: false,
            span_retention: 16,
            incident_capacity: 256,
            slo: false,
            brownout: None,
            bridge_batch: None,
            durability: None,
            crash_plan: None,
        }
    }
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// `IllegalArgument` when any count is zero.
    pub fn validated(self) -> Result<Self, ProxyError> {
        let illegal = |what: &str| {
            Err(ProxyError::new(
                ProxyErrorKind::IllegalArgument,
                format!("FleetConfig: {what} must be non-zero"),
            ))
        };
        if self.devices == 0 {
            return illegal("devices");
        }
        if self.shards == 0 {
            return illegal("shards");
        }
        if self.workers == 0 {
            return illegal("workers");
        }
        if self.rounds == 0 {
            return illegal("rounds");
        }
        if self.tick_ms == 0 {
            return illegal("tick_ms");
        }
        if self.ops_per_round == 0 {
            return illegal("ops_per_round");
        }
        if self.telemetry && self.span_retention == 0 {
            return illegal("span_retention (with telemetry enabled)");
        }
        if self.telemetry && self.incident_capacity == 0 {
            return illegal("incident_capacity (with telemetry enabled)");
        }
        if self.slo && !self.telemetry {
            return Err(ProxyError::new(
                ProxyErrorKind::IllegalArgument,
                "FleetConfig: slo requires telemetry (outcomes are observed at the proxy plane)",
            ));
        }
        if let Some(brownout) = &self.brownout {
            if brownout.target_shard >= self.shards {
                return Err(ProxyError::new(
                    ProxyErrorKind::IllegalArgument,
                    format!(
                        "FleetConfig: brownout target_shard {} out of range ({} shards)",
                        brownout.target_shard, self.shards
                    ),
                ));
            }
            if brownout.ops_multiplier == 0 {
                return illegal("brownout ops_multiplier");
            }
            if brownout.deadline_budget_ms == 0 {
                return illegal("brownout deadline_budget_ms");
            }
            if brownout.p99_target_ms == 0 {
                return illegal("brownout p99_target_ms");
            }
        }
        if let Some(storm) = &self.crash_plan {
            if storm.crashes_per_shard == 0 {
                return illegal("crash_plan crashes_per_shard");
            }
            let Some(durability) = &self.durability else {
                return Err(ProxyError::new(
                    ProxyErrorKind::IllegalArgument,
                    "FleetConfig: crash_plan requires durability (crashes without a journal \
                     lose state unrecoverably)",
                ));
            };
            if durability.checkpoint_every != 1 {
                // With a checkpoint after every apply, each recovery's
                // replay length depends only on the crash kind, never
                // on which ops other workers interleaved before the
                // crash — the worker-invariance the digest gate pins.
                return Err(ProxyError::new(
                    ProxyErrorKind::IllegalArgument,
                    "FleetConfig: crash_plan requires durability.checkpoint_every == 1 \
                     (replay-from-checkpoint must be worker-invariant)",
                ));
            }
            if self.brownout.is_some() {
                return Err(ProxyError::new(
                    ProxyErrorKind::IllegalArgument,
                    "FleetConfig: crash_plan and brownout are mutually exclusive (both \
                     answer 503; re-delivery retries would fight the shed gate)",
                ));
            }
        }
        Ok(self)
    }
}

/// Per-shard results of a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Member devices.
    pub devices: usize,
    /// Proxy operations issued by the shard's members.
    pub ops: u64,
    /// Median per-op virtual latency (bucketed upper bound), ms.
    pub p50_ms: u64,
    /// 95th-percentile per-op virtual latency, ms.
    pub p95_ms: u64,
    /// 99th-percentile per-op virtual latency, ms.
    pub p99_ms: u64,
    /// State sizes of the shard's [`WfmServer`] after the run.
    pub server: WfmServerCounts,
}

/// Aggregate results of a fleet run. Every field is derived from
/// virtual time and per-device counters, so two runs with the same
/// [`FleetConfig`] produce equal reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// The configuration that produced this report.
    pub config: FleetConfig,
    /// Total proxy operations issued.
    pub total_ops: u64,
    /// SMS successfully handed to the SMSC.
    pub sms_sent: u64,
    /// HTTP requests answered with a 2xx status.
    pub http_ok: u64,
    /// Location fixes obtained.
    pub location_fixes: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Calls rejected by the admission gate (overload layer).
    pub shed: u64,
    /// Calls served degraded — a shed absorbed by a cached/coarse
    /// location fix or a droppable HTTP request's synthetic accept.
    pub degraded: u64,
    /// Calls failed fast because their deadline budget was exhausted
    /// before the binding plane was touched.
    pub deadline_exceeded: u64,
    /// Ops (any outcome) that finished past their batch-arrival
    /// deadline — the breaches the flight recorder must explain with a
    /// promoted trace. Zero without a brownout budget. Derived from
    /// flush sojourns, so it is identical with telemetry on or off.
    pub deadline_blown: u64,
    /// Coordinated virtual duration of the run, ms.
    pub virtual_elapsed_ms: u64,
    /// Fleet-wide median per-op virtual latency (bucketed), ms.
    pub p50_ms: u64,
    /// Fleet-wide 95th-percentile per-op virtual latency, ms.
    pub p95_ms: u64,
    /// Fleet-wide 99th-percentile per-op virtual latency, ms.
    pub p99_ms: u64,
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// Order-insensitive-free fingerprint: an FNV fold over every
    /// device's counters in device-index order. Two runs are
    /// byte-identical iff their checksums match. Telemetry-independent
    /// by design: tracing a run must not change what it computes.
    pub checksum: u64,
    /// Flight-recorder digest (promoted traces, exemplars, SLO
    /// breaches), present when `telemetry` was on.
    pub incidents: Option<IncidentDigest>,
    /// Cache-plane counters, present when `cache` was on. Like
    /// `incidents`, kept out of the checksum.
    pub cache: Option<CacheDigest>,
    /// Bridge-plane counters, present when `bridge_batch` was set.
    /// Like `cache`, kept out of the checksum: batching changes how
    /// many times the fleet crosses the JavaScript bridge, never what
    /// it computes.
    pub bridge: Option<BridgeDigest>,
    /// Durability-plane counters, present when `durability` was set.
    /// Like `cache`, kept out of the checksum: a crash storm must not
    /// change what the fleet computes — that parity IS the gate.
    pub recovery: Option<RecoveryDigest>,
}

/// Aggregate durability counters of one durable fleet run: per-shard
/// server recovery ledgers folded in shard order, client journal
/// counters folded in device-index order, and nearest-rank quantiles
/// over the virtual recovery costs. Deliberately excluded from
/// [`FleetReport::checksum`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryDigest {
    /// Crashes survived across all shards (one recovery pass each).
    pub recoveries: u64,
    /// Mid-record (torn-write) crashes recovered.
    pub torn_crashes: u64,
    /// Intent/effect-gap crashes recovered.
    pub gap_crashes: u64,
    /// Post-effect (pre-checkpoint) crashes recovered.
    pub effect_crashes: u64,
    /// Committed records replayed across all recoveries.
    pub replayed_records: u64,
    /// Torn tail records truncated across all recoveries.
    pub torn_truncated: u64,
    /// Server checkpoints taken.
    pub checkpoints: u64,
    /// Re-deliveries the servers answered from their journals.
    pub suppressed_duplicates: u64,
    /// Keyed effects applied more than once — exactly-once demands 0.
    pub duplicates: u64,
    /// Median virtual recovery cost, µs (0 with no crashes).
    pub recovery_p50_us: u64,
    /// 99th-percentile virtual recovery cost, µs.
    pub recovery_p99_us: u64,
    /// Client-side journal intent records appended (all devices).
    pub client_appends: u64,
    /// Client-side fsync barriers crossed (all devices).
    pub client_fsyncs: u64,
    /// Client-side `AlreadyApplied` dedup hits (all devices).
    pub client_already_applied: u64,
}

/// The incident-debugging digest of one traced fleet run: what the
/// per-device flight recorders promoted, which histogram buckets carry
/// exemplars, and which declared objectives are burning. All fields are
/// folded in device-index order after the workers join, so the digest —
/// including its own checksum — is worker-count-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentDigest {
    /// Traces promoted across all devices (kept + dropped).
    pub promoted_traces: u64,
    /// Kept promoted traces whose reason is a blown deadline.
    pub promoted_deadline: u64,
    /// Promotions dropped because a device's incident store was full.
    pub promoted_dropped: u64,
    /// Spans overwritten by ring wrap-around across all devices.
    pub spans_evicted: u64,
    /// The first few exemplar trace ids (16-hex, device-index order)
    /// pinned on `proxy_call_ms` histogram buckets.
    pub exemplar_trace_ids: Vec<String>,
    /// Names of the worst breached SLO objectives (fast-burn
    /// descending, capped), from the merged per-device reports. Empty
    /// when the run declared no objectives (`slo: false`).
    pub top_breached: Vec<String>,
    /// FNV fold over every kept promoted trace id + reason and every
    /// histogram exemplar, in device-index order. Separate from the
    /// main report checksum so tracing stays invisible to it.
    pub incident_checksum: u64,
}

/// Aggregate cache-plane counters of one cached fleet run, folded in
/// device-index order from each runtime's shared
/// [`mobivine::cache::CacheMetrics`] block. Deliberately excluded from
/// [`FleetReport::checksum`]: caching must be invisible to what the
/// fleet computes, only cutting how much binding-plane work it takes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheDigest {
    /// Reads served from a fresh cached entry (no binding-plane work).
    pub hits: u64,
    /// Reads that went through to the layers below and filled the cache
    /// — the cached arm's binding-plane invocation count for cacheable
    /// reads.
    pub misses: u64,
    /// Reads that waited on another caller's in-flight fill.
    pub coalesced: u64,
    /// Entries discarded on a stamp mismatch or explicit invalidation.
    pub invalidated: u64,
}

/// Aggregate bridge-plane counters of one bridge-arm fleet run, summed
/// in device-index order from each WebView device's crossing counter.
/// Deliberately excluded from [`FleetReport::checksum`]: batching must
/// be invisible to what the fleet computes, only cutting how many times
/// it crosses the JavaScript bridge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BridgeDigest {
    /// WebView devices in the fleet (the only ones whose multi-reads
    /// cross a bridge).
    pub webview_devices: u64,
    /// Total JavaScript-bridge crossings over the whole run, warm-up
    /// included. One multi-read costs two crossings unbatched and one
    /// batched, so the batched arm's total must come in lower.
    pub crossings: u64,
}

impl FleetReport {
    /// Throughput in operations per *virtual* second (deterministic,
    /// unlike wall-clock throughput).
    pub fn virtual_ops_per_sec(&self) -> u64 {
        if self.virtual_elapsed_ms == 0 {
            return 0;
        }
        self.total_ops * 1_000 / self.virtual_elapsed_ms
    }
}

const LAT_BUCKETS: usize = 24;

/// A tiny fixed log₂ histogram of virtual-ms latencies. Merging and
/// quantile extraction are pure integer arithmetic, so percentile
/// reporting stays deterministic.
#[derive(Clone)]
struct LatencyBuckets {
    counts: [u64; LAT_BUCKETS],
    total: u64,
}

impl Default for LatencyBuckets {
    fn default() -> Self {
        Self {
            counts: [0; LAT_BUCKETS],
            total: 0,
        }
    }
}

impl LatencyBuckets {
    fn bucket_of(ms: u64) -> usize {
        // Bucket b holds values with highest set bit b-1; 0 maps to 0.
        ((u64::BITS - ms.leading_zeros()) as usize).min(LAT_BUCKETS - 1)
    }

    fn record(&mut self, ms: u64) {
        self.counts[Self::bucket_of(ms)] += 1;
        self.total += 1;
    }

    fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The inclusive upper bound of the bucket holding quantile `q`.
    fn quantile_ms(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64 * q).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (bucket, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if bucket == 0 { 0 } else { 1u64 << (bucket - 1) };
            }
        }
        1u64 << (LAT_BUCKETS - 2)
    }
}

/// Per-device counters, merged in index order after the workers join.
#[derive(Clone, Default)]
struct DeviceStats {
    ops: u64,
    sms_sent: u64,
    http_ok: u64,
    location_fixes: u64,
    errors: u64,
    deadline_blown: u64,
    latency: LatencyBuckets,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv_fold(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x0000_0100_0000_01B3)
}

/// The fleet-wide SLO objective template: availability per traffic
/// method per platform, plus — under a brownout — a latency objective
/// at the scenario's p99 target. Every device gets the *same* list (its
/// recorder only matches its own platform's series), so the per-device
/// reports merge index-for-index at digest time.
fn fleet_slo_objectives(brownout: Option<&BrownoutConfig>) -> Vec<SloObjective> {
    let mut objectives = Vec::new();
    for platform in ["android", "s60", "android-webview"] {
        for (proxy, method) in [
            ("Location", "getLocation"),
            ("SMS", "sendTextMessage"),
            ("Http", "request"),
        ] {
            objectives.push(SloObjective {
                name: format!("avail:{proxy}.{method}@{platform}"),
                proxy: proxy.into(),
                method: method.into(),
                platform: platform.into(),
                target: SloTarget::Availability {
                    target_ppm: 995_000,
                },
            });
            if let Some(b) = brownout {
                objectives.push(SloObjective {
                    name: format!("latency:{proxy}.{method}@{platform}"),
                    proxy: proxy.into(),
                    method: method.into(),
                    platform: platform.into(),
                    target: SloTarget::Latency {
                        threshold_ms: b.p99_target_ms,
                        target_ppm: 990_000,
                    },
                });
            }
        }
    }
    objectives
}

/// One queued unit of traffic, dispatched at batch flush.
enum FleetOp {
    LocationFix,
    Sms { text: String },
    HttpReport { latitude: f64, longitude: f64 },
}

/// A per-device, per-round batch of traffic: ops accumulate during the
/// round's planning pass and hit the proxies — and through them the
/// device's `SimNetwork` — in one flush (the SINk-style batching
/// lever). Batch order is the queue order, so dispatch is
/// deterministic.
struct TrafficBatch {
    ops: Vec<FleetOp>,
    /// Widen every location fix into a fix + power-draw multi-read
    /// (the bridge arms exercise this; native platforms serve it
    /// directly, WebView over the JS bridge).
    multi_read: bool,
}

impl TrafficBatch {
    fn plan(
        rng: &mut u64,
        ops_per_round: u32,
        agent_id: u64,
        read_heavy: bool,
        multi_read: bool,
    ) -> Self {
        let mut ops = Vec::with_capacity(ops_per_round as usize);
        for _ in 0..ops_per_round {
            let draw = splitmix64(rng);
            // Both mixes consume exactly one draw per op, so a cached
            // and an uncached run of the same seed plan identical
            // traffic — the premise of the cache-arm checksum gate.
            ops.push(if read_heavy {
                match draw % 8 {
                    6 => FleetOp::Sms {
                        text: format!("agent {agent_id} checking in"),
                    },
                    7 => FleetOp::HttpReport {
                        latitude: 28.5 + (draw % 1_000) as f64 * 1e-6,
                        longitude: 77.3 + (draw % 977) as f64 * 1e-6,
                    },
                    _ => FleetOp::LocationFix,
                }
            } else {
                match draw % 4 {
                    0 | 1 => FleetOp::HttpReport {
                        latitude: 28.5 + (draw % 1_000) as f64 * 1e-6,
                        longitude: 77.3 + (draw % 977) as f64 * 1e-6,
                    },
                    2 => FleetOp::Sms {
                        text: format!("agent {agent_id} checking in"),
                    },
                    _ => FleetOp::LocationFix,
                }
            });
        }
        Self { ops, multi_read }
    }
}

/// The round-scoped knobs a [`TrafficBatch::flush`] runs under: the
/// round identity plus the brownout arm's deadline budget and the
/// durable arm's idempotency seed, when those arms are on.
struct FlushCtx {
    deadline_budget_ms: Option<u64>,
    round: u64,
    idem_seed: Option<u64>,
}

impl TrafficBatch {
    /// Executes the batch through the device's memoized proxies,
    /// recording per-op virtual latency into `stats`.
    ///
    /// Without a deadline budget, latency is the per-op clock delta and
    /// every op records. Under a brownout budget the batch has
    /// **arrival semantics**: every op conceptually arrived at flush
    /// start, runs inside an ambient [`Deadline`] opened there, and —
    /// when accepted — records its *sojourn* (completion minus flush
    /// start), the queueing-inclusive latency the admission gate's AIMD
    /// loop also observes. Rejected ops (shed or deadline-exceeded) do
    /// not record: the gate's claim is about the calls it accepted.
    fn flush(
        self,
        registry: &ShardedRegistry,
        device_index: usize,
        device: &Device,
        host: &str,
        stats: &mut DeviceStats,
        ctx: FlushCtx,
    ) {
        let FlushCtx {
            deadline_budget_ms,
            round,
            idem_seed,
        } = ctx;
        let agent_id = device_index as u64;
        let multi_read = self.multi_read;
        let flush_start_ms = device.clock().now_ms();
        for (ordinal, op) in self.ops.into_iter().enumerate() {
            stats.ops += 1;
            let before_ms = device.clock().now_ms();
            // Durable arms give every op of the run a deterministic
            // identity: the same `(seed, device, round, op)` key on
            // first delivery and on any crash-retry re-delivery.
            let key =
                idem_seed.map(|seed| IdempotencyKey::derive(seed, agent_id, round, ordinal as u64));
            let execute = || -> Result<(), ProxyError> {
                match op {
                    // The bridge arm widens every fix into a multi-read
                    // (fix + power draw). Android/S60 serve it natively
                    // and WebView over the bridge — batched or not, the
                    // counters below are identical, which is what the
                    // cross-arm checksum gate pins.
                    FleetOp::LocationFix if multi_read => registry
                        .resolve::<dyn LocationProxy>(device_index)
                        .and_then(|location| location.get_location_with_power())
                        .map(|_| stats.location_fixes += 1),
                    FleetOp::LocationFix => registry
                        .resolve::<dyn LocationProxy>(device_index)
                        .and_then(|location| location.get_location())
                        .map(|_| stats.location_fixes += 1),
                    FleetOp::Sms { text } => registry
                        .resolve::<dyn SmsProxy>(device_index)
                        .and_then(|sms| sms.send_text_message(FLEET_SUPERVISOR, &text, None))
                        .map(|_| stats.sms_sent += 1),
                    FleetOp::HttpReport {
                        latitude,
                        longitude,
                    } => registry
                        .resolve::<dyn HttpProxy>(device_index)
                        .and_then(|http| {
                            let point = TrackPoint {
                                agent_id,
                                latitude,
                                longitude,
                                at_ms: before_ms,
                            };
                            let body = serde_json::to_vec(&point).unwrap_or_default();
                            let url = format!("http://{host}/report-location");
                            let mut response = http.request("POST", &url, &body)?;
                            // At-least-once re-delivery: a crash-killed
                            // call answers 503; the retry re-sends the
                            // SAME idempotency key and the server's
                            // durability layer dedups, so only the
                            // final outcome is counted — the checksum
                            // stays byte-identical to the crash-free
                            // arm.
                            let mut attempts = 0;
                            while key.is_some() && response.status == 503 && attempts < 3 {
                                attempts += 1;
                                response = http.request("POST", &url, &body)?;
                            }
                            Ok(response)
                        })
                        .map(|response| {
                            if (200..300).contains(&response.status) {
                                stats.http_ok += 1;
                            }
                        }),
                }
            };
            // The ambient idempotency-key scope wraps the whole call
            // path (client journal decorators read it; the HTTP
            // decorator stamps it onto the wire).
            let execute = || match key {
                Some(k) => with_idempotency_key(k, execute),
                None => execute(),
            };
            match deadline_budget_ms {
                Some(budget_ms) => {
                    let deadline = Deadline::after(flush_start_ms, budget_ms);
                    let outcome = with_deadline(deadline, execute);
                    // The same comparison the proxy-plane decorator
                    // makes when it stamps `deadline = blown` on the
                    // root span — kept telemetry-independent here so
                    // the count (and the checksum folding it) is
                    // identical with tracing on or off.
                    if device.clock().now_ms() > deadline.expires_at_ms() {
                        stats.deadline_blown += 1;
                    }
                    match outcome {
                        Ok(()) => stats
                            .latency
                            .record(deadline.sojourn_ms(device.clock().now_ms())),
                        Err(e) => {
                            stats.errors += 1;
                            // Rejections are not accepted calls; their
                            // (cheap) sojourn stays out of the accepted
                            // latency distribution.
                            if !e.kind().is_load_shed()
                                && e.kind() != ProxyErrorKind::DeadlineExceeded
                            {
                                stats
                                    .latency
                                    .record(deadline.sojourn_ms(device.clock().now_ms()));
                            }
                        }
                    }
                }
                None => {
                    if execute().is_err() {
                        stats.errors += 1;
                    }
                    stats
                        .latency
                        .record(device.clock().now_ms().saturating_sub(before_ms));
                }
            }
        }
    }
}

/// A built fleet, ready to run: the sharded registry, the lockstep
/// cohort of devices, and one [`WfmServer`] per shard.
pub struct Fleet {
    config: FleetConfig,
    registry: Arc<ShardedRegistry>,
    cohort: Cohort,
    servers: Vec<WfmServer>,
    /// The WebView substrates, in device-index order, retained so the
    /// bridge digest can read their crossing counters after the run.
    webviews: Vec<Arc<WebView>>,
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("devices", &self.cohort.len())
            .field("shards", &self.registry.shard_count())
            .finish()
    }
}

impl Fleet {
    /// Builds the fleet: per-device simulated handsets (Android, S60,
    /// WebView round-robin by index), a warmed [`ShardedRegistry`], the
    /// lockstep [`Cohort`], and a [`WfmServer`] per shard installed on
    /// every member device's network under [`shard_host`].
    ///
    /// # Errors
    ///
    /// `IllegalArgument` for a zero count in `config`; otherwise any
    /// proxy-construction error from registry warm-up.
    pub fn build(config: FleetConfig) -> Result<Self, ProxyError> {
        let config = config.validated()?;
        let mut registry = ShardedRegistry::new(config.shards)?;
        let mut cohort = Cohort::with_tick(config.tick_ms);
        // The crash storm's victims are precomputed from the seeded
        // traffic plan (same draws [`TrafficBatch::plan`] will make),
        // keyed by idempotency key — NOT by arrival order — so the
        // storm hits identical logical calls whatever the worker
        // interleaving.
        let crash_schedules: Option<Vec<Arc<CrashSchedule>>> = match &config.crash_plan {
            Some(storm) => Some(
                crash_victims(&config, &registry, storm.crashes_per_shard)?
                    .into_iter()
                    .map(CrashSchedule::new)
                    .collect(),
            ),
            None => None,
        };
        let servers: Vec<WfmServer> = (0..config.shards)
            .map(|shard| match &config.durability {
                Some(durability) => WfmServer::durable(DurabilityConfig {
                    checkpoint_every: durability.checkpoint_every,
                    policy: JournalPolicy::default(),
                    crash: crash_schedules
                        .as_ref()
                        .map(|schedules| Arc::clone(&schedules[shard])),
                }),
                None => WfmServer::new(),
            })
            .collect();
        let mut armed_shards = vec![false; config.shards];
        let mut webviews: Vec<Arc<WebView>> = Vec::new();

        for index in 0..config.devices {
            let mut seed_state = config.seed ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            let device_seed = splitmix64(&mut seed_state);
            let device = Device::builder()
                .seed(device_seed)
                .msisdn(&format!("+91-98-AGENT-{index}"))
                .build();
            device.smsc().register_address(FLEET_SUPERVISOR);

            let shard = registry.shard_of(index);
            servers[shard].install(device.network(), &shard_host(shard));

            // Arm each shard's crash storm through the fault plan of
            // its first member device, firing the arming transition at
            // build time (virtual t=0) so every round's traffic runs
            // under an armed schedule — deterministically, before any
            // worker starts.
            if let Some(schedules) = &crash_schedules {
                if !armed_shards[shard] {
                    armed_shards[shard] = true;
                    FaultPlan::new(&device).crash_storm(0, &schedules[shard]);
                    device.events().run_until(0);
                }
            }

            // Telemetry wiring happens here, at build time: the traced
            // decorators resolve their span names and metric handles
            // once per device, so the run loop's proxy calls stay
            // allocation-free.
            let overload_policy = config
                .brownout
                .as_ref()
                .filter(|b| b.admission && shard == b.target_shard)
                .map(|b| OverloadPolicy::default().target_ms(b.p99_target_ms));
            // The target shard's devices additionally promote traces
            // whose root call ran longer than the brownout's p99
            // target; every device promotes errors and blown deadlines
            // (the policy default).
            let promotion = config
                .brownout
                .as_ref()
                .filter(|b| shard == b.target_shard)
                .map(|b| {
                    PromotionPolicy::default()
                        .latency_threshold("proxy:Location.getLocation", b.p99_target_ms)
                        .latency_threshold("proxy:SMS.sendTextMessage", b.p99_target_ms)
                        .latency_threshold("proxy:Http.request", b.p99_target_ms)
                })
                .unwrap_or_default()
                .max_incidents(config.incident_capacity);
            // One engine *per device*: shared burn-rate windows would
            // interleave worker writes; per-device engines merge in
            // index order at report time, keeping the digest
            // worker-count-independent.
            let slo_engine = config.slo.then(|| {
                Arc::new(SloEngine::new(fleet_slo_objectives(
                    config.brownout.as_ref(),
                )))
            });
            let instrument = |b: mobivine::registry::MobivineBuilder| {
                let b = if config.telemetry {
                    let b = b
                        .with_telemetry_retention(config.span_retention)
                        .with_promotion_policy(promotion.clone());
                    match &slo_engine {
                        Some(engine) => b.with_slo(Arc::clone(engine)),
                        None => b,
                    }
                } else {
                    b
                };
                let b = match overload_policy.clone() {
                    Some(policy) => b.with_overload(policy),
                    None => b,
                };
                // The cache rides between the overload and traced
                // layers (the builder normalizes the order); one shared
                // counter block per device, read back at report time.
                let b = if config.cache {
                    b.with_cache(CachePolicy::default())
                } else {
                    b
                };
                // The durable arm journals client-side too: mutating
                // proxy calls append an intent and cross the fsync
                // barrier before their side effect.
                if config.durability.is_some() {
                    b.with_journal(JournalPolicy::default())
                } else {
                    b
                }
            };
            match index % 3 {
                0 => {
                    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
                    registry.push_with(|b| instrument(b.android(platform.new_context())))?;
                }
                1 => {
                    registry.push_with(|b| instrument(b.s60(S60Platform::new(device.clone()))))?;
                }
                _ => {
                    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
                    let webview = Arc::new(WebView::new(platform.new_context()));
                    webviews.push(Arc::clone(&webview));
                    registry.push_with(|b| instrument(b.webview(webview)))?;
                }
            }
            cohort.join(device);
        }

        registry.warm()?;
        // Graceful degradation wiring: the ramped shard's location
        // reports are enrichment traffic the server can live without,
        // so under shed pressure the overload HTTP decorator degrades
        // them to a synthetic accept instead of surfacing an error.
        if let Some(brownout) = config.brownout.as_ref().filter(|b| b.admission) {
            for index in 0..config.devices {
                if registry.shard_of(index) == brownout.target_shard {
                    registry.resolve::<dyn HttpProxy>(index)?.set_property(
                        "shed.droppable_path",
                        PropertyValue::str("/report-location"),
                    )?;
                }
            }
        }
        // The bridge arm's batching toggle: a JavaScript-local property
        // flipped on every WebView device's location proxy (the same
        // plumbing as the shed.droppable_path wiring above). It never
        // crosses the bridge or touches the catalogs, so the property
        // is valid on every decorator stack.
        if let Some(batched) = config.bridge_batch {
            for index in 0..config.devices {
                if index % 3 == 2 {
                    registry
                        .resolve::<dyn LocationProxy>(index)?
                        .set_property(BATCH_PROPERTY, PropertyValue::Bool(batched))?;
                }
            }
        }
        Ok(Self {
            config,
            registry: Arc::new(registry),
            cohort,
            servers,
            webviews,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The sharded registry backing the fleet.
    pub fn registry(&self) -> &Arc<ShardedRegistry> {
        &self.registry
    }

    /// The per-shard servers, in shard order.
    pub fn servers(&self) -> &[WfmServer] {
        &self.servers
    }

    /// Runs the configured rounds across the configured workers and
    /// reports. Workers step disjoint device partitions; each round,
    /// each device plans a traffic batch from its seeded stream,
    /// flushes it through the sharded registry's memoized proxies, and
    /// advances to the round barrier.
    pub fn run(mut self) -> FleetReport {
        let config = self.config.clone();
        let partitions = self.cohort.partition(config.workers);
        let mut stats: Vec<DeviceStats> = vec![DeviceStats::default(); config.devices];

        // Hand each worker the stats slice matching its partition —
        // disjoint &mut borrows, no locks on the hot path.
        {
            let mut slices: Vec<(&CohortPartition, &mut [DeviceStats])> = Vec::new();
            let mut rest: &mut [DeviceStats] = &mut stats;
            for partition in &partitions {
                let (head, tail) = rest.split_at_mut(partition.len());
                slices.push((partition, head));
                rest = tail;
            }

            let registry = &self.registry;
            std::thread::scope(|scope| {
                for (partition, slice) in slices {
                    let config = &config;
                    scope.spawn(move || {
                        for round in 1..=config.rounds {
                            let target = partition_target(config.tick_ms, round);
                            for (offset, device) in partition.devices().iter().enumerate() {
                                let index = partition.base_index() + offset;
                                let shard = registry.shard_of(index);
                                // The brownout ramp: the target shard's
                                // devices plan a multiplied batch and run
                                // it under the batch-arrival deadline.
                                let ramped =
                                    config.brownout.as_ref().filter(|b| shard == b.target_shard);
                                let ops_per_round = match ramped {
                                    Some(b) => {
                                        config.ops_per_round.saturating_mul(b.ops_multiplier)
                                    }
                                    None => config.ops_per_round,
                                };
                                // Independent stream per (device, round):
                                // batch planning never depends on how
                                // much traffic earlier rounds ran.
                                let mut rng = config
                                    .seed
                                    .wrapping_add((index as u64) << 20)
                                    .wrapping_add(round);
                                let batch = TrafficBatch::plan(
                                    &mut rng,
                                    ops_per_round,
                                    index as u64,
                                    config.read_heavy,
                                    config.bridge_batch.is_some(),
                                );
                                batch.flush(
                                    registry,
                                    index,
                                    device,
                                    &shard_host(shard),
                                    &mut slice[offset],
                                    FlushCtx {
                                        deadline_budget_ms: ramped.map(|b| b.deadline_budget_ms),
                                        round,
                                        idem_seed: config.durability.as_ref().map(|_| config.seed),
                                    },
                                );
                            }
                            partition.advance_to(target);
                        }
                    });
                }
            });
        }
        for _ in 0..config.rounds {
            // The workers already stepped every member; this records the
            // rounds on the cohort so its notion of "now" matches.
            self.cohort.step();
        }

        self.report(stats)
    }

    fn report(&self, stats: Vec<DeviceStats>) -> FleetReport {
        let config = self.config.clone();
        let mut total_ops = 0;
        let mut sms_sent = 0;
        let mut http_ok = 0;
        let mut location_fixes = 0;
        let mut errors = 0;
        let mut shed = 0;
        let mut degraded = 0;
        let mut deadline_exceeded = 0;
        let mut deadline_blown = 0;
        let mut checksum = 0xCBF2_9CE4_8422_2325u64;
        let mut shard_latency: Vec<LatencyBuckets> = vec![LatencyBuckets::default(); config.shards];
        let mut shard_ops = vec![0u64; config.shards];
        let mut shard_devices = vec![0usize; config.shards];

        for (index, device_stats) in stats.iter().enumerate() {
            total_ops += device_stats.ops;
            sms_sent += device_stats.sms_sent;
            http_ok += device_stats.http_ok;
            location_fixes += device_stats.location_fixes;
            errors += device_stats.errors;
            // Per-device overload counters, straight off the runtime's
            // shared metric block (zero when the device has no overload
            // layer). Each device is stepped by exactly one worker, so
            // these are as deterministic as the op counters.
            let overload: OverloadSnapshot = self
                .registry
                .runtime(index)
                .and_then(|runtime| runtime.overload_metrics())
                .map(|metrics| metrics.snapshot())
                .unwrap_or_default();
            shed += overload.shed;
            degraded += overload.degraded;
            deadline_exceeded += overload.deadline_fail_fast;
            deadline_blown += device_stats.deadline_blown;
            let shard = self.registry.shard_of(index);
            shard_latency[shard].merge(&device_stats.latency);
            shard_ops[shard] += device_stats.ops;
            shard_devices[shard] += 1;
            for value in [
                device_stats.ops,
                device_stats.sms_sent,
                device_stats.http_ok,
                device_stats.location_fixes,
                device_stats.errors,
                device_stats.deadline_blown,
                overload.shed,
                overload.degraded,
                overload.deadline_fail_fast,
            ] {
                checksum = fnv_fold(checksum, value);
            }
        }

        let incidents = config.telemetry.then(|| self.incident_digest(&config));
        let cache = config.cache.then(|| self.cache_digest(&config));
        let bridge = config.bridge_batch.is_some().then(|| self.bridge_digest());
        let recovery = config
            .durability
            .is_some()
            .then(|| self.recovery_digest(&config));

        let mut overall = LatencyBuckets::default();
        for buckets in &shard_latency {
            overall.merge(buckets);
        }

        let per_shard = (0..config.shards)
            .map(|shard| ShardReport {
                shard,
                devices: shard_devices[shard],
                ops: shard_ops[shard],
                p50_ms: shard_latency[shard].quantile_ms(0.50),
                p95_ms: shard_latency[shard].quantile_ms(0.95),
                p99_ms: shard_latency[shard].quantile_ms(0.99),
                server: self.servers[shard].counts(),
            })
            .collect();

        FleetReport {
            virtual_elapsed_ms: config.rounds * config.tick_ms,
            p50_ms: overall.quantile_ms(0.50),
            p95_ms: overall.quantile_ms(0.95),
            p99_ms: overall.quantile_ms(0.99),
            config,
            total_ops,
            sms_sent,
            http_ok,
            location_fixes,
            errors,
            shed,
            degraded,
            deadline_exceeded,
            deadline_blown,
            per_shard,
            checksum,
            incidents,
            cache,
            bridge,
            recovery,
        }
    }

    /// Folds every shard server's recovery ledger (shard order) and
    /// every device runtime's client journal counters (device-index
    /// order) into one digest. Recovery costs are sorted before the
    /// quantile pull, so the digest is worker-invariant even though
    /// shards absorb their crashes in interleaving-dependent order.
    fn recovery_digest(&self, config: &FleetConfig) -> RecoveryDigest {
        let mut digest = RecoveryDigest::default();
        let mut costs: Vec<u64> = Vec::new();
        for server in &self.servers {
            let Some(ledger) = server.recovery_snapshot() else {
                continue;
            };
            digest.recoveries += ledger.recoveries;
            digest.torn_crashes += ledger.torn_crashes;
            digest.gap_crashes += ledger.gap_crashes;
            digest.effect_crashes += ledger.effect_crashes;
            digest.replayed_records += ledger.replayed_records;
            digest.torn_truncated += ledger.torn_truncated;
            digest.checkpoints += ledger.checkpoints;
            digest.suppressed_duplicates += ledger.suppressed_duplicates;
            digest.duplicates += ledger.duplicates();
            costs.extend(ledger.recovery_cost_us);
        }
        costs.sort_unstable();
        let quantile = |q: f64| -> u64 {
            if costs.is_empty() {
                return 0;
            }
            let rank = ((costs.len() as f64 * q).ceil() as usize).clamp(1, costs.len());
            costs[rank - 1]
        };
        digest.recovery_p50_us = quantile(0.50);
        digest.recovery_p99_us = quantile(0.99);
        for index in 0..config.devices {
            let Some(metrics) = self
                .registry
                .runtime(index)
                .and_then(|runtime| runtime.journal_metrics())
            else {
                continue;
            };
            let snapshot = metrics.snapshot();
            digest.client_appends += snapshot.appends;
            digest.client_fsyncs += snapshot.fsyncs;
            digest.client_already_applied += snapshot.already_applied;
        }
        digest
    }

    /// Sums every WebView device's bridge-crossing counter, in
    /// device-index order. Each device is stepped by exactly one
    /// worker, so the digest is as deterministic as the op counters.
    fn bridge_digest(&self) -> BridgeDigest {
        let mut digest = BridgeDigest::default();
        for webview in &self.webviews {
            digest.webview_devices += 1;
            digest.crossings += webview.bridge_crossings();
        }
        digest
    }

    /// Walks every device runtime in index order and sums its cache
    /// counter block. Each device is stepped by exactly one worker, so
    /// the digest is as deterministic as the op counters.
    fn cache_digest(&self, config: &FleetConfig) -> CacheDigest {
        let mut digest = CacheDigest::default();
        for index in 0..config.devices {
            let snapshot: CacheSnapshot = match self
                .registry
                .runtime(index)
                .and_then(|runtime| runtime.cache_metrics())
            {
                Some(metrics) => metrics.snapshot(),
                None => continue,
            };
            digest.hits += snapshot.hit;
            digest.misses += snapshot.miss;
            digest.coalesced += snapshot.coalesced;
            digest.invalidated += snapshot.invalidated;
        }
        digest
    }

    /// Walks every device runtime in index order and folds its flight
    /// recorder, histogram exemplars and SLO report into one digest.
    /// Each device was stepped by exactly one worker, so every input is
    /// as deterministic as the op counters.
    fn incident_digest(&self, config: &FleetConfig) -> IncidentDigest {
        const EXEMPLAR_ID_CAP: usize = 8;
        let mut promoted_traces = 0;
        let mut promoted_deadline = 0;
        let mut promoted_dropped = 0;
        let mut spans_evicted = 0;
        let mut exemplar_trace_ids = Vec::new();
        let mut incident_checksum = 0xCBF2_9CE4_8422_2325u64;
        let mut merged_slo: Option<SloReport> = None;
        let now_ms = config.rounds * config.tick_ms;

        for index in 0..config.devices {
            let Some(runtime) = self.registry.runtime(index) else {
                continue;
            };
            if let Some(store) = runtime.incidents() {
                promoted_traces += store.promoted_total();
                promoted_dropped += store.dropped();
                for trace in store.traces() {
                    if matches!(trace.reason, PromotionReason::DeadlineBlown) {
                        promoted_deadline += 1;
                    }
                    incident_checksum = fnv_fold(incident_checksum, trace.trace_id.0);
                    incident_checksum = fnv_fold(incident_checksum, trace.reason.code());
                }
            }
            if let Some(tracer) = runtime.tracer() {
                spans_evicted += tracer.evicted_spans();
            }
            if let Some(metrics) = runtime.telemetry_metrics() {
                let platform = runtime.platform_id().id().to_owned();
                for (proxy, method) in [
                    ("Location", "getLocation"),
                    ("SMS", "sendTextMessage"),
                    ("Http", "request"),
                ] {
                    let labels = Labels::call(proxy, method, &platform);
                    for (_, trace_id, _) in metrics.histogram("proxy_call_ms", &labels).exemplars()
                    {
                        incident_checksum = fnv_fold(incident_checksum, trace_id.0);
                        if exemplar_trace_ids.len() < EXEMPLAR_ID_CAP {
                            exemplar_trace_ids.push(format!("{:016x}", trace_id.0));
                        }
                    }
                }
            }
            if let Some(engine) = runtime.slo_engine() {
                let report = engine.report(now_ms);
                match &mut merged_slo {
                    // Same template everywhere, so the merge cannot
                    // mismatch; a failure would be a bug worth hearing.
                    Some(merged) => merged.merge(&report).expect("identical objective template"),
                    None => merged_slo = Some(report),
                }
            }
        }

        let top_breached = merged_slo
            .map(|merged| {
                let mut breached: Vec<(u64, String)> = merged
                    .breached()
                    .into_iter()
                    .map(|status| (status.fast_burn_milli(), status.objective.name.clone()))
                    .collect();
                breached.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
                breached.into_iter().take(5).map(|(_, name)| name).collect()
            })
            .unwrap_or_default();

        IncidentDigest {
            promoted_traces,
            promoted_deadline,
            promoted_dropped,
            spans_evicted,
            exemplar_trace_ids,
            top_breached,
            incident_checksum,
        }
    }
}

fn partition_target(tick_ms: u64, round: u64) -> u64 {
    tick_ms * round
}

/// Precomputes each shard's crash victims by replaying the seeded
/// traffic plan's draws: for every `(round, device, op)` in
/// deterministic order, the op is an HTTP report iff the same draw
/// [`TrafficBatch::plan`] will make says so, and HTTP reports are the
/// calls that reach the shard server's durability layer. Victims are
/// spread evenly over the candidates and cycle through the crash kinds
/// starting torn-write, then intent/effect-gap.
fn crash_victims(
    config: &FleetConfig,
    registry: &ShardedRegistry,
    crashes_per_shard: usize,
) -> Result<Vec<Vec<(u64, CrashKind)>>, ProxyError> {
    const KINDS: [CrashKind; 3] = [
        CrashKind::TornWrite,
        CrashKind::BeforeEffect,
        CrashKind::AfterEffect,
    ];
    let mut candidates: Vec<Vec<u64>> = vec![Vec::new(); config.shards];
    for round in 1..=config.rounds {
        for index in 0..config.devices {
            let mut rng = config
                .seed
                .wrapping_add((index as u64) << 20)
                .wrapping_add(round);
            for ordinal in 0..config.ops_per_round {
                let draw = splitmix64(&mut rng);
                let is_http = if config.read_heavy {
                    draw % 8 == 7
                } else {
                    matches!(draw % 4, 0 | 1)
                };
                if is_http {
                    let key = IdempotencyKey::derive(
                        config.seed,
                        index as u64,
                        round,
                        u64::from(ordinal),
                    );
                    candidates[registry.shard_of(index)].push(key.0);
                }
            }
        }
    }
    let mut victims = Vec::with_capacity(config.shards);
    for (shard, keys) in candidates.into_iter().enumerate() {
        if keys.len() < crashes_per_shard {
            return Err(ProxyError::new(
                ProxyErrorKind::IllegalArgument,
                format!(
                    "FleetConfig: shard {shard} plans only {} HTTP reports; cannot schedule \
                     {crashes_per_shard} crashes (raise rounds/ops_per_round or lower \
                     crashes_per_shard)",
                    keys.len()
                ),
            ));
        }
        let step = keys.len() / crashes_per_shard;
        victims.push(
            (0..crashes_per_shard)
                .map(|i| (keys[i * step], KINDS[i % KINDS.len()]))
                .collect(),
        );
    }
    Ok(victims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            devices: 30,
            shards: 4,
            workers: 3,
            rounds: 3,
            tick_ms: 500,
            ops_per_round: 2,
            seed: 11,
            read_heavy: false,
            cache: false,
            telemetry: false,
            span_retention: 16,
            incident_capacity: 256,
            slo: false,
            brownout: None,
            bridge_batch: None,
            durability: None,
            crash_plan: None,
        }
    }

    fn read_heavy_config(cache: bool) -> FleetConfig {
        FleetConfig {
            read_heavy: true,
            cache,
            rounds: 4,
            ops_per_round: 6,
            ..small_config()
        }
    }

    fn brownout_config(admission: bool) -> FleetConfig {
        FleetConfig {
            brownout: Some(BrownoutConfig {
                target_shard: 1,
                admission,
                ..BrownoutConfig::default()
            }),
            ..small_config()
        }
    }

    #[test]
    fn zero_counts_are_rejected() {
        let err = FleetConfig {
            devices: 0,
            ..small_config()
        }
        .validated()
        .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn fleet_runs_and_reports() {
        let report = Fleet::build(small_config()).unwrap().run();
        assert_eq!(report.total_ops, 30 * 3 * 2);
        assert_eq!(report.errors, 0, "no op should fail: {report:?}");
        assert!(report.http_ok > 0);
        assert!(report.sms_sent > 0);
        assert!(report.location_fixes > 0);
        assert_eq!(report.per_shard.len(), 4);
        assert_eq!(
            report.per_shard.iter().map(|s| s.ops).sum::<u64>(),
            report.total_ops
        );
        // The shard servers saw exactly the fleet's successful posts.
        let tracked: u64 = report.per_shard.iter().map(|s| s.server.tracks).sum();
        assert_eq!(tracked, report.http_ok);
        assert_eq!(report.virtual_elapsed_ms, 1_500);
        assert!(report.virtual_ops_per_sec() > 0);
    }

    #[test]
    fn same_seed_same_report_regardless_of_workers() {
        let first = Fleet::build(small_config()).unwrap().run();
        let second = Fleet::build(small_config()).unwrap().run();
        assert_eq!(first, second, "same config ⇒ identical report");

        let reworked = Fleet::build(FleetConfig {
            workers: 1,
            ..small_config()
        })
        .unwrap()
        .run();
        assert_eq!(first.checksum, reworked.checksum);
        assert_eq!(first.total_ops, reworked.total_ops);
        assert_eq!(first.per_shard.len(), reworked.per_shard.len());
        for (a, b) in first.per_shard.iter().zip(&reworked.per_shard) {
            assert_eq!(a.ops, b.ops);
            assert_eq!(a.p99_ms, b.p99_ms);
            assert_eq!(a.server, b.server);
        }
    }

    #[test]
    fn telemetry_keeps_reports_worker_invariant() {
        let traced = FleetConfig {
            telemetry: true,
            span_retention: 8,
            ..small_config()
        };
        let first = Fleet::build(traced.clone()).unwrap().run();
        let single = Fleet::build(FleetConfig {
            workers: 1,
            ..traced.clone()
        })
        .unwrap()
        .run();
        assert_eq!(first.checksum, single.checksum);
        assert_eq!(first.total_ops, single.total_ops);
        assert_eq!(first.errors, 0);
        // Tracing must not change *what* the fleet computes.
        let untraced = Fleet::build(small_config()).unwrap().run();
        assert_eq!(first.checksum, untraced.checksum);
    }

    #[test]
    fn zero_retention_with_telemetry_is_rejected() {
        let err = FleetConfig {
            telemetry: true,
            span_retention: 0,
            ..small_config()
        }
        .validated()
        .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
        // Without telemetry the retention knob is inert.
        assert!(FleetConfig {
            telemetry: false,
            span_retention: 0,
            ..small_config()
        }
        .validated()
        .is_ok());
    }

    #[test]
    fn brownout_target_shard_must_exist() {
        let err = FleetConfig {
            brownout: Some(BrownoutConfig {
                target_shard: 4,
                ..BrownoutConfig::default()
            }),
            ..small_config()
        }
        .validated()
        .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn brownout_with_admission_sheds_and_bounds_accepted_p99() {
        let config = brownout_config(true);
        let target = config.brownout.as_ref().unwrap().target_shard;
        let p99_target = config.brownout.as_ref().unwrap().p99_target_ms;
        let report = Fleet::build(config).unwrap().run();
        assert!(report.shed > 0, "the gate shed load: {report:?}");
        let shard = &report.per_shard[target];
        assert!(
            shard.p99_ms <= p99_target,
            "accepted-call p99 {} must hold the {p99_target}ms target under the ramp",
            shard.p99_ms
        );
        // Degradation absorbed part of the pressure instead of erroring.
        assert!(report.degraded > 0, "degradation tiers engaged: {report:?}");
    }

    #[test]
    fn brownout_without_admission_blows_past_the_target() {
        let config = brownout_config(false);
        let target = config.brownout.as_ref().unwrap().target_shard;
        let p99_target = config.brownout.as_ref().unwrap().p99_target_ms;
        let report = Fleet::build(config).unwrap().run();
        assert_eq!(report.shed, 0, "no gate, no sheds");
        assert_eq!(report.deadline_exceeded, 0);
        assert!(
            report.deadline_blown > 0,
            "the ramp must push ops past the batch deadline: {report:?}"
        );
        let shard = &report.per_shard[target];
        assert!(
            shard.p99_ms > p99_target,
            "unprotected sojourn p99 {} must blow past {p99_target}ms",
            shard.p99_ms
        );
    }

    fn traced_brownout_config(admission: bool) -> FleetConfig {
        FleetConfig {
            telemetry: true,
            slo: true,
            ..brownout_config(admission)
        }
    }

    #[test]
    fn slo_without_telemetry_is_rejected() {
        let err = FleetConfig {
            slo: true,
            telemetry: false,
            ..small_config()
        }
        .validated()
        .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn untraced_runs_have_no_incident_digest() {
        let report = Fleet::build(small_config()).unwrap().run();
        assert!(report.incidents.is_none());
        assert_eq!(report.deadline_blown, 0, "no brownout, no deadline budget");
    }

    #[test]
    fn unprotected_brownout_promotes_every_deadline_breach() {
        let report = Fleet::build(traced_brownout_config(false)).unwrap().run();
        assert!(
            report.deadline_blown > 0,
            "the unprotected ramp must blow deadlines: {report:?}"
        );
        let digest = report.incidents.as_ref().expect("telemetry ⇒ digest");
        assert_eq!(digest.promoted_dropped, 0, "stores must not overflow here");
        assert_eq!(
            digest.promoted_deadline, report.deadline_blown,
            "every deadline-blown call must have a promoted trace explaining it"
        );
        assert!(
            !digest.exemplar_trace_ids.is_empty(),
            "promotions pin histogram exemplars: {digest:?}"
        );

        // The whole digest — promoted trace ids included — is
        // worker-count-independent.
        let single = Fleet::build(FleetConfig {
            workers: 1,
            ..traced_brownout_config(false)
        })
        .unwrap()
        .run();
        assert_eq!(report.incidents, single.incidents);
        assert_eq!(report.checksum, single.checksum);
        assert_eq!(report.deadline_blown, single.deadline_blown);

        let rerun = Fleet::build(traced_brownout_config(false)).unwrap().run();
        assert_eq!(report, rerun, "same config ⇒ identical traced report");
    }

    #[test]
    fn protected_brownout_surfaces_breached_objectives() {
        let report = Fleet::build(traced_brownout_config(true)).unwrap().run();
        let digest = report.incidents.as_ref().expect("telemetry ⇒ digest");
        // Sheds are availability errors on the target shard's series:
        // the merged burn-rate report must name the burning objectives.
        assert!(
            !digest.top_breached.is_empty(),
            "sheds must breach availability objectives: {digest:?}"
        );
        assert!(digest
            .top_breached
            .iter()
            .all(|name| name.starts_with("avail:") || name.starts_with("latency:")));
        assert!(
            digest.promoted_traces > 0,
            "shed errors promote traces: {digest:?}"
        );
    }

    #[test]
    fn brownout_is_deterministic_across_workers() {
        let first = Fleet::build(brownout_config(true)).unwrap().run();
        let second = Fleet::build(brownout_config(true)).unwrap().run();
        assert_eq!(first, second, "same config ⇒ identical brownout report");
        let reworked = Fleet::build(FleetConfig {
            workers: 1,
            ..brownout_config(true)
        })
        .unwrap()
        .run();
        assert_eq!(first.checksum, reworked.checksum);
        assert_eq!(first.shed, reworked.shed);
        assert_eq!(first.degraded, reworked.degraded);
        assert_eq!(first.deadline_exceeded, reworked.deadline_exceeded);
    }

    #[test]
    fn caching_is_invisible_to_the_checksum() {
        let cached = Fleet::build(read_heavy_config(true)).unwrap().run();
        let uncached = Fleet::build(read_heavy_config(false)).unwrap().run();
        assert_eq!(
            cached.checksum, uncached.checksum,
            "caching must not change what the fleet computes"
        );
        assert_eq!(cached.total_ops, uncached.total_ops);
        assert_eq!(cached.location_fixes, uncached.location_fixes);
        assert_eq!(cached.errors, 0);
        assert!(uncached.cache.is_none());

        let digest = cached.cache.as_ref().expect("cache ⇒ digest");
        assert!(digest.hits > 0, "read-heavy mix must hit: {digest:?}");
        assert!(digest.misses > 0, "first reads must fill: {digest:?}");
        assert_eq!(digest.hits + digest.misses, cached.location_fixes);
        // The acceptance bar: the cached arm's binding-plane read
        // invocations (= misses) are at least 5× fewer than the
        // uncached arm's (= every fix goes to the binding).
        assert!(
            digest.misses * 5 <= uncached.location_fixes,
            "cache must cut binding reads ≥5x: {digest:?} vs {}",
            uncached.location_fixes
        );
    }

    #[test]
    fn cached_reports_are_worker_invariant() {
        let first = Fleet::build(read_heavy_config(true)).unwrap().run();
        let second = Fleet::build(read_heavy_config(true)).unwrap().run();
        assert_eq!(first, second, "same config ⇒ identical cached report");
        let single = Fleet::build(FleetConfig {
            workers: 1,
            ..read_heavy_config(true)
        })
        .unwrap()
        .run();
        assert_eq!(first.checksum, single.checksum);
        assert_eq!(
            first.cache, single.cache,
            "cache digest is worker-invariant"
        );
    }

    fn bridge_config(batched: bool) -> FleetConfig {
        FleetConfig {
            read_heavy: true,
            bridge_batch: Some(batched),
            rounds: 4,
            ops_per_round: 6,
            ..small_config()
        }
    }

    #[test]
    fn bridge_batching_is_invisible_to_the_checksum() {
        let batched = Fleet::build(bridge_config(true)).unwrap().run();
        let unbatched = Fleet::build(bridge_config(false)).unwrap().run();
        assert_eq!(
            batched.checksum, unbatched.checksum,
            "batching must not change what the fleet computes"
        );
        assert_eq!(batched.total_ops, unbatched.total_ops);
        assert_eq!(batched.location_fixes, unbatched.location_fixes);
        assert_eq!(batched.sms_sent, unbatched.sms_sent);
        assert_eq!(batched.http_ok, unbatched.http_ok);
        assert_eq!(batched.errors, 0);
        assert_eq!(unbatched.errors, 0);

        let on = batched.bridge.as_ref().expect("bridge arm ⇒ digest");
        let off = unbatched.bridge.as_ref().expect("bridge arm ⇒ digest");
        assert_eq!(on.webview_devices, 10, "30 devices, every third WebView");
        assert_eq!(on.webview_devices, off.webview_devices);
        // The acceptance bar: a multi-read is two crossings unbatched
        // and one batched, so the batched arm crosses strictly less.
        assert!(
            on.crossings < off.crossings,
            "batching must cut bridge crossings: {on:?} vs {off:?}"
        );
        // The classic arm reports no bridge digest at all.
        let classic = Fleet::build(small_config()).unwrap().run();
        assert!(classic.bridge.is_none());
    }

    #[test]
    fn bridge_arm_reports_are_worker_invariant() {
        let first = Fleet::build(bridge_config(true)).unwrap().run();
        let second = Fleet::build(bridge_config(true)).unwrap().run();
        assert_eq!(first, second, "same config ⇒ identical bridge report");
        let single = Fleet::build(FleetConfig {
            workers: 1,
            ..bridge_config(true)
        })
        .unwrap()
        .run();
        assert_eq!(first.checksum, single.checksum);
        assert_eq!(
            first.bridge, single.bridge,
            "bridge digest is worker-invariant"
        );
    }

    fn durable_config() -> FleetConfig {
        FleetConfig {
            durability: Some(DurabilityFleetConfig::default()),
            ..small_config()
        }
    }

    fn crash_config() -> FleetConfig {
        FleetConfig {
            crash_plan: Some(CrashStormConfig {
                crashes_per_shard: 3,
            }),
            ..durable_config()
        }
    }

    #[test]
    fn crash_plan_requires_durability_with_per_apply_checkpoints() {
        let err = FleetConfig {
            crash_plan: Some(CrashStormConfig::default()),
            ..small_config()
        }
        .validated()
        .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);

        let err = FleetConfig {
            durability: Some(DurabilityFleetConfig {
                checkpoint_every: 4,
            }),
            crash_plan: Some(CrashStormConfig::default()),
            ..small_config()
        }
        .validated()
        .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);

        let err = FleetConfig {
            brownout: Some(BrownoutConfig::default()),
            ..crash_config()
        }
        .validated()
        .unwrap_err();
        assert_eq!(err.kind(), ProxyErrorKind::IllegalArgument);
    }

    #[test]
    fn journaling_is_invisible_to_the_checksum() {
        // Durability on (client + server journals, idempotency keys on
        // the wire) must not change what the fleet computes.
        let durable = Fleet::build(durable_config()).unwrap().run();
        let plain = Fleet::build(small_config()).unwrap().run();
        assert_eq!(durable.checksum, plain.checksum);
        assert_eq!(durable.total_ops, plain.total_ops);
        assert_eq!(durable.http_ok, plain.http_ok);
        assert_eq!(durable.errors, 0);
        assert!(plain.recovery.is_none());

        let digest = durable.recovery.as_ref().expect("durability ⇒ digest");
        assert_eq!(digest.recoveries, 0, "no crash plan, no crashes");
        assert_eq!(digest.duplicates, 0);
        assert!(digest.client_appends > 0, "mutating calls journal intents");
        assert_eq!(digest.client_fsyncs, digest.client_appends);
        assert!(digest.checkpoints > 0, "server checkpoints every apply");
    }

    #[test]
    fn crash_storm_recovers_to_the_crash_free_checksum_with_zero_duplicates() {
        let stormed = Fleet::build(crash_config()).unwrap().run();
        let crash_free = Fleet::build(durable_config()).unwrap().run();
        // THE gate: a fleet that crashed and recovered on every shard
        // computes byte-identically to one that never crashed.
        assert_eq!(stormed.checksum, crash_free.checksum);
        assert_eq!(stormed.total_ops, crash_free.total_ops);
        assert_eq!(stormed.http_ok, crash_free.http_ok);
        assert_eq!(stormed.sms_sent, crash_free.sms_sent);
        assert_eq!(stormed.errors, 0, "recovery absorbs every crash");
        // Server-side state converges too, shard by shard.
        for (a, b) in stormed.per_shard.iter().zip(&crash_free.per_shard) {
            assert_eq!(a.server, b.server);
        }

        let digest = stormed.recovery.as_ref().expect("durability ⇒ digest");
        assert_eq!(digest.recoveries, 4 * 3, "3 crashes on each of 4 shards");
        assert!(digest.torn_crashes >= 4, "≥1 torn-write crash per shard");
        assert!(
            digest.gap_crashes >= 4,
            "≥1 intent/effect-gap crash per shard"
        );
        assert_eq!(digest.duplicates, 0, "exactly-once under the storm");
        assert_eq!(digest.torn_truncated, digest.torn_crashes);
        assert_eq!(
            digest.suppressed_duplicates,
            digest.gap_crashes + digest.effect_crashes,
            "every durable-intent crash retry dedups; torn retries re-commit"
        );
        assert!(digest.recovery_p50_us > 0);
        assert!(digest.recovery_p99_us >= digest.recovery_p50_us);
    }

    #[test]
    fn crash_storm_is_deterministic_and_worker_invariant() {
        let first = Fleet::build(crash_config()).unwrap().run();
        let second = Fleet::build(crash_config()).unwrap().run();
        assert_eq!(first, second, "same config ⇒ identical stormed report");
        let single = Fleet::build(FleetConfig {
            workers: 1,
            ..crash_config()
        })
        .unwrap()
        .run();
        assert_eq!(first.checksum, single.checksum);
        assert_eq!(
            first.recovery, single.recovery,
            "recovery digest is worker-invariant"
        );
    }

    #[test]
    fn different_seed_changes_the_checksum() {
        let a = Fleet::build(small_config()).unwrap().run();
        let b = Fleet::build(FleetConfig {
            seed: 12,
            ..small_config()
        })
        .unwrap()
        .run();
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn latency_buckets_quantiles_are_monotone() {
        let mut buckets = LatencyBuckets::default();
        for ms in [0, 1, 2, 3, 60, 60, 60, 120, 500, 4000] {
            buckets.record(ms);
        }
        let p50 = buckets.quantile_ms(0.50);
        let p95 = buckets.quantile_ms(0.95);
        let p99 = buckets.quantile_ms(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert_eq!(LatencyBuckets::default().quantile_ms(0.5), 0);
    }

    #[test]
    fn mixed_platforms_are_all_present() {
        let fleet = Fleet::build(small_config()).unwrap();
        let ids: Vec<String> = (0..3)
            .map(|i| {
                fleet
                    .registry()
                    .runtime(i)
                    .unwrap()
                    .platform_id()
                    .id()
                    .to_owned()
            })
            .collect();
        assert_eq!(ids.len(), 3);
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
    }
}
