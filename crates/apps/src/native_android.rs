//! The **native Android** variant of the workforce app — the paper's
//! Fig. 2(a), faithfully verbose.
//!
//! Everything the proxy hides is in the open here: the
//! `PROXIMITY_ALERT` action constant, a hand-written
//! `ProximityIntentReceiver`, receiver registration, system-service
//! lookup inside the callback, and Android-specific exception handling.
//! Business logic is scattered between the activity and the receiver —
//! exactly the complexity §5 scores against.

use std::sync::Arc;

use mobivine_android::activity::Activity;
use mobivine_android::context::{service_names, Context, SystemService};
use mobivine_android::http::HttpUriRequest;
use mobivine_android::intent::{Intent, IntentFilter, IntentReceiver};
use mobivine_android::location::KEY_PROXIMITY_ENTERING;

use crate::logic::AppEvents;
use crate::model::{ActivityEntry, AgentConfig, Task};

/// The intent action used for proximity alerts (Fig. 2(a) declares the
/// same constant).
pub const PROXIMITY_ALERT: &str = "com.ibm.proxies.android.intent.action.PROXIMITY_ALERT";

/// The Android-native workforce activity.
pub struct NativeAndroidApp {
    config: AgentConfig,
    events: Arc<AppEvents>,
    tasks: Vec<Task>,
}

impl NativeAndroidApp {
    /// Creates the activity for `config`.
    pub fn new(config: AgentConfig, events: Arc<AppEvents>) -> Self {
        Self {
            config,
            events,
            tasks: Vec::new(),
        }
    }

    /// The tasks fetched during `onCreate`.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Quick communication with the supervisor: dial through the phone
    /// service, falling back to an SMS when the call cannot be placed.
    pub fn contact_supervisor(&self, ctx: &Context, note: &str) {
        let phone = match ctx.get_system_service(service_names::PHONE_SERVICE) {
            Ok(SystemService::Phone(phone)) => Some(phone),
            _ => None,
        };
        if let Some(phone) = phone {
            match phone.call(&self.config.supervisor_msisdn) {
                Ok(_id) => {
                    self.events.record("supervisor-contact:call");
                    return;
                }
                Err(_e) => {
                    // Handle Android specific exception
                    self.events.record("supervisor-contact:call-failed");
                }
            }
        }
        if let Ok(SystemService::Sms(sms)) = ctx.get_system_service(service_names::SMS_SERVICE) {
            let _ = sms.send_text_message(&self.config.supervisor_msisdn, None, note, None);
            self.events.record("supervisor-contact:sms");
        }
    }

    fn fetch_tasks(&mut self, ctx: &Context) {
        let url = format!(
            "http://{}/tasks?agent={}",
            self.config.server_host, self.config.agent_id
        );
        let request = match HttpUriRequest::get(&url) {
            Ok(request) => request,
            Err(_e) => {
                // Handle Android specific exception
                return;
            }
        };
        match ctx.http_client().execute(&request) {
            Ok(response) => {
                self.tasks = serde_json::from_slice(&response.body).unwrap_or_default();
                self.events
                    .record(format!("tasks-fetched:{}", self.tasks.len()));
            }
            Err(_e) => {
                // Handle Android specific exception
            }
        }
    }
}

/// The hand-written receiver of Fig. 2(a): adapts broadcast intents to
/// business logic, re-fetching the current location from the
/// `LocationManager` system service.
struct ProximityIntentReceiver {
    config: AgentConfig,
    events: Arc<AppEvents>,
    task: Task,
    action: String,
}

impl IntentReceiver for ProximityIntentReceiver {
    fn on_receive_intent(&self, ctxt: &Context, intent: &Intent) {
        if intent.action() != self.action {
            return;
        }
        let entering = intent.get_boolean_extra(KEY_PROXIMITY_ENTERING, false);
        let location_manager = match ctxt.get_system_service(service_names::LOCATION_SERVICE) {
            Ok(SystemService::Location(lm)) => lm,
            _ => return,
        };
        let location = location_manager.get_current_location("gps");
        let at_ms = location.map(|l| l.time()).unwrap_or(0);
        if entering {
            // business logic for handling proximity events (enter)
            self.events.record(format!("arrived:site-{}", self.task.id));
            if let Ok(SystemService::Sms(sms)) = ctxt.get_system_service(service_names::SMS_SERVICE)
            {
                let _ = sms.send_text_message(
                    &self.config.supervisor_msisdn,
                    None,
                    &format!(
                        "Agent {} arrived at site {} ({})",
                        self.config.agent_id, self.task.id, self.task.description
                    ),
                    None,
                );
                self.events
                    .record(format!("sms:arrival-site-{}", self.task.id));
            }
            post_activity(
                ctxt,
                &self.config,
                &self.events,
                at_ms,
                format!("arrived site {}", self.task.id),
            );
        } else {
            // business logic for handling proximity events (exit)
            self.events
                .record(format!("departed:site-{}", self.task.id));
            post_activity(
                ctxt,
                &self.config,
                &self.events,
                at_ms,
                format!("left site {}", self.task.id),
            );
            let body = serde_json::json!({
                "agent_id": self.config.agent_id,
                "task_id": self.task.id,
            })
            .to_string();
            if let Ok(request) = HttpUriRequest::post(
                &format!("http://{}/task-complete", self.config.server_host),
                body,
            ) {
                let _ = ctxt.http_client().execute(&request);
                self.events
                    .record(format!("task-complete:site-{}", self.task.id));
            }
        }
    }
}

fn post_activity(
    ctx: &Context,
    config: &AgentConfig,
    events: &Arc<AppEvents>,
    at_ms: u64,
    event: String,
) {
    let entry = ActivityEntry {
        agent_id: config.agent_id,
        at_ms,
        event,
    };
    let Ok(body) = serde_json::to_vec(&entry) else {
        events.record("activity-log-failed:serialize");
        return;
    };
    if let Ok(request) =
        HttpUriRequest::post(&format!("http://{}/activity-log", config.server_host), body)
    {
        let _ = ctx.http_client().execute(&request);
        events.record("activity-logged");
    }
}

impl Activity for NativeAndroidApp {
    fn on_create(&mut self, ctx: &Context) {
        self.fetch_tasks(ctx);
        for task in self.tasks.clone() {
            // registering for proximity events — the full Fig. 2(a)
            // ceremony: action constant, receiver, filter, intent,
            // manager lookup, platform-specific exception handling.
            let action = format!("{PROXIMITY_ALERT}.{}", task.id);
            let receiver = Arc::new(ProximityIntentReceiver {
                config: self.config.clone(),
                events: Arc::clone(&self.events),
                task: task.clone(),
                action: action.clone(),
            });
            ctx.register_receiver(receiver, IntentFilter::new(&action));
            let location_manager = match ctx.get_system_service(service_names::LOCATION_SERVICE) {
                Ok(SystemService::Location(lm)) => lm,
                _ => continue,
            };
            let intent = Intent::new(&action);
            match location_manager.add_proximity_alert(
                task.latitude,
                task.longitude,
                task.radius_m as f32,
                -1,
                intent,
            ) {
                Ok(_registration) => {}
                Err(_e) => {
                    // Handle Android specific exception
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use mobivine_android::activity::ActivityHost;
    use mobivine_android::{AndroidPlatform, SdkVersion};

    #[test]
    fn native_android_app_full_scenario() {
        let scenario = Scenario::two_site_patrol(1);
        let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
        let events = AppEvents::new();
        let app = NativeAndroidApp::new(scenario.config.clone(), Arc::clone(&events));
        let mut host = ActivityHost::new(app, platform.new_context());
        host.launch().unwrap();
        assert_eq!(host.activity().tasks().len(), 2);
        scenario.device.advance_ms(scenario.patrol_duration_ms());
        // Both sites visited: arrivals, SMSes, departures, completions.
        assert_eq!(events.count_prefix("arrived:"), 2);
        assert_eq!(events.count_prefix("sms:arrival"), 2);
        assert_eq!(events.count_prefix("departed:"), 2);
        assert_eq!(events.count_prefix("task-complete:"), 2);
        // Server saw the activity.
        assert_eq!(scenario.server.activity_log().len(), 4);
        assert_eq!(
            scenario
                .server
                .completed_tasks(scenario.config.agent_id)
                .len(),
            2
        );
        // Supervisor got the arrival messages.
        scenario.device.advance_ms(1_000);
        assert_eq!(
            scenario
                .device
                .smsc()
                .inbox(&scenario.config.supervisor_msisdn)
                .len(),
            2
        );
    }

    #[test]
    fn contact_supervisor_calls_then_falls_back() {
        let scenario = Scenario::two_site_patrol(2);
        let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
        let events = AppEvents::new();
        let app = NativeAndroidApp::new(scenario.config.clone(), Arc::clone(&events));
        let ctx = platform.new_context();
        app.contact_supervisor(&ctx, "need parts");
        assert_eq!(events.count_prefix("supervisor-contact:call"), 1);
    }
}
