//! Call switch simulator.
//!
//! Models circuit-switched voice calls: dialing, ringing, answer, hold,
//! hang-up, and failure outcomes (busy, unreachable, no answer). The
//! Android platform exposes this through its `IPhone`-style interface; S60
//! does not expose call control at all — exactly the asymmetry the paper
//! notes ("Call proxy could not be created ... because the core
//! functionality was not exposed on the S60 platform").

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::EventQueue;

/// Identifier of a call leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallId(u64);

impl CallId {
    /// The raw numeric id (used by proxies that expose ids uniformly
    /// across platforms as plain integers).
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Reconstructs a call id from its raw value (proxies hand plain
    /// integers back to the platform layer).
    pub fn from_value(value: u64) -> Self {
        CallId(value)
    }
}

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call-{}", self.0)
    }
}

/// Reachability profile of a callee in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CalleeProfile {
    /// Answers after the switch's answer delay.
    #[default]
    Answers,
    /// Line is busy; the call fails immediately after setup.
    Busy,
    /// Phone is off / out of coverage.
    Unreachable,
    /// Rings until the no-answer timeout, then fails.
    NoAnswer,
}

/// State of a call leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallState {
    /// Call setup in progress.
    Dialing,
    /// Remote end is ringing.
    Ringing,
    /// Two-way audio established.
    Active,
    /// Locally held.
    Held,
    /// Terminated, with the reason it ended.
    Disconnected(DisconnectReason),
}

/// Why a call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DisconnectReason {
    /// Local hang-up.
    LocalHangup,
    /// Callee was busy.
    Busy,
    /// Callee unreachable.
    Unreachable,
    /// Callee never answered.
    NoAnswer,
}

/// Callback observing call state transitions.
pub type CallListenerFn = Box<dyn Fn(CallId, CallState) + Send>;

struct CallRecord {
    callee: String,
    state: CallState,
}

struct SwitchState {
    next_id: u64,
    setup_latency_ms: u64,
    answer_delay_ms: u64,
    no_answer_timeout_ms: u64,
    profiles: HashMap<String, CalleeProfile>,
    calls: HashMap<CallId, CallRecord>,
    listeners: Vec<CallListenerFn>,
}

/// The simulated circuit switch.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobivine_device::call::{CallSwitch, CallState};
/// use mobivine_device::event::EventQueue;
///
/// let events = Arc::new(EventQueue::new());
/// let switch = CallSwitch::new(Arc::clone(&events));
/// let id = switch.dial("+911234", 0);
/// events.run_until(10_000);
/// assert_eq!(switch.state(id), Some(CallState::Active));
/// ```
pub struct CallSwitch {
    events: Arc<EventQueue>,
    state: Arc<Mutex<SwitchState>>,
}

impl fmt::Debug for CallSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("CallSwitch")
            .field("active_calls", &state.calls.len())
            .finish()
    }
}

impl CallSwitch {
    /// Creates a switch pumping transitions through `events`.
    pub fn new(events: Arc<EventQueue>) -> Self {
        Self {
            events,
            state: Arc::new(Mutex::new(SwitchState {
                next_id: 1,
                setup_latency_ms: 300,
                answer_delay_ms: 2_000,
                no_answer_timeout_ms: 30_000,
                profiles: HashMap::new(),
                calls: HashMap::new(),
                listeners: Vec::new(),
            })),
        }
    }

    /// Sets the reachability profile for `callee` (default:
    /// [`CalleeProfile::Answers`]).
    pub fn set_callee_profile(&self, callee: &str, profile: CalleeProfile) {
        self.state
            .lock()
            .profiles
            .insert(callee.to_owned(), profile);
    }

    /// Sets call-setup latency (dial → ringing), default 300 ms.
    pub fn set_setup_latency_ms(&self, ms: u64) {
        self.state.lock().setup_latency_ms = ms;
    }

    /// Sets answer delay (ringing → active), default 2000 ms.
    pub fn set_answer_delay_ms(&self, ms: u64) {
        self.state.lock().answer_delay_ms = ms;
    }

    /// Sets the ringing timeout for no-answer callees, default 30 s.
    pub fn set_no_answer_timeout_ms(&self, ms: u64) {
        self.state.lock().no_answer_timeout_ms = ms;
    }

    /// Registers a listener invoked on every state transition of every
    /// call.
    pub fn add_listener<F>(&self, listener: F)
    where
        F: Fn(CallId, CallState) + Send + 'static,
    {
        self.state.lock().listeners.push(Box::new(listener));
    }

    /// Current state of a call, if it exists.
    pub fn state(&self, id: CallId) -> Option<CallState> {
        self.state.lock().calls.get(&id).map(|c| c.state)
    }

    /// Callee address of a call, if it exists.
    pub fn callee(&self, id: CallId) -> Option<String> {
        self.state.lock().calls.get(&id).map(|c| c.callee.clone())
    }

    /// Places a call to `callee` at virtual time `now_ms`.
    ///
    /// The call progresses asynchronously as the event queue is pumped:
    /// `Dialing` → `Ringing` → (`Active` | `Disconnected`).
    pub fn dial(&self, callee: &str, now_ms: u64) -> CallId {
        let (id, profile, setup, answer, timeout) = {
            let mut state = self.state.lock();
            let id = CallId(state.next_id);
            state.next_id += 1;
            state.calls.insert(
                id,
                CallRecord {
                    callee: callee.to_owned(),
                    state: CallState::Dialing,
                },
            );
            let profile = state.profiles.get(callee).copied().unwrap_or_default();
            (
                id,
                profile,
                state.setup_latency_ms,
                state.answer_delay_ms,
                state.no_answer_timeout_ms,
            )
        };
        let shared = Arc::clone(&self.state);
        let events = Arc::clone(&self.events);
        self.events
            .schedule_at(now_ms + setup, "call-setup", move |at| match profile {
                CalleeProfile::Busy => {
                    transition(&shared, id, CallState::Disconnected(DisconnectReason::Busy));
                }
                CalleeProfile::Unreachable => {
                    transition(
                        &shared,
                        id,
                        CallState::Disconnected(DisconnectReason::Unreachable),
                    );
                }
                CalleeProfile::Answers => {
                    transition(&shared, id, CallState::Ringing);
                    let shared2 = Arc::clone(&shared);
                    events.schedule_at(at + answer, "call-answer", move |_| {
                        transition_if(&shared2, id, CallState::Ringing, CallState::Active);
                    });
                }
                CalleeProfile::NoAnswer => {
                    transition(&shared, id, CallState::Ringing);
                    let shared2 = Arc::clone(&shared);
                    events.schedule_at(at + timeout, "call-timeout", move |_| {
                        transition_if(
                            &shared2,
                            id,
                            CallState::Ringing,
                            CallState::Disconnected(DisconnectReason::NoAnswer),
                        );
                    });
                }
            });
        id
    }

    /// Places the call on hold.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the call does not exist or is not `Active`.
    pub fn hold(&self, id: CallId) -> Result<(), CallControlError> {
        self.control(id, CallState::Active, CallState::Held)
    }

    /// Resumes a held call.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the call does not exist or is not `Held`.
    pub fn resume(&self, id: CallId) -> Result<(), CallControlError> {
        self.control(id, CallState::Held, CallState::Active)
    }

    /// Hangs up a call in any non-terminal state.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the call does not exist or is already
    /// disconnected.
    pub fn hangup(&self, id: CallId) -> Result<(), CallControlError> {
        let current = self.state(id).ok_or(CallControlError::UnknownCall)?;
        if matches!(current, CallState::Disconnected(_)) {
            return Err(CallControlError::InvalidState(current));
        }
        transition(
            &self.state,
            id,
            CallState::Disconnected(DisconnectReason::LocalHangup),
        );
        Ok(())
    }

    fn control(
        &self,
        id: CallId,
        expected: CallState,
        next: CallState,
    ) -> Result<(), CallControlError> {
        let current = self.state(id).ok_or(CallControlError::UnknownCall)?;
        if current != expected {
            return Err(CallControlError::InvalidState(current));
        }
        transition(&self.state, id, next);
        Ok(())
    }
}

/// Error returned by call-control operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallControlError {
    /// No call with that id exists.
    UnknownCall,
    /// The call is not in a state that permits the operation.
    InvalidState(CallState),
}

impl fmt::Display for CallControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallControlError::UnknownCall => write!(f, "unknown call id"),
            CallControlError::InvalidState(s) => {
                write!(f, "operation invalid in call state {s:?}")
            }
        }
    }
}

impl std::error::Error for CallControlError {}

fn transition(shared: &Arc<Mutex<SwitchState>>, id: CallId, next: CallState) {
    let listeners_snapshot: Vec<(CallId, CallState)>;
    {
        let mut state = shared.lock();
        if let Some(record) = state.calls.get_mut(&id) {
            record.state = next;
            listeners_snapshot = vec![(id, next)];
        } else {
            return;
        }
        // Notify outside the lock.
        let listeners = std::mem::take(&mut state.listeners);
        drop(state);
        for l in &listeners {
            for &(id, s) in &listeners_snapshot {
                l(id, s);
            }
        }
        shared.lock().listeners = listeners;
    }
}

fn transition_if(
    shared: &Arc<Mutex<SwitchState>>,
    id: CallId,
    expected: CallState,
    next: CallState,
) {
    let should = {
        let state = shared.lock();
        state.calls.get(&id).map(|c| c.state) == Some(expected)
    };
    if should {
        transition(shared, id, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    fn switch() -> (Arc<EventQueue>, CallSwitch) {
        let events = Arc::new(EventQueue::new());
        let switch = CallSwitch::new(Arc::clone(&events));
        (events, switch)
    }

    #[test]
    fn successful_call_progresses_to_active() {
        let (events, switch) = switch();
        let id = switch.dial("+1", 0);
        assert_eq!(switch.state(id), Some(CallState::Dialing));
        events.run_until(300);
        assert_eq!(switch.state(id), Some(CallState::Ringing));
        events.run_until(2_300);
        assert_eq!(switch.state(id), Some(CallState::Active));
    }

    #[test]
    fn busy_callee_disconnects_with_busy() {
        let (events, switch) = switch();
        switch.set_callee_profile("+busy", CalleeProfile::Busy);
        let id = switch.dial("+busy", 0);
        events.run_until(10_000);
        assert_eq!(
            switch.state(id),
            Some(CallState::Disconnected(DisconnectReason::Busy))
        );
    }

    #[test]
    fn unreachable_callee_disconnects_with_unreachable() {
        let (events, switch) = switch();
        switch.set_callee_profile("+off", CalleeProfile::Unreachable);
        let id = switch.dial("+off", 0);
        events.run_until(10_000);
        assert_eq!(
            switch.state(id),
            Some(CallState::Disconnected(DisconnectReason::Unreachable))
        );
    }

    #[test]
    fn no_answer_times_out() {
        let (events, switch) = switch();
        switch.set_callee_profile("+ghost", CalleeProfile::NoAnswer);
        let id = switch.dial("+ghost", 0);
        events.run_until(300 + 29_999);
        assert_eq!(switch.state(id), Some(CallState::Ringing));
        events.run_until(300 + 30_000);
        assert_eq!(
            switch.state(id),
            Some(CallState::Disconnected(DisconnectReason::NoAnswer))
        );
    }

    #[test]
    fn hold_and_resume() {
        let (events, switch) = switch();
        let id = switch.dial("+1", 0);
        events.run_until(5_000);
        switch.hold(id).unwrap();
        assert_eq!(switch.state(id), Some(CallState::Held));
        switch.resume(id).unwrap();
        assert_eq!(switch.state(id), Some(CallState::Active));
    }

    #[test]
    fn hold_requires_active() {
        let (_events, switch) = switch();
        let id = switch.dial("+1", 0);
        assert_eq!(
            switch.hold(id),
            Err(CallControlError::InvalidState(CallState::Dialing))
        );
    }

    #[test]
    fn hangup_while_ringing_cancels_answer() {
        let (events, switch) = switch();
        let id = switch.dial("+1", 0);
        events.run_until(300);
        switch.hangup(id).unwrap();
        events.run_until(60_000);
        assert_eq!(
            switch.state(id),
            Some(CallState::Disconnected(DisconnectReason::LocalHangup))
        );
    }

    #[test]
    fn hangup_twice_errors() {
        let (events, switch) = switch();
        let id = switch.dial("+1", 0);
        events.run_until(5_000);
        switch.hangup(id).unwrap();
        assert!(switch.hangup(id).is_err());
    }

    #[test]
    fn unknown_call_errors() {
        let (_events, switch) = switch();
        let bogus = CallId(999);
        assert_eq!(switch.hangup(bogus), Err(CallControlError::UnknownCall));
        assert_eq!(switch.state(bogus), None);
    }

    #[test]
    fn listener_sees_transitions_in_order() {
        let (events, switch) = switch();
        let log = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        switch.add_listener(move |_, s| sink.lock().unwrap().push(s));
        let _id = switch.dial("+1", 0);
        events.run_until(10_000);
        let log = log.lock().unwrap();
        assert_eq!(log.as_slice(), &[CallState::Ringing, CallState::Active]);
    }

    #[test]
    fn callee_recorded() {
        let (_events, switch) = switch();
        let id = switch.dial("+42", 0);
        assert_eq!(switch.callee(id).as_deref(), Some("+42"));
    }
}
