#![warn(missing_docs)]
//! Simulated mobile handset substrate for the MobiVine reproduction.
//!
//! The MobiVine paper (MIDDLEWARE 2009) evaluates its de-fragmentation
//! middleware on real handsets (Android emulator, Nokia S60 SDK, Android
//! WebView). This crate replaces the physical handset with a deterministic
//! simulator: a virtual clock, an event scheduler, a GPS engine driven by
//! movement models, an SMSC (store-and-forward message center), a call
//! switch, a simulated HTTP network with in-process servers, and power
//! accounting.
//!
//! Every platform crate (`mobivine-android`, `mobivine-s60`,
//! `mobivine-webview`) is built on top of a shared [`Device`], so the
//! *native* interface conventions each platform exposes — the heterogeneity
//! MobiVine absorbs — sit on identical underlying behaviour.
//!
//! # Example
//!
//! ```
//! use mobivine_device::{Device, geo::GeoPoint, movement::MovementModel};
//!
//! let device = Device::builder()
//!     .seed(42)
//!     .position(GeoPoint::new(28.5355, 77.3910))
//!     .movement(MovementModel::stationary())
//!     .build();
//! device.clock().advance_ms(1_000);
//! assert_eq!(device.clock().now_ms(), 1_000);
//! ```

pub mod calendar;
pub mod call;
pub mod clock;
pub mod cohort;
pub mod contacts;
pub mod device;
pub mod event;
pub mod fault;
pub mod geo;
pub mod gps;
pub mod latency;
pub mod movement;
pub mod net;
pub mod power;
pub mod radio;
pub mod sms;

pub use clock::SimClock;
pub use cohort::{Cohort, CohortPartition};
pub use device::{Device, DeviceBuilder};
pub use fault::FaultPlan;
pub use geo::GeoPoint;
