//! Simulated GPS engine.
//!
//! Produces position fixes by sampling the device's [`MovementModel`] at
//! the current virtual time and perturbing the result with a seeded,
//! time-keyed noise model. Exposes the availability states that both
//! platform stacks surface (Android provider enabled/disabled, S60
//! `LocationProvider` AVAILABLE / TEMPORARILY_UNAVAILABLE /
//! OUT_OF_SERVICE).

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mobivine_telemetry::span::{ambient, Plane};
use mobivine_telemetry::{Counter, Labels, MetricsRegistry};

use crate::clock::SimClock;
use crate::geo::GeoPoint;
use crate::movement::MovementModel;

/// Availability of the positioning hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GpsAvailability {
    /// Fixes are produced normally.
    #[default]
    Available,
    /// Signal temporarily lost (urban canyon, indoors); fix requests fail
    /// but the engine may recover.
    TemporarilyUnavailable,
    /// Positioning hardware off or absent; fix requests fail permanently
    /// until re-enabled.
    OutOfService,
}

/// A position fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    /// Estimated position (noise already applied).
    pub point: GeoPoint,
    /// 1-sigma horizontal accuracy in metres.
    pub accuracy_m: f64,
    /// Virtual time the fix was produced.
    pub timestamp_ms: u64,
    /// Ground speed estimate in metres/second.
    pub speed_mps: f64,
    /// Course over ground, degrees from true north.
    pub bearing_deg: f64,
}

/// Error produced when no fix can be obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpsError {
    /// The engine is temporarily unable to produce a fix.
    TemporarilyUnavailable,
    /// The positioning hardware is out of service.
    OutOfService,
}

impl fmt::Display for GpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpsError::TemporarilyUnavailable => write!(f, "gps temporarily unavailable"),
            GpsError::OutOfService => write!(f, "gps out of service"),
        }
    }
}

impl std::error::Error for GpsError {}

#[derive(Debug)]
struct GpsState {
    origin: GeoPoint,
    movement: MovementModel,
    availability: GpsAvailability,
    accuracy_m: f64,
    noise_enabled: bool,
    seed: u64,
    ttff_ms: u64,
    started_at_ms: Option<u64>,
}

struct GpsMetrics {
    fixes: Counter,
    errors: Counter,
}

/// The simulated GPS receiver.
///
/// # Example
///
/// ```
/// use mobivine_device::clock::SimClock;
/// use mobivine_device::geo::GeoPoint;
/// use mobivine_device::gps::GpsEngine;
/// use mobivine_device::movement::MovementModel;
///
/// let clock = SimClock::new();
/// let engine = GpsEngine::new(
///     clock.clone(),
///     GeoPoint::new(28.5, 77.3),
///     MovementModel::stationary(),
///     42,
/// );
/// let fix = engine.current_fix().unwrap();
/// assert!(fix.point.distance_m(&GeoPoint::new(28.5, 77.3)) <= 3.0 * fix.accuracy_m);
/// ```
pub struct GpsEngine {
    clock: SimClock,
    state: Mutex<GpsState>,
    metrics: Mutex<Option<GpsMetrics>>,
}

impl fmt::Debug for GpsEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("GpsEngine")
            .field("availability", &state.availability)
            .field("accuracy_m", &state.accuracy_m)
            .finish()
    }
}

impl GpsEngine {
    /// Creates an engine at `origin` following `movement`, with noise
    /// keyed off `seed`.
    pub fn new(clock: SimClock, origin: GeoPoint, movement: MovementModel, seed: u64) -> Self {
        Self {
            clock,
            state: Mutex::new(GpsState {
                origin,
                movement,
                availability: GpsAvailability::Available,
                accuracy_m: 5.0,
                noise_enabled: true,
                seed,
                ttff_ms: 0,
                started_at_ms: None,
            }),
            metrics: Mutex::new(None),
        }
    }

    /// Connects the engine to a metrics registry: fixes and fix errors
    /// are counted under `device_gps_fixes_total` /
    /// `device_gps_errors_total`. Called by the device builder; engines
    /// constructed standalone publish nothing.
    pub fn bind_metrics(&self, registry: Arc<MetricsRegistry>) {
        *self.metrics.lock() = Some(GpsMetrics {
            fixes: registry.counter("device_gps_fixes_total", &Labels::empty()),
            errors: registry.counter("device_gps_errors_total", &Labels::empty()),
        });
    }

    /// Sets the 1-sigma horizontal accuracy used by the noise model
    /// (default 5 m).
    pub fn set_accuracy_m(&self, accuracy_m: f64) {
        self.state.lock().accuracy_m = accuracy_m.max(0.0);
    }

    /// Enables or disables fix noise. With noise disabled, fixes report
    /// the true position from the movement model (used by deterministic
    /// proximity tests).
    pub fn set_noise_enabled(&self, enabled: bool) {
        self.state.lock().noise_enabled = enabled;
    }

    /// Sets the time-to-first-fix: fix requests within `ttff_ms` of the
    /// first request fail with [`GpsError::TemporarilyUnavailable`],
    /// mirroring a cold-started receiver.
    pub fn set_time_to_first_fix_ms(&self, ttff_ms: u64) {
        let mut state = self.state.lock();
        state.ttff_ms = ttff_ms;
        state.started_at_ms = None;
    }

    /// Changes the availability state.
    pub fn set_availability(&self, availability: GpsAvailability) {
        self.state.lock().availability = availability;
    }

    /// Current availability state.
    pub fn availability(&self) -> GpsAvailability {
        self.state.lock().availability
    }

    /// Replaces the movement model (e.g. when a simulated agent is given a
    /// new route).
    pub fn set_movement(&self, movement: MovementModel) {
        self.state.lock().movement = movement;
    }

    /// The *true* (noise-free) position at the current virtual time.
    ///
    /// Always succeeds — the device is somewhere even when the receiver
    /// has no signal. Tests use this as ground truth.
    pub fn true_position(&self) -> GeoPoint {
        let mut state = self.state.lock();
        let origin = state.origin;
        state.movement.position_at(self.clock.now_ms(), origin)
    }

    /// Produces a position fix at the current virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`GpsError::OutOfService`] or
    /// [`GpsError::TemporarilyUnavailable`] depending on
    /// [`GpsAvailability`], and `TemporarilyUnavailable` while within the
    /// configured time-to-first-fix window.
    pub fn current_fix(&self) -> Result<Fix, GpsError> {
        let now = self.clock.now_ms();
        let span = ambient::child("device:gps.currentFix", Plane::Device, now);
        let result = self.fix_at(now);
        if let Some(metrics) = self.metrics.lock().as_ref() {
            match &result {
                Ok(_) => metrics.fixes.inc(),
                Err(_) => metrics.errors.inc(),
            }
        }
        if let Some(mut span) = span {
            if let Err(e) = &result {
                span.attr("error", e.to_string());
            }
            span.end(self.clock.now_ms());
        }
        result
    }

    fn fix_at(&self, now: u64) -> Result<Fix, GpsError> {
        let mut state = self.state.lock();
        match state.availability {
            GpsAvailability::OutOfService => return Err(GpsError::OutOfService),
            GpsAvailability::TemporarilyUnavailable => {
                return Err(GpsError::TemporarilyUnavailable)
            }
            GpsAvailability::Available => {}
        }
        if state.ttff_ms > 0 {
            let started = *state.started_at_ms.get_or_insert(now);
            if now < started + state.ttff_ms {
                return Err(GpsError::TemporarilyUnavailable);
            }
        }
        let origin = state.origin;
        let truth = state.movement.position_at(now, origin);
        let point = if state.noise_enabled && state.accuracy_m > 0.0 {
            // Key the RNG by (seed, time) so repeated queries at the same
            // virtual time return identical fixes.
            let mut rng = StdRng::seed_from_u64(state.seed ^ now.rotate_left(17));
            let bearing: f64 = rng.gen::<f64>() * 360.0;
            // Approximate Rayleigh radial error via two uniform draws.
            let r: f64 = state.accuracy_m * (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0;
            truth.destination(bearing, r)
        } else {
            truth
        };
        // Estimate speed/bearing from a short look-behind.
        let (speed_mps, bearing_deg) = if now >= 1000 {
            let before = state.movement.position_at(now - 1000, origin);
            let d = before.distance_m(&truth);
            (d, before.bearing_deg(&truth))
        } else {
            (0.0, 0.0)
        };
        Ok(Fix {
            point,
            accuracy_m: state.accuracy_m,
            timestamp_ms: now,
            speed_mps,
            bearing_deg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (SimClock, GpsEngine) {
        let clock = SimClock::new();
        let engine = GpsEngine::new(
            clock.clone(),
            GeoPoint::new(28.5355, 77.3910),
            MovementModel::stationary(),
            42,
        );
        (clock, engine)
    }

    #[test]
    fn fix_is_near_truth() {
        let (_clock, engine) = engine();
        engine.set_accuracy_m(5.0);
        let fix = engine.current_fix().unwrap();
        let truth = engine.true_position();
        assert!(truth.distance_m(&fix.point) <= 5.0 * 3.0);
    }

    #[test]
    fn noise_free_fix_equals_truth() {
        let (_clock, engine) = engine();
        engine.set_noise_enabled(false);
        let fix = engine.current_fix().unwrap();
        assert_eq!(fix.point, engine.true_position());
    }

    #[test]
    fn repeated_fix_at_same_time_is_identical() {
        let (_clock, engine) = engine();
        let a = engine.current_fix().unwrap();
        let b = engine.current_fix().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fix_changes_over_time_with_movement() {
        let clock = SimClock::new();
        let engine = GpsEngine::new(
            clock.clone(),
            GeoPoint::new(28.5, 77.3),
            MovementModel::linear(GeoPoint::new(28.5, 77.3), 0.0, 10.0),
            1,
        );
        engine.set_noise_enabled(false);
        let a = engine.current_fix().unwrap();
        clock.advance_ms(10_000);
        let b = engine.current_fix().unwrap();
        assert!((a.point.distance_m(&b.point) - 100.0).abs() < 0.5);
        assert!((b.speed_mps - 10.0).abs() < 0.2);
    }

    #[test]
    fn out_of_service_fails() {
        let (_clock, engine) = engine();
        engine.set_availability(GpsAvailability::OutOfService);
        assert_eq!(engine.current_fix(), Err(GpsError::OutOfService));
    }

    #[test]
    fn temporarily_unavailable_then_recovers() {
        let (_clock, engine) = engine();
        engine.set_availability(GpsAvailability::TemporarilyUnavailable);
        assert_eq!(engine.current_fix(), Err(GpsError::TemporarilyUnavailable));
        engine.set_availability(GpsAvailability::Available);
        assert!(engine.current_fix().is_ok());
    }

    #[test]
    fn time_to_first_fix_blocks_then_clears() {
        let (clock, engine) = engine();
        engine.set_time_to_first_fix_ms(2_000);
        assert_eq!(engine.current_fix(), Err(GpsError::TemporarilyUnavailable));
        clock.advance_ms(1_999);
        assert!(engine.current_fix().is_err());
        clock.advance_ms(1);
        assert!(engine.current_fix().is_ok());
    }

    #[test]
    fn true_position_ignores_availability() {
        let (_clock, engine) = engine();
        engine.set_availability(GpsAvailability::OutOfService);
        let p = engine.true_position();
        assert!(p.is_valid());
    }

    #[test]
    fn timestamp_matches_clock() {
        let (clock, engine) = engine();
        clock.advance_ms(777);
        assert_eq!(engine.current_fix().unwrap().timestamp_ms, 777);
    }
}
