//! Geodesic primitives: points, distance, bearing, destination.
//!
//! Proximity alerts — the interface the paper uses as its running example —
//! need distance computations between the device's position and a reference
//! coordinate. We use the haversine great-circle formulas on a spherical
//! Earth, which is what mobile location stacks of the paper's era used for
//! proximity radii of a few hundred metres.

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A geographic point: latitude/longitude in degrees, optional altitude in
/// metres.
///
/// # Example
///
/// ```
/// use mobivine_device::geo::GeoPoint;
///
/// let delhi = GeoPoint::new(28.6139, 77.2090);
/// let mumbai = GeoPoint::new(19.0760, 72.8777);
/// let km = delhi.distance_m(&mumbai) / 1000.0;
/// assert!((km - 1150.0).abs() < 50.0, "Delhi-Mumbai is ~1150 km, got {km}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north. Valid range is `[-90, 90]`.
    pub latitude: f64,
    /// Longitude in degrees, positive east. Valid range is `[-180, 180]`.
    pub longitude: f64,
    /// Altitude above the reference ellipsoid, in metres.
    pub altitude: f64,
}

impl GeoPoint {
    /// Creates a point at sea level.
    pub fn new(latitude: f64, longitude: f64) -> Self {
        Self {
            latitude,
            longitude,
            altitude: 0.0,
        }
    }

    /// Creates a point with an explicit altitude in metres.
    pub fn with_altitude(latitude: f64, longitude: f64, altitude: f64) -> Self {
        Self {
            latitude,
            longitude,
            altitude,
        }
    }

    /// Returns `true` if latitude and longitude are within their valid
    /// ranges and finite.
    pub fn is_valid(&self) -> bool {
        self.latitude.is_finite()
            && self.longitude.is_finite()
            && self.altitude.is_finite()
            && (-90.0..=90.0).contains(&self.latitude)
            && (-180.0..=180.0).contains(&self.longitude)
    }

    /// Great-circle (haversine) distance to `other`, in metres. Altitude is
    /// ignored, matching the behaviour of the platform proximity APIs.
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.latitude.to_radians();
        let lat2 = other.latitude.to_radians();
        let dlat = (other.latitude - self.latitude).to_radians();
        let dlon = (other.longitude - self.longitude).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        EARTH_RADIUS_M * c
    }

    /// Initial bearing from `self` toward `other`, in degrees clockwise
    /// from true north, normalized to `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.latitude.to_radians();
        let lat2 = other.latitude.to_radians();
        let dlon = (other.longitude - self.longitude).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let theta = y.atan2(x).to_degrees();
        (theta + 360.0) % 360.0
    }

    /// The point reached by travelling `distance_m` metres from `self`
    /// along the great circle with initial bearing `bearing_deg` (degrees
    /// from north). Altitude is preserved.
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let delta = distance_m / EARTH_RADIUS_M;
        let theta = bearing_deg.to_radians();
        let lat1 = self.latitude.to_radians();
        let lon1 = self.longitude.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        let mut lon_deg = lon2.to_degrees();
        // Normalize longitude into [-180, 180].
        if lon_deg > 180.0 {
            lon_deg -= 360.0;
        } else if lon_deg < -180.0 {
            lon_deg += 360.0;
        }
        GeoPoint {
            latitude: lat2.to_degrees(),
            longitude: lon_deg,
            altitude: self.altitude,
        }
    }

    /// Linear interpolation between `self` and `other` (`t` in `[0, 1]`).
    ///
    /// Good enough for the short legs used by waypoint movement models;
    /// interpolates lat/lon/alt component-wise.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        GeoPoint {
            latitude: self.latitude + (other.latitude - self.latitude) * t,
            longitude: self.longitude + (other.longitude - self.longitude) * t,
            altitude: self.altitude + (other.altitude - self.altitude) * t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(28.6, 77.2);
        assert!(p.distance_m(&p) < 1e-6);
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 0.0);
        let d = a.distance_m(&b);
        assert!(close(d, 111_195.0, 100.0), "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(28.6139, 77.2090);
        let b = GeoPoint::new(19.0760, 72.8777);
        assert!(close(a.distance_m(&b), b.distance_m(&a), 1e-6));
    }

    #[test]
    fn bearing_due_north_is_zero() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 0.0);
        assert!(close(a.bearing_deg(&b), 0.0, 1e-9));
    }

    #[test]
    fn bearing_due_east_is_ninety() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0);
        assert!(close(a.bearing_deg(&b), 90.0, 1e-9));
    }

    #[test]
    fn destination_round_trips_distance() {
        let start = GeoPoint::new(28.5355, 77.3910);
        let dest = start.destination(45.0, 500.0);
        assert!(close(start.distance_m(&dest), 500.0, 0.5));
    }

    #[test]
    fn destination_preserves_altitude() {
        let start = GeoPoint::with_altitude(10.0, 10.0, 222.0);
        assert_eq!(start.destination(10.0, 100.0).altitude, 222.0);
    }

    #[test]
    fn validity_checks_ranges() {
        assert!(GeoPoint::new(90.0, 180.0).is_valid());
        assert!(!GeoPoint::new(90.1, 0.0).is_valid());
        assert!(!GeoPoint::new(0.0, -180.1).is_valid());
        assert!(!GeoPoint::new(f64::NAN, 0.0).is_valid());
    }

    #[test]
    fn lerp_endpoints() {
        let a = GeoPoint::with_altitude(1.0, 2.0, 3.0);
        let b = GeoPoint::with_altitude(5.0, 6.0, 7.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!(close(mid.latitude, 3.0, 1e-12));
        assert!(close(mid.longitude, 4.0, 1e-12));
        assert!(close(mid.altitude, 5.0, 1e-12));
    }

    #[test]
    fn lerp_clamps_t() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(10.0, 10.0);
        assert_eq!(a.lerp(&b, -1.0), a);
        assert_eq!(a.lerp(&b, 2.0), b);
    }
}
