//! Cellular radio coverage.
//!
//! The messaging and telephony stacks depend on the serving cell: out
//! of coverage, submissions fail at the *device* side (before the SMSC
//! or switch ever sees them) — a failure mode field-workforce apps must
//! survive and one more behaviour the platform bindings surface through
//! their own exception types (`IOException`-flavoured on both Android
//! and S60) while the proxies unify it.
//!
//! Default configuration is **full coverage** (no cells configured), so
//! the radio only constrains behaviour when a scenario opts in with
//! [`CellCoverage::add_cell`].

use std::fmt;

use parking_lot::RwLock;

use crate::geo::GeoPoint;

/// Received signal strength, in "bars".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalStrength(pub u8);

impl SignalStrength {
    /// No signal: the device cannot use the radio.
    pub const NONE: SignalStrength = SignalStrength(0);
    /// Full signal.
    pub const FULL: SignalStrength = SignalStrength(4);

    /// Whether the radio can carry traffic.
    pub fn in_coverage(&self) -> bool {
        self.0 > 0
    }
}

impl fmt::Display for SignalStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bar(s)", self.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    center: GeoPoint,
    range_m: f64,
}

/// The coverage map: a set of cells, each serving a circular area.
///
/// With no cells configured the map reports full coverage everywhere
/// (the common case for tests that don't care about the radio).
///
/// # Example
///
/// ```
/// use mobivine_device::geo::GeoPoint;
/// use mobivine_device::radio::CellCoverage;
///
/// let coverage = CellCoverage::new();
/// let tower = GeoPoint::new(28.5355, 77.3910);
/// coverage.add_cell(tower, 2_000.0);
/// assert!(coverage.signal_at(&tower).in_coverage());
/// let remote = tower.destination(0.0, 10_000.0);
/// assert!(!coverage.signal_at(&remote).in_coverage());
/// ```
#[derive(Default)]
pub struct CellCoverage {
    cells: RwLock<Vec<Cell>>,
}

impl fmt::Debug for CellCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellCoverage")
            .field("cells", &self.cells.read().len())
            .finish()
    }
}

impl CellCoverage {
    /// Creates a map with full coverage everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell at `center` serving `range_m` metres. Once any cell
    /// exists, only areas inside some cell have coverage.
    pub fn add_cell(&self, center: GeoPoint, range_m: f64) {
        self.cells.write().push(Cell { center, range_m });
    }

    /// Removes every cell, returning to full coverage everywhere.
    pub fn clear(&self) {
        self.cells.write().clear();
    }

    /// Signal strength at a point: full when unconfigured; otherwise
    /// graded by distance to the best serving cell (4 bars within 50 %
    /// of range, down to 1 bar at the edge, 0 outside).
    pub fn signal_at(&self, point: &GeoPoint) -> SignalStrength {
        let cells = self.cells.read();
        if cells.is_empty() {
            return SignalStrength::FULL;
        }
        let mut best = 0u8;
        for cell in cells.iter() {
            let distance = cell.center.distance_m(point);
            let bars = if distance > cell.range_m {
                0
            } else {
                let fraction = distance / cell.range_m;
                if fraction <= 0.5 {
                    4
                } else if fraction <= 0.7 {
                    3
                } else if fraction <= 0.9 {
                    2
                } else {
                    1
                }
            };
            best = best.max(bars);
        }
        SignalStrength(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOWER: GeoPoint = GeoPoint {
        latitude: 28.5355,
        longitude: 77.3910,
        altitude: 0.0,
    };

    #[test]
    fn unconfigured_map_has_full_coverage() {
        let coverage = CellCoverage::new();
        assert_eq!(
            coverage.signal_at(&GeoPoint::new(0.0, 0.0)),
            SignalStrength::FULL
        );
    }

    #[test]
    fn signal_grades_with_distance() {
        let coverage = CellCoverage::new();
        coverage.add_cell(TOWER, 1_000.0);
        assert_eq!(coverage.signal_at(&TOWER).0, 4);
        assert_eq!(coverage.signal_at(&TOWER.destination(0.0, 400.0)).0, 4);
        assert_eq!(coverage.signal_at(&TOWER.destination(0.0, 600.0)).0, 3);
        assert_eq!(coverage.signal_at(&TOWER.destination(0.0, 800.0)).0, 2);
        assert_eq!(coverage.signal_at(&TOWER.destination(0.0, 950.0)).0, 1);
        assert_eq!(coverage.signal_at(&TOWER.destination(0.0, 1_100.0)).0, 0);
    }

    #[test]
    fn best_of_overlapping_cells_wins() {
        let coverage = CellCoverage::new();
        coverage.add_cell(TOWER, 1_000.0);
        let midpoint = TOWER.destination(90.0, 950.0);
        assert_eq!(coverage.signal_at(&midpoint).0, 1);
        coverage.add_cell(TOWER.destination(90.0, 1_000.0), 1_000.0);
        assert_eq!(coverage.signal_at(&midpoint).0, 4, "closer second cell");
    }

    #[test]
    fn clear_restores_full_coverage() {
        let coverage = CellCoverage::new();
        coverage.add_cell(TOWER, 10.0);
        let far = TOWER.destination(0.0, 99_000.0);
        assert!(!coverage.signal_at(&far).in_coverage());
        coverage.clear();
        assert_eq!(coverage.signal_at(&far), SignalStrength::FULL);
    }

    #[test]
    fn in_coverage_threshold() {
        assert!(!SignalStrength::NONE.in_coverage());
        assert!(SignalStrength(1).in_coverage());
    }
}
