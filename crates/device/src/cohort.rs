//! Clock-coordinated stepping for fleets of simulated devices.
//!
//! A single [`crate::Device`] advances its own virtual clock with
//! [`crate::Device::advance_to`]. A fleet of thousands needs those
//! advances **coordinated**: every device must reach the same virtual
//! instant before the workload inspects cross-device state, and the
//! stepping order must not depend on thread scheduling, or runs stop
//! being reproducible.
//!
//! [`Cohort`] provides that coordination as lockstep **rounds** of a
//! fixed virtual tick. Each round has one target instant
//! (`round × tick_ms`); stepping a round advances every member device to
//! exactly that instant, pumping its event queue on the way. For
//! multi-worker drivers, [`Cohort::partition`] splits the membership
//! into disjoint contiguous slices of cloned device handles — each
//! worker steps only its own slice, so workers never contend on a
//! device, and the round barrier (step every slice to the same target,
//! then proceed) keeps the fleet deterministic regardless of how the
//! workers interleave in real time.

use crate::device::Device;

/// A fixed-tick lockstep scheduler over a set of member devices.
///
/// # Example
///
/// ```
/// use mobivine_device::cohort::Cohort;
/// use mobivine_device::Device;
///
/// let mut cohort = Cohort::with_tick(500);
/// for seed in 0..4 {
///     cohort.join(Device::builder().seed(seed).build());
/// }
/// cohort.step(); // everyone is now at 500ms virtual
/// cohort.step(); // ... and now 1000ms
/// assert_eq!(cohort.now_ms(), 1_000);
/// assert!(cohort.devices().iter().all(|d| d.clock().now_ms() == 1_000));
/// ```
#[derive(Debug)]
pub struct Cohort {
    devices: Vec<Device>,
    tick_ms: u64,
    rounds_done: u64,
}

impl Cohort {
    /// Creates an empty cohort stepping in rounds of `tick_ms` virtual
    /// milliseconds (clamped to at least 1 so rounds always move time).
    pub fn with_tick(tick_ms: u64) -> Self {
        Self {
            devices: Vec::new(),
            tick_ms: tick_ms.max(1),
            rounds_done: 0,
        }
    }

    /// The virtual length of one round.
    pub fn tick_ms(&self) -> u64 {
        self.tick_ms
    }

    /// Completed rounds so far.
    pub fn rounds_done(&self) -> u64 {
        self.rounds_done
    }

    /// The coordinated virtual time every member has reached.
    pub fn now_ms(&self) -> u64 {
        self.rounds_done * self.tick_ms
    }

    /// Adds `device` to the cohort, returning its member index.
    /// Late joiners are caught up to the cohort's current instant so
    /// the lockstep invariant holds from their first round.
    pub fn join(&mut self, device: Device) -> usize {
        device.advance_to(self.now_ms());
        self.devices.push(device);
        self.devices.len() - 1
    }

    /// The member devices, in join order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The number of member devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cohort has no members.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The target instant of round `round` (1-based: round 1 ends at
    /// one tick).
    pub fn target_for(&self, round: u64) -> u64 {
        round * self.tick_ms
    }

    /// Advances every member to the next round boundary, pumping each
    /// device's event queue, and returns the new coordinated instant.
    pub fn step(&mut self) -> u64 {
        self.rounds_done += 1;
        let target = self.now_ms();
        for device in &self.devices {
            device.advance_to(target);
        }
        target
    }

    /// Runs `rounds` lockstep rounds, returning the final instant.
    pub fn run_rounds(&mut self, rounds: u64) -> u64 {
        for _ in 0..rounds {
            self.step();
        }
        self.now_ms()
    }

    /// Splits the membership into `workers` disjoint contiguous
    /// partitions of cloned device handles (device `i` goes to
    /// partition `i * workers / len`, preserving join order). Workers
    /// step their own partition to a common round target with
    /// [`CohortPartition::advance_to`]; because the partitions are
    /// disjoint and each device only ever advances to the shared
    /// barrier instant, the result is identical for any worker
    /// interleaving.
    ///
    /// `workers` is clamped to at least 1; trailing partitions may be
    /// empty when there are more workers than devices.
    pub fn partition(&self, workers: usize) -> Vec<CohortPartition> {
        let workers = workers.max(1);
        let len = self.devices.len();
        let mut partitions = Vec::with_capacity(workers);
        // Balanced contiguous split: worker w owns [w*len/workers,
        // (w+1)*len/workers), sizes differing by at most one.
        for w in 0..workers {
            let start = w * len / workers;
            let end = (w + 1) * len / workers;
            partitions.push(CohortPartition {
                base_index: start,
                devices: self.devices[start..end].to_vec(),
            });
        }
        partitions
    }
}

/// One worker's slice of a [`Cohort`]: cloned handles to a contiguous
/// run of member devices, steppable independently of the other slices.
#[derive(Debug, Clone)]
pub struct CohortPartition {
    base_index: usize,
    devices: Vec<Device>,
}

impl CohortPartition {
    /// The cohort index of this partition's first device.
    pub fn base_index(&self) -> usize {
        self.base_index
    }

    /// The member devices of this slice, in cohort order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The number of devices in this slice.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether this slice holds no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Advances every device in the slice to `target_ms`, pumping event
    /// queues, and returns the total number of events fired. Safe to
    /// call concurrently with other partitions of the same cohort —
    /// membership is disjoint.
    pub fn advance_to(&self, target_ms: u64) -> usize {
        self.devices
            .iter()
            .map(|device| device.advance_to(target_ms))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort_of(n: u64, tick_ms: u64) -> Cohort {
        let mut cohort = Cohort::with_tick(tick_ms);
        for seed in 0..n {
            cohort.join(Device::builder().seed(seed).build());
        }
        cohort
    }

    #[test]
    fn rounds_advance_every_member_in_lockstep() {
        let mut cohort = cohort_of(5, 250);
        assert_eq!(cohort.step(), 250);
        assert_eq!(cohort.run_rounds(3), 1_000);
        assert_eq!(cohort.rounds_done(), 4);
        for device in cohort.devices() {
            assert_eq!(device.clock().now_ms(), 1_000);
        }
    }

    #[test]
    fn zero_tick_is_clamped() {
        let mut cohort = cohort_of(1, 0);
        assert_eq!(cohort.tick_ms(), 1);
        assert_eq!(cohort.step(), 1);
    }

    #[test]
    fn late_joiners_catch_up() {
        let mut cohort = cohort_of(2, 100);
        cohort.run_rounds(3);
        let index = cohort.join(Device::builder().seed(99).build());
        assert_eq!(cohort.devices()[index].clock().now_ms(), 300);
    }

    #[test]
    fn partitions_are_disjoint_contiguous_and_balanced() {
        let cohort = cohort_of(10, 100);
        let partitions = cohort.partition(3);
        assert_eq!(partitions.len(), 3);
        let sizes: Vec<usize> = partitions.iter().map(CohortPartition::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        // Contiguity: each partition starts where the previous ended.
        let mut expected_base = 0;
        for p in &partitions {
            assert_eq!(p.base_index(), expected_base);
            expected_base += p.len();
        }
    }

    #[test]
    fn more_workers_than_devices_leaves_empty_tails() {
        let cohort = cohort_of(2, 100);
        let partitions = cohort.partition(5);
        assert_eq!(partitions.len(), 5);
        let total: usize = partitions.iter().map(CohortPartition::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn partition_stepping_matches_cohort_stepping() {
        let mut lockstep = cohort_of(6, 200);
        let partitioned = cohort_of(6, 200);

        lockstep.run_rounds(2);
        let target = partitioned.target_for(2);
        for p in partitioned.partition(2) {
            p.advance_to(target);
        }
        for (a, b) in lockstep.devices().iter().zip(partitioned.devices()) {
            assert_eq!(a.clock().now_ms(), b.clock().now_ms());
        }
    }

    #[test]
    fn partitions_share_the_underlying_devices() {
        let cohort = cohort_of(2, 100);
        let partitions = cohort.partition(2);
        partitions[1].advance_to(700);
        // The clone in the partition and the original share state.
        assert_eq!(cohort.devices()[1].clock().now_ms(), 700);
        assert_eq!(cohort.devices()[0].clock().now_ms(), 0);
    }
}
