//! The simulated handset: one clock, one event queue, and every
//! subsystem wired to them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mobivine_telemetry::MetricsRegistry;

use crate::calendar::CalendarStore;
use crate::call::CallSwitch;
use crate::clock::SimClock;
use crate::contacts::ContactStore;
use crate::event::EventQueue;
use crate::geo::GeoPoint;
use crate::gps::GpsEngine;
use crate::latency::LatencyModel;
use crate::movement::MovementModel;
use crate::net::SimNetwork;
use crate::power::PowerMeter;
use crate::radio::{CellCoverage, SignalStrength};
use crate::sms::Smsc;

/// A complete simulated handset.
///
/// `Device` is cheap to clone; clones share all state (the handles inside
/// are reference-counted). Platform middleware crates hold a `Device` and
/// expose their native interface styles on top of it.
///
/// # Example
///
/// ```
/// use mobivine_device::{Device, geo::GeoPoint};
///
/// let device = Device::builder()
///     .msisdn("+91-98-AGENT-1")
///     .position(GeoPoint::new(28.5355, 77.3910))
///     .build();
/// device.smsc().register_address(device.msisdn());
/// device.advance_ms(100); // moves time and pumps pending events
/// ```
#[derive(Clone)]
pub struct Device {
    clock: SimClock,
    events: Arc<EventQueue>,
    gps: Arc<GpsEngine>,
    smsc: Arc<Smsc>,
    call_switch: Arc<CallSwitch>,
    network: Arc<SimNetwork>,
    power: Arc<PowerMeter>,
    contacts: Arc<ContactStore>,
    calendar: Arc<CalendarStore>,
    coverage: Arc<CellCoverage>,
    latency: LatencyModel,
    metrics: Arc<MetricsRegistry>,
    fault_epoch: Arc<AtomicU64>,
    msisdn: String,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("msisdn", &self.msisdn)
            .field("now_ms", &self.clock.now_ms())
            .finish()
    }
}

impl Device {
    /// Starts building a device.
    pub fn builder() -> DeviceBuilder {
        DeviceBuilder::new()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The shared event queue.
    pub fn events(&self) -> &Arc<EventQueue> {
        &self.events
    }

    /// The GPS receiver.
    pub fn gps(&self) -> &Arc<GpsEngine> {
        &self.gps
    }

    /// The message center.
    pub fn smsc(&self) -> &Arc<Smsc> {
        &self.smsc
    }

    /// The call switch.
    pub fn call_switch(&self) -> &Arc<CallSwitch> {
        &self.call_switch
    }

    /// The simulated data network.
    pub fn network(&self) -> &Arc<SimNetwork> {
        &self.network
    }

    /// The power ledger.
    pub fn power(&self) -> &Arc<PowerMeter> {
        &self.power
    }

    /// The contact store.
    pub fn contacts(&self) -> &Arc<ContactStore> {
        &self.contacts
    }

    /// The calendar store.
    pub fn calendar(&self) -> &Arc<CalendarStore> {
        &self.calendar
    }

    /// The cellular coverage map (full coverage unless cells are
    /// configured).
    pub fn coverage(&self) -> &Arc<CellCoverage> {
        &self.coverage
    }

    /// Signal strength at the device's current true position.
    pub fn signal_strength(&self) -> SignalStrength {
        self.coverage.signal_at(&self.gps.true_position())
    }

    /// The calibrated native-API latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The device-wide metrics registry. Every subsystem (GPS, SMSC,
    /// network, fault plan) publishes into it, and middleware layers
    /// above share it so one registry exports the whole call path.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The device-wide fault epoch: a monotone counter bumped every
    /// time a [`FaultPlan`](crate::fault::FaultPlan) transition fires.
    /// Read-through caches above the proxy stack compare the epoch they
    /// observed at fill time against the current value, so a fault
    /// transition invalidates every cached answer taken before it.
    pub fn fault_epoch(&self) -> u64 {
        self.fault_epoch.load(Ordering::Acquire)
    }

    /// Records one fault transition (called by the fault plan when a
    /// scheduled transition fires).
    pub fn bump_fault_epoch(&self) {
        self.fault_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// This device's phone number.
    pub fn msisdn(&self) -> &str {
        &self.msisdn
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Advances virtual time by `delta_ms` and pumps every event that
    /// becomes due, including events scheduled by fired callbacks.
    /// Returns the number of events that fired.
    pub fn advance_ms(&self, delta_ms: u64) -> usize {
        let target = self.clock.now_ms() + delta_ms;
        self.advance_to(target)
    }

    /// Advances virtual time to an absolute target, pumping events in
    /// order: the clock steps to each intermediate event time before the
    /// event fires, so callbacks observing the clock see a consistent
    /// "now".
    pub fn advance_to(&self, target_ms: u64) -> usize {
        let mut fired = 0;
        loop {
            match self.events.next_fire_time() {
                Some(t) if t <= target_ms => {
                    self.clock.advance_to(t);
                    fired += self.events.run_until(t);
                }
                _ => break,
            }
        }
        self.clock.advance_to(target_ms);
        fired
    }
}

/// Configures and constructs a [`Device`].
#[derive(Debug)]
pub struct DeviceBuilder {
    seed: u64,
    msisdn: String,
    position: GeoPoint,
    movement: MovementModel,
    latency: LatencyModel,
}

impl Default for DeviceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceBuilder {
    /// Starts with defaults: seed 0, MSISDN `+000000`, position at the
    /// null island, stationary, zero-cost native APIs.
    pub fn new() -> Self {
        Self {
            seed: 0,
            msisdn: "+000000".to_owned(),
            position: GeoPoint::default(),
            movement: MovementModel::stationary(),
            latency: LatencyModel::zero(),
        }
    }

    /// Seeds every stochastic component (GPS noise, SMS loss).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the device's phone number (auto-registered with the SMSC).
    pub fn msisdn(mut self, msisdn: &str) -> Self {
        self.msisdn = msisdn.to_owned();
        self
    }

    /// Sets the starting position.
    pub fn position(mut self, position: GeoPoint) -> Self {
        self.position = position;
        self
    }

    /// Sets the movement model.
    pub fn movement(mut self, movement: MovementModel) -> Self {
        self.movement = movement;
        self
    }

    /// Sets the calibrated native-API latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builds the device, wiring all subsystems to one clock and one
    /// event queue.
    pub fn build(self) -> Device {
        let clock = SimClock::new();
        let events = Arc::new(EventQueue::new());
        let metrics = MetricsRegistry::shared();
        let gps = Arc::new(GpsEngine::new(
            clock.clone(),
            self.position,
            self.movement,
            self.seed,
        ));
        gps.bind_metrics(Arc::clone(&metrics));
        let smsc = Arc::new(Smsc::new(Arc::clone(&events), self.seed.wrapping_add(1)));
        smsc.register_address(&self.msisdn);
        smsc.bind_metrics(Arc::clone(&metrics));
        let call_switch = Arc::new(CallSwitch::new(Arc::clone(&events)));
        let network = Arc::new(SimNetwork::new(Arc::clone(&events)));
        network.bind_metrics(Arc::clone(&metrics), clock.clone());
        Device {
            clock,
            events,
            gps,
            smsc,
            call_switch,
            network,
            power: Arc::new(PowerMeter::new()),
            contacts: Arc::new(ContactStore::new()),
            calendar: Arc::new(CalendarStore::new()),
            coverage: Arc::new(CellCoverage::new()),
            latency: self.latency,
            metrics,
            fault_epoch: Arc::new(AtomicU64::new(0)),
            msisdn: self.msisdn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::CallState;

    #[test]
    fn builder_defaults_build() {
        let device = Device::builder().build();
        assert_eq!(device.now_ms(), 0);
        assert_eq!(device.msisdn(), "+000000");
    }

    #[test]
    fn msisdn_is_registered_with_smsc() {
        let device = Device::builder().msisdn("+91-7").build();
        assert!(device.smsc().is_registered("+91-7"));
    }

    #[test]
    fn advance_pumps_sms_delivery() {
        let device = Device::builder().msisdn("+me").build();
        device.smsc().register_address("+you");
        device
            .smsc()
            .submit("+me", "+you", "hi", device.now_ms(), None);
        assert!(device.smsc().inbox("+you").is_empty());
        device.advance_ms(1_000);
        assert_eq!(device.smsc().inbox("+you").len(), 1);
    }

    #[test]
    fn advance_pumps_call_progress() {
        let device = Device::builder().build();
        let id = device.call_switch().dial("+sup", device.now_ms());
        device.advance_ms(10_000);
        assert_eq!(device.call_switch().state(id), Some(CallState::Active));
    }

    #[test]
    fn events_see_consistent_clock() {
        let device = Device::builder().build();
        let clock = device.clock().clone();
        let observed = std::sync::Arc::new(parking_lot::Mutex::new(None));
        let sink = std::sync::Arc::clone(&observed);
        device.events().schedule_at(500, "probe", move |at| {
            *sink.lock() = Some((at, clock.now_ms()));
        });
        device.advance_ms(2_000);
        let (fire_at, clock_at_fire) = observed.lock().unwrap();
        assert_eq!(fire_at, 500);
        assert_eq!(clock_at_fire, 500);
        assert_eq!(device.now_ms(), 2_000);
    }

    #[test]
    fn clones_share_state() {
        let device = Device::builder().build();
        let twin = device.clone();
        device.advance_ms(123);
        assert_eq!(twin.now_ms(), 123);
        twin.power().draw("gps", 1.0);
        assert_eq!(device.power().total(), 1.0);
    }

    #[test]
    fn chained_events_fire_within_one_advance() {
        let device = Device::builder().msisdn("+a").build();
        device.smsc().register_address("+b");
        // A message submitted *by an event callback* must still deliver in
        // the same advance if time allows.
        let smsc = std::sync::Arc::clone(device.smsc());
        device.events().schedule_at(10, "late-submit", move |at| {
            smsc.submit("+a", "+b", "chained", at, None);
        });
        device.advance_ms(10_000);
        assert_eq!(device.smsc().inbox("+b").len(), 1);
    }
}
