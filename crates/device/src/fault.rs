//! Deterministic fault scheduling on the simulated clock.
//!
//! The device crate already exposes the failure hooks — the network can
//! be taken [`down`](crate::net::SimNetwork::set_down), the GPS engine
//! can be flipped to
//! [`TemporarilyUnavailable`](GpsAvailability::TemporarilyUnavailable),
//! the SMSC has a seeded
//! [loss probability](crate::sms::Smsc::set_loss_probability). What a
//! chaos test needs on top is *when*: outage windows that open and close
//! mid-call, flapping services, bounded bursts of random drops — all
//! replayable run-over-run.
//!
//! [`FaultPlan`] schedules those transitions as ordinary events on the
//! device's [`EventQueue`](crate::event::EventQueue), so they fire while
//! `advance_ms` pumps simulated time — including the time a resilient
//! proxy spends in its own backoff. No wall-clock timers, no threads:
//! the same plan on the same seed produces the same failure trace on
//! every platform binding.
//!
//! # Example
//!
//! ```
//! use mobivine_device::{Device, fault::FaultPlan};
//!
//! let device = Device::builder().build();
//! FaultPlan::new(&device)
//!     .network_partition(1_000, 5_000)
//!     .gps_flap(0, 2_000, 3);
//! device.advance_ms(1_500);
//! assert!(device.network().is_down());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::device::Device;
use crate::event::EventId;
use crate::gps::GpsAvailability;

/// splitmix64 — deterministic mixing for the seeded-probabilistic
/// faults (kept local so fault traces never depend on an RNG crate).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where in the durability pipeline a scheduled crash kills the
/// middleware process — the three windows that distinguish a correct
/// write-ahead-journal implementation from a lucky one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Death mid-record: the intent frame reached the disk queue only
    /// partially, leaving a torn tail for recovery to truncate. The
    /// effect never ran; replay must not invent it.
    TornWrite,
    /// Death in the intent/effect gap: the intent is durably fsynced
    /// but the side effect never ran. Recovery must replay it —
    /// exactly once.
    BeforeEffect,
    /// Death after the effect but before the acknowledgement: the
    /// caller re-delivers, and the idempotency key must make the
    /// second delivery an observed no-op.
    AfterEffect,
}

impl CrashKind {
    /// Stable lowercase name, for digests and tables.
    pub fn name(self) -> &'static str {
        match self {
            CrashKind::TornWrite => "torn_write",
            CrashKind::BeforeEffect => "before_effect",
            CrashKind::AfterEffect => "after_effect",
        }
    }
}

/// A deterministic crash plan keyed by idempotency key: when armed,
/// the durability layer consults [`CrashSchedule::take`] with each
/// mutation's key and dies in the prescribed window if the key is a
/// victim. Keys — not byte offsets — make the schedule independent of
/// the interleaving worker threads impose on the journal, so the same
/// seed crashes the same logical operations on any worker count.
///
/// Starts disarmed; [`FaultPlan::crash_storm`] arms it as an ordinary
/// scheduled fault transition.
#[derive(Debug, Default)]
pub struct CrashSchedule {
    armed: AtomicBool,
    victims: Mutex<HashMap<u64, CrashKind>>,
}

impl CrashSchedule {
    /// A disarmed schedule with the given `(idempotency key, kind)`
    /// victims.
    pub fn new(victims: impl IntoIterator<Item = (u64, CrashKind)>) -> Arc<Self> {
        Arc::new(Self {
            armed: AtomicBool::new(false),
            victims: Mutex::new(victims.into_iter().collect()),
        })
    }

    /// Arms the schedule: victims start dying.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Whether the schedule is live.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Consumes and returns the crash prescribed for `key`, when the
    /// schedule is armed and `key` is a victim. Each victim dies once:
    /// the retry re-delivering the same key finds no entry and
    /// survives.
    pub fn take(&self, key: u64) -> Option<CrashKind> {
        if !self.is_armed() {
            return None;
        }
        self.victims.lock().remove(&key)
    }

    /// Victims that have not crashed yet.
    pub fn remaining(&self) -> usize {
        self.victims.lock().len()
    }
}

/// A deterministic schedule of failure-hook transitions for one
/// [`Device`].
///
/// Each method registers its transitions on the device's event queue
/// immediately and returns `&self`, so plans read as chained scripts.
/// All times are absolute simulated milliseconds.
pub struct FaultPlan {
    device: Device,
    scheduled: Mutex<Vec<EventId>>,
}

impl FaultPlan {
    /// Starts an empty plan against `device`.
    pub fn new(device: &Device) -> Self {
        Self {
            device: device.clone(),
            scheduled: Mutex::new(Vec::new()),
        }
    }

    fn schedule(&self, at_ms: u64, label: &'static str, action: impl FnOnce(u64) + Send + 'static) {
        let transitions = self.device.metrics().counter(
            "device_fault_transitions_total",
            &mobivine_telemetry::Labels::new(&[("fault", label)]),
        );
        let device = self.device.clone();
        let id = self
            .device
            .events()
            .schedule_at(at_ms, label, move |at_ms| {
                transitions.inc();
                device.bump_fault_epoch();
                action(at_ms);
            });
        self.scheduled.lock().push(id);
    }

    /// How many fault transitions the plan has registered so far.
    pub fn scheduled_count(&self) -> usize {
        self.scheduled.lock().len()
    }

    /// Cancels every not-yet-fired transition, returning how many were
    /// still pending.
    pub fn cancel_all(&self) -> usize {
        let mut ids = self.scheduled.lock();
        let cancelled = ids
            .iter()
            .filter(|id| self.device.events().cancel(**id))
            .count();
        ids.clear();
        cancelled
    }

    /// Takes the packet network down at `from_ms` and restores it at
    /// `until_ms` — the classic partition window t₁–t₂.
    pub fn network_partition(&self, from_ms: u64, until_ms: u64) -> &Self {
        let net = Arc::clone(self.device.network());
        self.schedule(from_ms, "fault.network.down", move |_| net.set_down(true));
        let net = Arc::clone(self.device.network());
        self.schedule(until_ms, "fault.network.up", move |_| net.set_down(false));
        self
    }

    /// Marks the GPS engine temporarily unavailable over
    /// `from_ms..until_ms`.
    pub fn gps_outage(&self, from_ms: u64, until_ms: u64) -> &Self {
        let gps = Arc::clone(self.device.gps());
        self.schedule(from_ms, "fault.gps.lost", move |_| {
            gps.set_availability(GpsAvailability::TemporarilyUnavailable);
        });
        let gps = Arc::clone(self.device.gps());
        self.schedule(until_ms, "fault.gps.recovered", move |_| {
            gps.set_availability(GpsAvailability::Available);
        });
        self
    }

    /// Flaps the GPS: starting at `start_ms` the signal is lost, comes
    /// back `period_ms` later, is lost again after another `period_ms`,
    /// … for `cycles` full lost/recovered cycles.
    pub fn gps_flap(&self, start_ms: u64, period_ms: u64, cycles: u32) -> &Self {
        for cycle in 0..u64::from(cycles) {
            let down_at = start_ms + 2 * cycle * period_ms;
            self.gps_outage(down_at, down_at + period_ms);
        }
        self
    }

    /// Sets the SMSC loss probability to `probability` over
    /// `from_ms..until_ms` and back to zero afterwards. The SMSC draws
    /// from its own seeded stream, so the drop pattern stays
    /// reproducible.
    pub fn sms_loss_window(&self, from_ms: u64, until_ms: u64, probability: f64) -> &Self {
        let smsc = Arc::clone(self.device.smsc());
        self.schedule(from_ms, "fault.smsc.lossy", move |_| {
            smsc.set_loss_probability(probability);
        });
        let smsc = Arc::clone(self.device.smsc());
        self.schedule(until_ms, "fault.smsc.clean", move |_| {
            smsc.set_loss_probability(0.0);
        });
        self
    }

    /// Multiplies the network's base round-trip latency by `factor`
    /// over `from_ms..until_ms`, restoring the value observed at plan
    /// time afterwards — the "slow backend" half of a brownout, where
    /// the link stays up but every call crawls.
    pub fn latency_spike(&self, from_ms: u64, until_ms: u64, factor: u64) -> &Self {
        let restore = self.device.network().round_trip_ms(0);
        let spiked = restore.saturating_mul(factor.max(1));
        let net = Arc::clone(self.device.network());
        self.schedule(from_ms, "fault.network.latency_spike", move |_| {
            net.set_base_latency_ms(spiked);
        });
        let net = Arc::clone(self.device.network());
        self.schedule(until_ms, "fault.network.latency_restored", move |_| {
            net.set_base_latency_ms(restore);
        });
        self
    }

    /// An overload burst: over `from_ms..until_ms` both the network and
    /// the SMSC serve at `factor`× their plan-time latency — the
    /// saturated-backend condition the overload layer's admission gate
    /// is built to survive. Restores both latencies when the burst ends.
    pub fn overload_burst(&self, from_ms: u64, until_ms: u64, factor: u64) -> &Self {
        self.latency_spike(from_ms, until_ms, factor);
        let restore = self.device.smsc().latency_ms();
        let spiked = restore.saturating_mul(factor.max(1));
        let smsc = Arc::clone(self.device.smsc());
        self.schedule(from_ms, "fault.smsc.overloaded", move |_| {
            smsc.set_latency_ms(spiked);
        });
        let smsc = Arc::clone(self.device.smsc());
        self.schedule(until_ms, "fault.smsc.drained", move |_| {
            smsc.set_latency_ms(restore);
        });
        self
    }

    /// Drops the device out of cell coverage over `from_ms..until_ms`:
    /// at `from_ms` the coverage map is replaced by a single distant
    /// cell (so the radio sees no signal wherever the device stands),
    /// and at `until_ms` the map is cleared back to blanket coverage.
    /// Circuit-switched services — calls, SMS submission — fail at the
    /// radio while the window is open.
    pub fn coverage_outage(&self, from_ms: u64, until_ms: u64) -> &Self {
        let coverage = Arc::clone(self.device.coverage());
        self.schedule(from_ms, "fault.radio.out_of_coverage", move |_| {
            coverage.clear();
            coverage.add_cell(crate::geo::GeoPoint::new(-89.9, 0.0), 1.0);
        });
        let coverage = Arc::clone(self.device.coverage());
        self.schedule(until_ms, "fault.radio.coverage_restored", move |_| {
            coverage.clear();
        });
        self
    }

    /// Arms a [`CrashSchedule`] at `at_ms`: from that instant the
    /// middleware layer consulting the schedule starts dying at its
    /// victims' prescribed windows. The arming is an ordinary fault
    /// transition — counted, epoch-bumping, replayable — so cache
    /// stamps and chaos traces see the storm begin.
    pub fn crash_storm(&self, at_ms: u64, schedule: &Arc<CrashSchedule>) -> &Self {
        let schedule = Arc::clone(schedule);
        self.schedule(at_ms, "fault.crash.armed", move |_| schedule.arm());
        self
    }

    /// Seeded-probabilistic partitions: `count` network outages of
    /// `outage_ms` each, at splitmix64-derived offsets within
    /// `from_ms..until_ms`. The same seed always yields the same outage
    /// times.
    pub fn random_network_drops(
        &self,
        seed: u64,
        from_ms: u64,
        until_ms: u64,
        count: u32,
        outage_ms: u64,
    ) -> &Self {
        let span = until_ms.saturating_sub(from_ms).max(1);
        for i in 0..u64::from(count) {
            let at = from_ms + splitmix64(seed ^ i.rotate_left(23)) % span;
            self.network_partition(at, at.saturating_add(outage_ms));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gps::GpsAvailability;

    fn device() -> Device {
        Device::builder().seed(11).build()
    }

    #[test]
    fn partition_window_opens_and_closes_on_the_simulated_clock() {
        let device = device();
        let plan = FaultPlan::new(&device);
        plan.network_partition(1_000, 3_000);
        assert!(!device.network().is_down());
        device.advance_ms(1_500);
        assert!(device.network().is_down(), "inside the window");
        device.advance_ms(2_000);
        assert!(!device.network().is_down(), "healed at t2");
    }

    #[test]
    fn gps_flap_alternates_every_period() {
        let device = device();
        FaultPlan::new(&device).gps_flap(1_000, 500, 2);
        let gps = device.gps();
        let expectations = [
            (999, GpsAvailability::Available),
            (1_001, GpsAvailability::TemporarilyUnavailable),
            (1_501, GpsAvailability::Available),
            (2_001, GpsAvailability::TemporarilyUnavailable),
            (2_501, GpsAvailability::Available),
        ];
        for (at, expected) in expectations {
            device.advance_to(at);
            assert_eq!(gps.availability(), expected, "at t={at}");
        }
    }

    #[test]
    fn sms_loss_window_restores_a_clean_channel() {
        let device = device();
        FaultPlan::new(&device).sms_loss_window(100, 200, 1.0);
        device.advance_ms(150);
        // Probability is internal; observable effect is exercised by the
        // integration chaos tests. Here we only assert the window closes.
        device.advance_ms(100);
        let plan = FaultPlan::new(&device);
        assert_eq!(plan.scheduled_count(), 0);
    }

    #[test]
    fn random_drops_are_reproducible_per_seed() {
        let device_a = device();
        let device_b = device();
        let plan_a = FaultPlan::new(&device_a);
        let plan_b = FaultPlan::new(&device_b);
        plan_a.random_network_drops(7, 0, 10_000, 4, 250);
        plan_b.random_network_drops(7, 0, 10_000, 4, 250);
        let mut transitions = Vec::new();
        for t in (0..11_000).step_by(50) {
            device_a.advance_to(t);
            device_b.advance_to(t);
            assert_eq!(
                device_a.network().is_down(),
                device_b.network().is_down(),
                "same seed must replay the same outage trace (t={t})"
            );
            transitions.push(device_a.network().is_down());
        }
        assert!(transitions.iter().any(|d| *d), "at least one outage fired");
    }

    #[test]
    fn latency_spike_raises_and_restores_the_round_trip() {
        let device = device();
        let baseline = device.network().round_trip_ms(0);
        FaultPlan::new(&device).latency_spike(1_000, 3_000, 10);
        device.advance_ms(1_500);
        assert_eq!(device.network().round_trip_ms(0), baseline * 10);
        device.advance_ms(2_000);
        assert_eq!(device.network().round_trip_ms(0), baseline, "restored");
    }

    #[test]
    fn overload_burst_saturates_network_and_smsc_together() {
        let device = device();
        let net_baseline = device.network().round_trip_ms(0);
        let smsc_baseline = device.smsc().latency_ms();
        let plan = FaultPlan::new(&device);
        plan.overload_burst(500, 2_500, 8);
        assert_eq!(plan.scheduled_count(), 4, "two pairs of transitions");
        device.advance_ms(1_000);
        assert_eq!(device.network().round_trip_ms(0), net_baseline * 8);
        assert_eq!(device.smsc().latency_ms(), smsc_baseline * 8);
        device.advance_ms(2_000);
        assert_eq!(device.network().round_trip_ms(0), net_baseline);
        assert_eq!(device.smsc().latency_ms(), smsc_baseline);
    }

    #[test]
    fn coverage_outage_window_drops_and_restores_the_radio() {
        let device = device();
        assert!(device.signal_strength().in_coverage());
        FaultPlan::new(&device).coverage_outage(1_000, 3_000);
        device.advance_ms(1_500);
        assert!(!device.signal_strength().in_coverage(), "inside the window");
        device.advance_ms(2_000);
        assert!(device.signal_strength().in_coverage(), "restored");
    }

    #[test]
    fn crash_storm_arms_on_the_simulated_clock_and_victims_die_once() {
        let device = device();
        let schedule =
            CrashSchedule::new([(7, CrashKind::TornWrite), (9, CrashKind::BeforeEffect)]);
        FaultPlan::new(&device).crash_storm(1_000, &schedule);
        assert!(!schedule.is_armed());
        assert_eq!(schedule.take(7), None, "disarmed schedules never kill");
        device.advance_ms(1_500);
        assert!(schedule.is_armed());
        assert_eq!(schedule.take(7), Some(CrashKind::TornWrite));
        assert_eq!(schedule.take(7), None, "each victim dies exactly once");
        assert_eq!(schedule.take(8), None, "non-victims survive");
        assert_eq!(schedule.remaining(), 1);
        assert_eq!(schedule.take(9), Some(CrashKind::BeforeEffect));
        assert_eq!(schedule.remaining(), 0);
    }

    #[test]
    fn crash_kind_names_are_stable() {
        assert_eq!(CrashKind::TornWrite.name(), "torn_write");
        assert_eq!(CrashKind::BeforeEffect.name(), "before_effect");
        assert_eq!(CrashKind::AfterEffect.name(), "after_effect");
    }

    #[test]
    fn cancel_all_unschedules_pending_transitions() {
        let device = device();
        let plan = FaultPlan::new(&device);
        plan.network_partition(1_000, 2_000);
        assert_eq!(plan.scheduled_count(), 2);
        assert_eq!(plan.cancel_all(), 2);
        device.advance_ms(3_000);
        assert!(!device.network().is_down());
    }
}
