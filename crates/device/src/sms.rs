//! SMSC (short message service center) simulator.
//!
//! Store-and-forward messaging between addresses (MSISDNs): submitted
//! messages are segmented per GSM 03.38 rules, delayed by a configurable
//! latency, optionally lost with a seeded probability, and delivered into
//! per-address inboxes. Submitters can request delivery reports — the
//! asynchronous notification path that the WebView proxy's Notification
//! Table (paper §4.1, Fig. 6) exists to bridge.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use mobivine_telemetry::span::{ambient, Plane};
use mobivine_telemetry::{Counter, Labels, MetricsRegistry};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::EventQueue;

/// Maximum characters in a single-part GSM-7 message.
pub const GSM7_SINGLE_LIMIT: usize = 160;
/// Maximum characters per segment of a concatenated GSM-7 message.
pub const GSM7_CONCAT_LIMIT: usize = 153;
/// Maximum characters in a single-part UCS-2 message.
pub const UCS2_SINGLE_LIMIT: usize = 70;
/// Maximum characters per segment of a concatenated UCS-2 message.
pub const UCS2_CONCAT_LIMIT: usize = 67;

/// Character encoding chosen for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmsEncoding {
    /// GSM 7-bit default alphabet.
    Gsm7,
    /// UCS-2 (needed when any character falls outside the GSM alphabet).
    Ucs2,
}

/// Returns `true` if `c` is representable in the GSM 7-bit default
/// alphabet (simplified: printable ASCII plus the common extension and
/// Greek characters actually present in GSM 03.38).
pub fn is_gsm7_char(c: char) -> bool {
    matches!(c,
        'A'..='Z' | 'a'..='z' | '0'..='9'
        | ' ' | '\n' | '\r'
        | '@' | '£' | '$' | '¥' | 'è' | 'é' | 'ù' | 'ì' | 'ò' | 'Ç'
        | 'Ø' | 'ø' | 'Å' | 'å' | 'Δ' | '_' | 'Φ' | 'Γ' | 'Λ' | 'Ω'
        | 'Π' | 'Ψ' | 'Σ' | 'Θ' | 'Ξ' | 'Æ' | 'æ' | 'ß' | 'É'
        | '!' | '"' | '#' | '%' | '&' | '\'' | '(' | ')' | '*' | '+'
        | ',' | '-' | '.' | '/' | ':' | ';' | '<' | '=' | '>' | '?'
        | '¡' | 'Ä' | 'Ö' | 'Ñ' | 'Ü' | '§' | '¿' | 'ä' | 'ö' | 'ñ'
        | 'ü' | 'à'
        // Extension table (each costs two septets; we count them as one
        // character for segmentation simplicity, a common simplification).
        | '^' | '{' | '}' | '\\' | '[' | ']' | '~' | '|' | '€'
    )
}

/// The segmentation of a message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segments {
    /// Encoding the SMSC selected.
    pub encoding: SmsEncoding,
    /// The per-segment text parts, in order. Concatenating them
    /// reconstructs the original body.
    pub parts: Vec<String>,
}

impl Segments {
    /// Number of segments.
    pub fn count(&self) -> usize {
        self.parts.len()
    }
}

/// Splits `body` into SMS segments following GSM 03.38 limits.
///
/// # Example
///
/// ```
/// use mobivine_device::sms::{segment_message, SmsEncoding};
///
/// let short = segment_message("on my way");
/// assert_eq!(short.count(), 1);
/// assert_eq!(short.encoding, SmsEncoding::Gsm7);
///
/// let long = segment_message(&"x".repeat(200));
/// assert_eq!(long.count(), 2); // 153 + 47
/// ```
pub fn segment_message(body: &str) -> Segments {
    let encoding = if body.chars().all(is_gsm7_char) {
        SmsEncoding::Gsm7
    } else {
        SmsEncoding::Ucs2
    };
    let (single, concat) = match encoding {
        SmsEncoding::Gsm7 => (GSM7_SINGLE_LIMIT, GSM7_CONCAT_LIMIT),
        SmsEncoding::Ucs2 => (UCS2_SINGLE_LIMIT, UCS2_CONCAT_LIMIT),
    };
    let chars: Vec<char> = body.chars().collect();
    let parts = if chars.len() <= single {
        vec![body.to_owned()]
    } else {
        chars
            .chunks(concat)
            .map(|chunk| chunk.iter().collect())
            .collect()
    };
    Segments { encoding, parts }
}

/// Identifier assigned by the SMSC to a submitted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(u64);

impl MessageId {
    /// The raw numeric id (used by proxies that expose ids uniformly
    /// across platforms as plain integers).
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg-{}", self.0)
    }
}

/// Final status of a submitted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryStatus {
    /// Accepted, delivery pending.
    Pending,
    /// Delivered to the recipient inbox.
    Delivered,
    /// Lost in the network.
    Failed,
}

/// A message as seen in a recipient's inbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InboxMessage {
    /// SMSC message id.
    pub id: MessageId,
    /// Sender address.
    pub from: String,
    /// Recipient address.
    pub to: String,
    /// Reassembled body.
    pub body: String,
    /// Virtual delivery time.
    pub delivered_at_ms: u64,
    /// Number of segments the body travelled as.
    pub segment_count: usize,
}

/// Callback invoked when a delivery report arrives for a submitted
/// message: `(message id, status, report time)`.
pub type DeliveryReportFn = Box<dyn Fn(MessageId, DeliveryStatus, u64) + Send>;

/// Callback invoked when a message arrives at a registered address.
pub type InboxListenerFn = Box<dyn Fn(&InboxMessage) + Send>;

#[derive(Clone)]
struct SmsMetrics {
    submitted: Counter,
    delivered: Counter,
    lost: Counter,
}

struct SmscState {
    next_id: u64,
    latency_ms: u64,
    loss_probability: f64,
    seed: u64,
    inboxes: HashMap<String, Vec<InboxMessage>>,
    inbox_listeners: HashMap<String, Vec<InboxListenerFn>>,
    statuses: HashMap<MessageId, DeliveryStatus>,
    report_listeners: HashMap<MessageId, DeliveryReportFn>,
}

/// The store-and-forward message center.
///
/// Delivery happens when the owning [`crate::Device`]'s event queue is
/// pumped (i.e. when virtual time advances past submission latency).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobivine_device::event::EventQueue;
/// use mobivine_device::sms::Smsc;
///
/// let events = Arc::new(EventQueue::new());
/// let smsc = Smsc::new(Arc::clone(&events), 42);
/// smsc.register_address("+911234");
/// smsc.submit("+919999", "+911234", "hello", 0, None);
/// events.run_until(smsc.latency_ms());
/// assert_eq!(smsc.inbox("+911234").len(), 1);
/// ```
pub struct Smsc {
    events: Arc<EventQueue>,
    state: Arc<Mutex<SmscState>>,
    metrics: Mutex<Option<SmsMetrics>>,
}

impl fmt::Debug for Smsc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Smsc")
            .field("latency_ms", &state.latency_ms)
            .field("loss_probability", &state.loss_probability)
            .field("addresses", &state.inboxes.len())
            .finish()
    }
}

impl Smsc {
    /// Creates an SMSC pumping deliveries through `events`.
    pub fn new(events: Arc<EventQueue>, seed: u64) -> Self {
        Self {
            events,
            state: Arc::new(Mutex::new(SmscState {
                next_id: 1,
                latency_ms: 40,
                loss_probability: 0.0,
                seed,
                inboxes: HashMap::new(),
                inbox_listeners: HashMap::new(),
                statuses: HashMap::new(),
                report_listeners: HashMap::new(),
            })),
            metrics: Mutex::new(None),
        }
    }

    /// Connects this SMSC to a metrics registry. Until bound, the SMSC
    /// publishes nothing (standalone instances stay silent).
    pub fn bind_metrics(&self, registry: Arc<MetricsRegistry>) {
        *self.metrics.lock() = Some(SmsMetrics {
            submitted: registry.counter("device_sms_submitted_total", &Labels::empty()),
            delivered: registry.counter("device_sms_delivered_total", &Labels::empty()),
            lost: registry.counter("device_sms_lost_total", &Labels::empty()),
        });
    }

    /// Network transit latency applied to each message (default 40 ms).
    pub fn latency_ms(&self) -> u64 {
        self.state.lock().latency_ms
    }

    /// Sets the network transit latency.
    pub fn set_latency_ms(&self, latency_ms: u64) {
        self.state.lock().latency_ms = latency_ms;
    }

    /// Sets the probability in `[0, 1]` that a submitted message is lost.
    pub fn set_loss_probability(&self, p: f64) {
        self.state.lock().loss_probability = p.clamp(0.0, 1.0);
    }

    /// Registers `address` so it can receive messages. Idempotent.
    pub fn register_address(&self, address: &str) {
        self.state
            .lock()
            .inboxes
            .entry(address.to_owned())
            .or_default();
    }

    /// Returns `true` if `address` has been registered.
    pub fn is_registered(&self, address: &str) -> bool {
        self.state.lock().inboxes.contains_key(address)
    }

    /// Subscribes to message arrivals at `address`.
    pub fn add_inbox_listener<F>(&self, address: &str, listener: F)
    where
        F: Fn(&InboxMessage) + Send + 'static,
    {
        self.state
            .lock()
            .inbox_listeners
            .entry(address.to_owned())
            .or_default()
            .push(Box::new(listener));
    }

    /// Snapshot of the inbox for `address` (empty if unregistered).
    pub fn inbox(&self, address: &str) -> Vec<InboxMessage> {
        self.state
            .lock()
            .inboxes
            .get(address)
            .cloned()
            .unwrap_or_default()
    }

    /// Current delivery status of a submitted message.
    pub fn status(&self, id: MessageId) -> Option<DeliveryStatus> {
        self.state.lock().statuses.get(&id).copied()
    }

    /// Submits a message for delivery at `now_ms` (the current virtual
    /// time, passed in by the caller because the SMSC does not own the
    /// clock). Returns the assigned [`MessageId`].
    ///
    /// If `report` is provided it is invoked exactly once with the final
    /// [`DeliveryStatus`] when the message is delivered or lost.
    pub fn submit(
        &self,
        from: &str,
        to: &str,
        body: &str,
        now_ms: u64,
        report: Option<DeliveryReportFn>,
    ) -> MessageId {
        let metrics = self.metrics.lock().clone();
        let mut span = ambient::child("device:sms.submit", Plane::Device, now_ms);
        if let Some(m) = &metrics {
            m.submitted.inc();
        }
        let segments = segment_message(body);
        if let Some(s) = span.as_mut() {
            s.attr("segments", segments.count().to_string());
        }
        let (id, deliver_at, lost) = {
            let mut state = self.state.lock();
            let id = MessageId(state.next_id);
            state.next_id += 1;
            state.statuses.insert(id, DeliveryStatus::Pending);
            if let Some(report) = report {
                state.report_listeners.insert(id, report);
            }
            let mut rng = StdRng::seed_from_u64(state.seed ^ id.0.rotate_left(23));
            let lost = rng.gen::<f64>() < state.loss_probability;
            (id, now_ms + state.latency_ms, lost)
        };
        let state = Arc::clone(&self.state);
        let from = from.to_owned();
        let to = to.to_owned();
        let body = body.to_owned();
        let segment_count = segments.count();
        self.events
            .schedule_at(deliver_at, "sms-delivery", move |at| {
                let mut guard = state.lock();
                let final_status = if lost || !guard.inboxes.contains_key(&to) {
                    DeliveryStatus::Failed
                } else {
                    DeliveryStatus::Delivered
                };
                if let Some(m) = &metrics {
                    match final_status {
                        DeliveryStatus::Delivered => m.delivered.inc(),
                        _ => m.lost.inc(),
                    }
                }
                guard.statuses.insert(id, final_status);
                if final_status == DeliveryStatus::Delivered {
                    let message = InboxMessage {
                        id,
                        from: from.clone(),
                        to: to.clone(),
                        body: body.clone(),
                        delivered_at_ms: at,
                        segment_count,
                    };
                    // The inbox exists (delivery requires `contains_key`
                    // above, under the same lock); `entry` keeps the path
                    // total either way.
                    guard
                        .inboxes
                        .entry(to.clone())
                        .or_default()
                        .push(message.clone());
                    // Take listeners out so callbacks run without the lock.
                    let listeners = guard.inbox_listeners.remove(&to);
                    let report = guard.report_listeners.remove(&id);
                    drop(guard);
                    if let Some(listeners) = listeners {
                        for l in &listeners {
                            l(&message);
                        }
                        state.lock().inbox_listeners.insert(to.clone(), listeners);
                    }
                    if let Some(report) = report {
                        report(id, DeliveryStatus::Delivered, at);
                    }
                } else {
                    let report = guard.report_listeners.remove(&id);
                    drop(guard);
                    if let Some(report) = report {
                        report(id, DeliveryStatus::Failed, at);
                    }
                }
            });
        if let Some(s) = span {
            s.end(now_ms);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    fn smsc() -> (Arc<EventQueue>, Smsc) {
        let events = Arc::new(EventQueue::new());
        let smsc = Smsc::new(Arc::clone(&events), 7);
        (events, smsc)
    }

    #[test]
    fn short_ascii_is_one_gsm7_segment() {
        let s = segment_message("meet at the depot");
        assert_eq!(s.encoding, SmsEncoding::Gsm7);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn exactly_160_chars_is_single_segment() {
        let s = segment_message(&"a".repeat(160));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn chars_161_forces_concatenation() {
        let s = segment_message(&"a".repeat(161));
        assert_eq!(s.count(), 2);
        assert_eq!(s.parts[0].len(), 153);
        assert_eq!(s.parts[1].len(), 8);
    }

    #[test]
    fn non_gsm_chars_force_ucs2() {
        let s = segment_message("位置 report");
        assert_eq!(s.encoding, SmsEncoding::Ucs2);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn long_ucs2_uses_67_char_segments() {
        let body: String = "日".repeat(71);
        let s = segment_message(&body);
        assert_eq!(s.encoding, SmsEncoding::Ucs2);
        assert_eq!(s.count(), 2);
        assert_eq!(s.parts[0].chars().count(), 67);
    }

    #[test]
    fn segments_reassemble_to_original() {
        let body = "The quick brown fox ".repeat(20);
        let s = segment_message(&body);
        assert_eq!(s.parts.concat(), body);
    }

    #[test]
    fn delivery_lands_in_inbox_after_latency() {
        let (events, smsc) = smsc();
        smsc.register_address("+91-agent");
        let id = smsc.submit("+91-boss", "+91-agent", "report in", 0, None);
        assert_eq!(smsc.status(id), Some(DeliveryStatus::Pending));
        events.run_until(smsc.latency_ms() - 1);
        assert!(smsc.inbox("+91-agent").is_empty());
        events.run_until(smsc.latency_ms());
        let inbox = smsc.inbox("+91-agent");
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].body, "report in");
        assert_eq!(smsc.status(id), Some(DeliveryStatus::Delivered));
    }

    #[test]
    fn unregistered_recipient_fails() {
        let (events, smsc) = smsc();
        let id = smsc.submit("+1", "+nobody", "hi", 0, None);
        events.run_until(1_000);
        assert_eq!(smsc.status(id), Some(DeliveryStatus::Failed));
    }

    #[test]
    fn delivery_report_fires_once_with_final_status() {
        let (events, smsc) = smsc();
        smsc.register_address("+2");
        let reports = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&reports);
        smsc.submit(
            "+1",
            "+2",
            "ping",
            0,
            Some(Box::new(move |id, status, at| {
                sink.lock().unwrap().push((id, status, at));
            })),
        );
        events.run_until(10_000);
        let reports = reports.lock().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].1, DeliveryStatus::Delivered);
    }

    #[test]
    fn loss_probability_one_loses_everything() {
        let (events, smsc) = smsc();
        smsc.register_address("+2");
        smsc.set_loss_probability(1.0);
        let id = smsc.submit("+1", "+2", "gone", 0, None);
        events.run_until(1_000);
        assert_eq!(smsc.status(id), Some(DeliveryStatus::Failed));
        assert!(smsc.inbox("+2").is_empty());
    }

    #[test]
    fn inbox_listener_invoked_on_arrival() {
        let (events, smsc) = smsc();
        smsc.register_address("+2");
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        smsc.add_inbox_listener("+2", move |_msg| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        smsc.submit("+1", "+2", "one", 0, None);
        smsc.submit("+1", "+2", "two", 0, None);
        events.run_until(1_000);
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn message_ids_are_unique_and_increasing() {
        let (_events, smsc) = smsc();
        smsc.register_address("+2");
        let a = smsc.submit("+1", "+2", "a", 0, None);
        let b = smsc.submit("+1", "+2", "b", 0, None);
        assert!(b > a);
    }

    #[test]
    fn segment_count_recorded_on_delivery() {
        let (events, smsc) = smsc();
        smsc.register_address("+2");
        smsc.submit("+1", "+2", &"z".repeat(200), 0, None);
        events.run_until(1_000);
        assert_eq!(smsc.inbox("+2")[0].segment_count, 2);
    }
}
