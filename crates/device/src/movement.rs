//! Movement models driving the simulated GPS engine.
//!
//! The paper's motivating application is *mobile workforce management*:
//! field agents move around a region and the application reacts to
//! proximity. The movement model answers "where is the device at virtual
//! time t?" deterministically (the random walk is seeded).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::geo::GeoPoint;

/// A deterministic function from virtual time to position.
///
/// # Example
///
/// ```
/// use mobivine_device::geo::GeoPoint;
/// use mobivine_device::movement::MovementModel;
///
/// let home = GeoPoint::new(28.5, 77.3);
/// let mut model = MovementModel::linear(home, 45.0, 2.0); // 2 m/s NE
/// let origin = model.position_at(0, home);
/// let later = model.position_at(10_000, home); // 10 s later
/// assert!((origin.distance_m(&later) - 20.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct MovementModel {
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    Stationary,
    Linear {
        start: Option<GeoPoint>,
        bearing_deg: f64,
        speed_mps: f64,
    },
    Waypoints {
        route: Vec<GeoPoint>,
        speed_mps: f64,
        loop_route: bool,
    },
    RandomWalk {
        seed: u64,
        step_m: f64,
        step_interval_ms: u64,
        cache: Vec<GeoPoint>,
    },
}

impl MovementModel {
    /// The device never moves.
    pub fn stationary() -> Self {
        Self {
            kind: Kind::Stationary,
        }
    }

    /// Constant-velocity travel from `start` along `bearing_deg` at
    /// `speed_mps` metres per second.
    pub fn linear(start: GeoPoint, bearing_deg: f64, speed_mps: f64) -> Self {
        Self {
            kind: Kind::Linear {
                start: Some(start),
                bearing_deg,
                speed_mps,
            },
        }
    }

    /// Constant-speed travel along a polyline of waypoints. The device
    /// starts at the first waypoint at t=0 and stops at the last.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty or `speed_mps` is not positive.
    pub fn waypoints(route: Vec<GeoPoint>, speed_mps: f64) -> Self {
        assert!(!route.is_empty(), "waypoint route must be non-empty");
        assert!(speed_mps > 0.0, "speed must be positive");
        Self {
            kind: Kind::Waypoints {
                route,
                speed_mps,
                loop_route: false,
            },
        }
    }

    /// Like [`MovementModel::waypoints`] but the route wraps around to the
    /// first waypoint after the last, forever.
    ///
    /// # Panics
    ///
    /// Panics if `route` is empty or `speed_mps` is not positive.
    pub fn waypoint_loop(route: Vec<GeoPoint>, speed_mps: f64) -> Self {
        assert!(!route.is_empty(), "waypoint route must be non-empty");
        assert!(speed_mps > 0.0, "speed must be positive");
        Self {
            kind: Kind::Waypoints {
                route,
                speed_mps,
                loop_route: true,
            },
        }
    }

    /// Seeded random walk: every `step_interval_ms` the device jumps
    /// `step_m` metres in a uniformly random direction. Deterministic for
    /// a given seed.
    ///
    /// # Panics
    ///
    /// Panics if `step_interval_ms` is zero.
    pub fn random_walk(seed: u64, step_m: f64, step_interval_ms: u64) -> Self {
        assert!(step_interval_ms > 0, "step interval must be non-zero");
        Self {
            kind: Kind::RandomWalk {
                seed,
                step_m,
                step_interval_ms,
                cache: Vec::new(),
            },
        }
    }

    /// Position at virtual time `now_ms`, given the device's configured
    /// origin (used by models that do not carry their own start point).
    pub fn position_at(&mut self, now_ms: u64, origin: GeoPoint) -> GeoPoint {
        match &mut self.kind {
            Kind::Stationary => origin,
            Kind::Linear {
                start,
                bearing_deg,
                speed_mps,
            } => {
                let base = start.unwrap_or(origin);
                let dist = *speed_mps * now_ms as f64 / 1000.0;
                base.destination(*bearing_deg, dist)
            }
            Kind::Waypoints {
                route,
                speed_mps,
                loop_route,
            } => {
                let travelled = *speed_mps * now_ms as f64 / 1000.0;
                position_on_route(route, travelled, *loop_route)
            }
            Kind::RandomWalk {
                seed,
                step_m,
                step_interval_ms,
                cache,
            } => {
                let steps = (now_ms / *step_interval_ms) as usize;
                if cache.is_empty() {
                    cache.push(origin);
                }
                if steps + 1 > cache.len() {
                    // Deterministically extend the cached walk. The RNG is
                    // re-seeded and fast-forwarded so jumping to an
                    // arbitrary time observes the same path.
                    let mut rng = StdRng::seed_from_u64(*seed);
                    for _ in 0..(cache.len() - 1) {
                        let _: f64 = rng.gen();
                    }
                    while cache.len() < steps + 1 {
                        let bearing: f64 = rng.gen::<f64>() * 360.0;
                        // The cache always holds the origin (pushed above),
                        // so the fallback never fires; it keeps this path
                        // total without a panic.
                        let last = *cache.last().unwrap_or(&origin);
                        cache.push(last.destination(bearing, *step_m));
                    }
                }
                cache[steps]
            }
        }
    }
}

/// Walks `travelled_m` metres along `route` (optionally looping) and
/// returns the reached point.
fn position_on_route(route: &[GeoPoint], travelled_m: f64, loop_route: bool) -> GeoPoint {
    // Constructors assert routes are non-empty, so `first`/`last` always
    // exist; the fallbacks keep this helper total without a panic path.
    let Some(&first) = route.first() else {
        return GeoPoint::new(0.0, 0.0);
    };
    let last = *route.last().unwrap_or(&first);
    if route.len() == 1 {
        return first;
    }
    let mut legs: Vec<(GeoPoint, GeoPoint, f64)> = route
        .windows(2)
        .map(|w| (w[0], w[1], w[0].distance_m(&w[1])))
        .collect();
    if loop_route {
        legs.push((last, first, last.distance_m(&first)));
    }
    let total: f64 = legs.iter().map(|l| l.2).sum();
    if total <= f64::EPSILON {
        return first;
    }
    let mut remaining = if loop_route {
        travelled_m % total
    } else {
        travelled_m.min(total)
    };
    for (from, to, len) in &legs {
        if remaining <= *len {
            let t = if *len <= f64::EPSILON {
                0.0
            } else {
                remaining / len
            };
            return from.lerp(to, t);
        }
        remaining -= len;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> GeoPoint {
        GeoPoint::new(28.5355, 77.3910)
    }

    #[test]
    fn stationary_stays_put() {
        let mut m = MovementModel::stationary();
        assert_eq!(m.position_at(0, origin()), origin());
        assert_eq!(m.position_at(1_000_000, origin()), origin());
    }

    #[test]
    fn linear_moves_at_speed() {
        let mut m = MovementModel::linear(origin(), 90.0, 5.0);
        let p = m.position_at(60_000, origin()); // 60 s at 5 m/s = 300 m
        assert!((origin().distance_m(&p) - 300.0).abs() < 0.5);
    }

    #[test]
    fn linear_at_time_zero_is_start() {
        let mut m = MovementModel::linear(origin(), 10.0, 3.0);
        let p = m.position_at(0, GeoPoint::new(0.0, 0.0));
        assert!(origin().distance_m(&p) < 1e-6);
    }

    #[test]
    fn waypoints_start_and_end() {
        let a = origin();
        let b = a.destination(0.0, 1000.0);
        let mut m = MovementModel::waypoints(vec![a, b], 10.0);
        assert!(a.distance_m(&m.position_at(0, a)) < 1e-6);
        // 1000 m at 10 m/s = 100 s; after 200 s it stays at the end.
        assert!(b.distance_m(&m.position_at(200_000, a)) < 0.5);
    }

    #[test]
    fn waypoints_midpoint() {
        let a = origin();
        let b = a.destination(0.0, 1000.0);
        let mut m = MovementModel::waypoints(vec![a, b], 10.0);
        let mid = m.position_at(50_000, a); // 500 m along
        assert!((a.distance_m(&mid) - 500.0).abs() < 1.0);
    }

    #[test]
    fn waypoint_loop_wraps() {
        let a = origin();
        let b = a.destination(90.0, 100.0);
        let mut m = MovementModel::waypoint_loop(vec![a, b], 10.0);
        // Full loop is 200 m = 20 s; at 20 s the device is back at a.
        let p = m.position_at(20_000, a);
        assert!(a.distance_m(&p) < 1.0, "distance {}", a.distance_m(&p));
    }

    #[test]
    fn single_waypoint_route_is_fixed() {
        let mut m = MovementModel::waypoints(vec![origin()], 5.0);
        assert_eq!(m.position_at(99_999, GeoPoint::new(0.0, 0.0)), origin());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_route_panics() {
        let _ = MovementModel::waypoints(vec![], 5.0);
    }

    #[test]
    fn random_walk_is_deterministic() {
        let mut m1 = MovementModel::random_walk(7, 10.0, 1000);
        let mut m2 = MovementModel::random_walk(7, 10.0, 1000);
        let p1 = m1.position_at(10_000, origin());
        let p2 = m2.position_at(10_000, origin());
        assert_eq!(p1, p2);
    }

    #[test]
    fn random_walk_same_position_regardless_of_query_order() {
        let mut forward = MovementModel::random_walk(11, 5.0, 500);
        let mut jump = MovementModel::random_walk(11, 5.0, 500);
        // Query forward step by step vs jumping straight to t.
        let mut last = GeoPoint::default();
        for t in (0..=8_000).step_by(500) {
            last = forward.position_at(t, origin());
        }
        let direct = jump.position_at(8_000, origin());
        assert_eq!(last, direct);
    }

    #[test]
    fn random_walk_steps_have_fixed_length() {
        let mut m = MovementModel::random_walk(3, 25.0, 1000);
        let p0 = m.position_at(0, origin());
        let p1 = m.position_at(1000, origin());
        assert!((p0.distance_m(&p1) - 25.0).abs() < 0.1);
    }
}
