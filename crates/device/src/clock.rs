//! Virtual time for the simulated handset.
//!
//! All platform behaviour (GPS fixes, SMS delivery, proximity-alert
//! expiration) is driven off [`SimClock`] rather than the wall clock, so
//! tests and benchmarks are deterministic. The clock only moves when
//! [`SimClock::advance_ms`] (or [`SimClock::advance_to`]) is called; the
//! device's event scheduler is pumped as part of the same advance (see
//! [`crate::device::Device::advance_ms`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable, monotonically advancing virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* underlying time
/// source; all components of one [`crate::Device`] share one clock.
///
/// # Example
///
/// ```
/// use mobivine_device::clock::SimClock;
///
/// let clock = SimClock::new();
/// assert_eq!(clock.now_ms(), 0);
/// clock.advance_ms(250);
/// let handle = clock.clone();
/// assert_eq!(handle.now_ms(), 250);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start_ms` milliseconds.
    pub fn starting_at(start_ms: u64) -> Self {
        let clock = Self::new();
        clock.now_ms.store(start_ms, Ordering::SeqCst);
        clock
    }

    /// Current virtual time in milliseconds since simulation start.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    /// Current virtual time in whole seconds (the granularity used by the
    /// paper's S60 code fragments, which divide `currentTimeMillis` by
    /// 1000).
    pub fn now_secs(&self) -> u64 {
        self.now_ms() / 1000
    }

    /// Advances the clock by `delta_ms` milliseconds and returns the new
    /// time.
    pub fn advance_ms(&self, delta_ms: u64) -> u64 {
        self.now_ms.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Advances the clock to an absolute time.
    ///
    /// Returns `true` if the clock moved. A target in the past is ignored
    /// (virtual time is monotone), returning `false`.
    pub fn advance_to(&self, target_ms: u64) -> bool {
        let mut current = self.now_ms.load(Ordering::SeqCst);
        loop {
            if target_ms <= current {
                return false;
            }
            match self.now_ms.compare_exchange(
                current,
                target_ms,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now_ms(), 0);
    }

    #[test]
    fn starting_at_sets_origin() {
        assert_eq!(SimClock::starting_at(5_000).now_ms(), 5_000);
    }

    #[test]
    fn advance_accumulates() {
        let clock = SimClock::new();
        clock.advance_ms(10);
        clock.advance_ms(15);
        assert_eq!(clock.now_ms(), 25);
    }

    #[test]
    fn clones_share_time() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance_ms(42);
        assert_eq!(other.now_ms(), 42);
        other.advance_ms(8);
        assert_eq!(clock.now_ms(), 50);
    }

    #[test]
    fn advance_to_is_monotone() {
        let clock = SimClock::new();
        assert!(clock.advance_to(100));
        assert!(!clock.advance_to(50));
        assert_eq!(clock.now_ms(), 100);
        assert!(!clock.advance_to(100));
    }

    #[test]
    fn now_secs_truncates() {
        let clock = SimClock::new();
        clock.advance_ms(1_999);
        assert_eq!(clock.now_secs(), 1);
        clock.advance_ms(1);
        assert_eq!(clock.now_secs(), 2);
    }

    #[test]
    fn clock_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimClock>();
    }
}
