//! Deterministic event scheduler.
//!
//! Components of the simulated handset (the GPS engine, the SMSC, the call
//! switch, the network) register callbacks to fire at absolute virtual
//! times. [`crate::device::Device::advance_ms`] pumps due events in timestamp
//! order; ties break by insertion order, so runs are fully deterministic.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::fmt;

use parking_lot::Mutex;

/// A callback scheduled to run at a virtual time.
type EventFn = Box<dyn FnOnce(u64) + Send>;

struct ScheduledEvent {
    fire_at_ms: u64,
    seq: u64,
    label: &'static str,
    callback: EventFn,
}

impl fmt::Debug for ScheduledEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduledEvent")
            .field("fire_at_ms", &self.fire_at_ms)
            .field("seq", &self.seq)
            .field("label", &self.label)
            .finish()
    }
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at_ms == other.fire_at_ms && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert so the earliest event (and for
        // ties, the earliest-inserted) pops first.
        other
            .fire_at_ms
            .cmp(&self.fire_at_ms)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Identifier of a scheduled event, used to cancel it.
///
/// ```
/// use mobivine_device::event::EventQueue;
///
/// let queue = EventQueue::new();
/// let id = queue.schedule_at(10, "tick", |_| {});
/// assert!(queue.cancel(id));
/// assert!(!queue.cancel(id));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

struct QueueState {
    heap: BinaryHeap<ScheduledEvent>,
    cancelled: Vec<u64>,
    next_seq: u64,
}

/// A thread-safe priority queue of virtual-time events.
///
/// # Example
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use mobivine_device::event::EventQueue;
///
/// let queue = EventQueue::new();
/// let fired = Arc::new(Mutex::new(Vec::new()));
/// let sink = Arc::clone(&fired);
/// queue.schedule_at(20, "b", move |at| sink.lock().unwrap().push(at));
/// let sink = Arc::clone(&fired);
/// queue.schedule_at(10, "a", move |at| sink.lock().unwrap().push(at));
/// queue.run_until(25);
/// assert_eq!(*fired.lock().unwrap(), vec![10, 20]);
/// ```
pub struct EventQueue {
    state: Mutex<QueueState>,
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("EventQueue")
            .field("pending", &state.heap.len())
            .finish()
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                cancelled: Vec::new(),
                next_seq: 0,
            }),
        }
    }

    /// Schedules `callback` to fire at absolute virtual time
    /// `fire_at_ms`. The callback receives the fire time.
    pub fn schedule_at<F>(&self, fire_at_ms: u64, label: &'static str, callback: F) -> EventId
    where
        F: FnOnce(u64) + Send + 'static,
    {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(ScheduledEvent {
            fire_at_ms,
            seq,
            label,
            callback: Box::new(callback),
        });
        EventId(seq)
    }

    /// Cancels a scheduled event.
    ///
    /// Returns `true` if the event was still pending; `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&self, id: EventId) -> bool {
        let mut state = self.state.lock();
        let pending = state.heap.iter().any(|e| e.seq == id.0);
        if pending && !state.cancelled.contains(&id.0) {
            state.cancelled.push(id.0);
            true
        } else {
            false
        }
    }

    /// Number of pending (not yet fired, not cancelled) events.
    pub fn pending(&self) -> usize {
        let state = self.state.lock();
        state
            .heap
            .iter()
            .filter(|e| !state.cancelled.contains(&e.seq))
            .count()
    }

    /// Virtual time of the next pending event, if any.
    pub fn next_fire_time(&self) -> Option<u64> {
        let state = self.state.lock();
        state
            .heap
            .iter()
            .filter(|e| !state.cancelled.contains(&e.seq))
            .map(|e| e.fire_at_ms)
            .min()
    }

    /// Fires, in order, every event with `fire_at_ms <= now_ms`.
    ///
    /// Returns the number of callbacks executed. Callbacks may schedule
    /// further events; newly scheduled events that are also due within
    /// `now_ms` fire in the same call.
    pub fn run_until(&self, now_ms: u64) -> usize {
        let mut fired = 0;
        loop {
            let event = {
                let mut state = self.state.lock();
                let due = matches!(state.heap.peek(), Some(next) if next.fire_at_ms <= now_ms);
                if !due {
                    break;
                }
                let Some(event) = state.heap.pop() else { break };
                if let Some(pos) = state.cancelled.iter().position(|&s| s == event.seq) {
                    state.cancelled.swap_remove(pos);
                    continue;
                }
                event
            };
            // Run outside the lock so callbacks can schedule/cancel.
            (event.callback)(event.fire_at_ms);
            fired += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex as StdMutex};

    #[test]
    fn fires_in_timestamp_order() {
        let queue = EventQueue::new();
        let order = Arc::new(StdMutex::new(Vec::new()));
        for (t, tag) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let order = Arc::clone(&order);
            queue.schedule_at(t, "test", move |_| order.lock().unwrap().push(tag));
        }
        queue.run_until(100);
        assert_eq!(*order.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let queue = EventQueue::new();
        let order = Arc::new(StdMutex::new(Vec::new()));
        for tag in ["first", "second", "third"] {
            let order = Arc::clone(&order);
            queue.schedule_at(5, "tie", move |_| order.lock().unwrap().push(tag));
        }
        queue.run_until(5);
        assert_eq!(*order.lock().unwrap(), vec!["first", "second", "third"]);
    }

    #[test]
    fn run_until_is_inclusive() {
        let queue = EventQueue::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        queue.schedule_at(10, "edge", move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(queue.run_until(9), 0);
        assert_eq!(queue.run_until(10), 1);
    }

    #[test]
    fn cancelled_event_does_not_fire() {
        let queue = EventQueue::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let id = queue.schedule_at(10, "cancel-me", move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert!(queue.cancel(id));
        assert_eq!(queue.run_until(100), 0);
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let queue = EventQueue::new();
        let id = queue.schedule_at(10, "fires", |_| {});
        queue.run_until(10);
        assert!(!queue.cancel(id));
    }

    #[test]
    fn callbacks_can_schedule_more_events() {
        let queue = Arc::new(EventQueue::new());
        let count = Arc::new(AtomicUsize::new(0));
        let q = Arc::clone(&queue);
        let c = Arc::clone(&count);
        queue.schedule_at(10, "outer", move |at| {
            let c2 = Arc::clone(&c);
            q.schedule_at(at + 5, "inner", move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            });
        });
        // Inner event (t=15) is due within the same run_until(20).
        assert_eq!(queue.run_until(20), 2);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pending_and_next_fire_time() {
        let queue = EventQueue::new();
        assert_eq!(queue.pending(), 0);
        assert_eq!(queue.next_fire_time(), None);
        let id = queue.schedule_at(40, "later", |_| {});
        queue.schedule_at(30, "sooner", |_| {});
        assert_eq!(queue.pending(), 2);
        assert_eq!(queue.next_fire_time(), Some(30));
        queue.cancel(id);
        assert_eq!(queue.pending(), 1);
        assert_eq!(queue.next_fire_time(), Some(30));
    }
}
