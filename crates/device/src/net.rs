//! Simulated HTTP network with in-process servers.
//!
//! The workforce-management application of the paper communicates with a
//! server-side component over HTTP. This module provides the transport:
//! a [`SimNetwork`] hosting named servers with routed handlers, a latency
//! model (round-trip base cost plus bandwidth-proportional transfer time),
//! and failure injection (network down, unknown hosts).

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use mobivine_telemetry::span::{ambient, Plane};
use mobivine_telemetry::{Counter, Histogram, Labels, MetricsRegistry};
use parking_lot::Mutex;

use crate::clock::SimClock;
use crate::event::EventQueue;

/// HTTP request method (the subset the 2009-era mobile stacks exposed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Submit an entity.
    Post,
    /// Replace an entity.
    Put,
    /// Delete a resource.
    Delete,
    /// Headers only.
    Head,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        };
        f.write_str(s)
    }
}

impl FromStr for Method {
    type Err = UrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "PUT" => Ok(Method::Put),
            "DELETE" => Ok(Method::Delete),
            "HEAD" => Ok(Method::Head),
            _ => Err(UrlError::UnsupportedMethod),
        }
    }
}

/// A parsed `http://host[:port]/path[?query]` URL.
///
/// # Example
///
/// ```
/// use mobivine_device::net::Url;
///
/// let url: Url = "http://wfm.example:8080/tasks?agent=7".parse().unwrap();
/// assert_eq!(url.host, "wfm.example");
/// assert_eq!(url.port, 8080);
/// assert_eq!(url.path, "/tasks");
/// assert_eq!(url.query.as_deref(), Some("agent=7"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// Host name.
    pub host: String,
    /// TCP port (default 80).
    pub port: u16,
    /// Absolute path, always starting with `/`.
    pub path: String,
    /// Raw query string without the leading `?`.
    pub query: Option<String>,
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http://{}:{}{}", self.host, self.port, self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

/// Error parsing a URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UrlError {
    /// Missing or unsupported scheme (only `http` is simulated).
    BadScheme,
    /// Empty or malformed host/port.
    BadAuthority,
    /// Method string not recognized.
    UnsupportedMethod,
}

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlError::BadScheme => write!(f, "unsupported or missing url scheme"),
            UrlError::BadAuthority => write!(f, "malformed host or port"),
            UrlError::UnsupportedMethod => write!(f, "unsupported http method"),
        }
    }
}

impl std::error::Error for UrlError {}

impl FromStr for Url {
    type Err = UrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s.strip_prefix("http://").ok_or(UrlError::BadScheme)?;
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(UrlError::BadAuthority);
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| UrlError::BadAuthority)?;
                (h, port)
            }
            None => (authority, 80),
        };
        if host.is_empty() {
            return Err(UrlError::BadAuthority);
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
            None => (path_query.to_owned(), None),
        };
        Ok(Url {
            host: host.to_owned(),
            port,
            path,
            query,
        })
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Header name/value pairs (names case-preserved, matched
    /// case-insensitively).
    pub headers: Vec<(String, String)>,
    /// Entity body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Builds a GET request for `url`.
    ///
    /// # Errors
    ///
    /// Returns [`UrlError`] if `url` does not parse.
    pub fn get(url: &str) -> Result<Self, UrlError> {
        Ok(Self {
            method: Method::Get,
            url: url.parse()?,
            headers: Vec::new(),
            body: Vec::new(),
        })
    }

    /// Builds a POST request with `body`.
    ///
    /// # Errors
    ///
    /// Returns [`UrlError`] if `url` does not parse.
    pub fn post(url: &str, body: impl Into<Vec<u8>>) -> Result<Self, UrlError> {
        Ok(Self {
            method: Method::Post,
            url: url.parse()?,
            headers: Vec::new(),
            body: body.into(),
        })
    }

    /// Adds a header and returns `self` for chaining.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Looks up a header value, case-insensitively.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Entity body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` response with a UTF-8 text body.
    pub fn ok(body: impl Into<Vec<u8>>) -> Self {
        Self {
            status: 200,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A response with `status` and an empty body.
    pub fn status_only(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header (builder-style).
    #[must_use]
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The first header named `name` (case-insensitive), if present.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Transport-level failure (distinct from HTTP error statuses, which are
/// successful transports carrying a non-2xx code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkError {
    /// No server registered for the host.
    UnknownHost,
    /// The data bearer (GPRS in the paper's era) is down.
    NetworkDown,
    /// The request exceeded the configured timeout.
    TimedOut,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownHost => write!(f, "unknown host"),
            NetworkError::NetworkDown => write!(f, "network down"),
            NetworkError::TimedOut => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Server-side request handler.
pub type RouteHandler = Box<dyn Fn(&HttpRequest) -> HttpResponse + Send>;

struct Server {
    routes: HashMap<(Method, String), RouteHandler>,
}

struct NetState {
    servers: HashMap<String, Server>,
    base_latency_ms: u64,
    bytes_per_ms: u64,
    down: bool,
}

#[derive(Clone)]
struct NetMetrics {
    requests: Counter,
    errors: Counter,
    rtt: Histogram,
    clock: SimClock,
}

/// The simulated network: registered servers plus a latency model.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mobivine_device::event::EventQueue;
/// use mobivine_device::net::{HttpRequest, HttpResponse, Method, SimNetwork};
///
/// let events = Arc::new(EventQueue::new());
/// let net = SimNetwork::new(events);
/// net.register_route("wfm.example", Method::Get, "/ping", |_req| {
///     HttpResponse::ok("pong")
/// });
/// let req = HttpRequest::get("http://wfm.example/ping")?;
/// let (response, _elapsed_ms) = net.execute(&req)?;
/// assert_eq!(response.body_text(), "pong");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SimNetwork {
    events: Arc<EventQueue>,
    state: Arc<Mutex<NetState>>,
    metrics: Mutex<Option<NetMetrics>>,
}

impl fmt::Debug for SimNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("SimNetwork")
            .field("servers", &state.servers.len())
            .field("down", &state.down)
            .finish()
    }
}

impl SimNetwork {
    /// Creates a network pumping async completions through `events`.
    pub fn new(events: Arc<EventQueue>) -> Self {
        Self {
            events,
            state: Arc::new(Mutex::new(NetState {
                servers: HashMap::new(),
                base_latency_ms: 60,
                bytes_per_ms: 4_096,
                down: false,
            })),
            metrics: Mutex::new(None),
        }
    }

    /// Connects this network to a metrics registry. The clock is needed
    /// because the network does not own one: request spans start at the
    /// current virtual time and end after the simulated round trip.
    /// Until bound, the network publishes nothing.
    pub fn bind_metrics(&self, registry: Arc<MetricsRegistry>, clock: SimClock) {
        *self.metrics.lock() = Some(NetMetrics {
            requests: registry.counter("device_net_requests_total", &Labels::empty()),
            errors: registry.counter("device_net_errors_total", &Labels::empty()),
            rtt: registry.histogram("device_net_rtt_ms", &Labels::empty()),
            clock,
        });
    }

    /// Registers a handler for `(method, path)` on `host`, creating the
    /// server if needed. Re-registering a route replaces the handler.
    pub fn register_route<F>(&self, host: &str, method: Method, path: &str, handler: F)
    where
        F: Fn(&HttpRequest) -> HttpResponse + Send + 'static,
    {
        let mut state = self.state.lock();
        state
            .servers
            .entry(host.to_owned())
            .or_insert_with(|| Server {
                routes: HashMap::new(),
            })
            .routes
            .insert((method, path.to_owned()), Box::new(handler));
    }

    /// Brings the data bearer up or down.
    pub fn set_down(&self, down: bool) {
        self.state.lock().down = down;
    }

    /// Whether the data bearer is currently down.
    pub fn is_down(&self) -> bool {
        self.state.lock().down
    }

    /// Sets the round-trip base latency (default 60 ms).
    pub fn set_base_latency_ms(&self, ms: u64) {
        self.state.lock().base_latency_ms = ms;
    }

    /// Sets the transfer rate in bytes per millisecond (default 4096,
    /// i.e. ~4 MB/s).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_ms` is zero.
    pub fn set_bytes_per_ms(&self, bytes_per_ms: u64) {
        assert!(bytes_per_ms > 0, "transfer rate must be non-zero");
        self.state.lock().bytes_per_ms = bytes_per_ms;
    }

    /// Computes the simulated round-trip time for a request/response pair
    /// of the given total byte size.
    pub fn round_trip_ms(&self, total_bytes: usize) -> u64 {
        let state = self.state.lock();
        state.base_latency_ms + (total_bytes as u64) / state.bytes_per_ms
    }

    /// Executes a request synchronously, returning the response and the
    /// simulated elapsed milliseconds (the caller advances its clock).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NetworkDown`] if the bearer is down, or
    /// [`NetworkError::UnknownHost`] if no server is registered for the
    /// URL's host. An unrouted path on a known host is a *successful*
    /// transport returning `404`.
    pub fn execute(&self, request: &HttpRequest) -> Result<(HttpResponse, u64), NetworkError> {
        let metrics = self.metrics.lock().clone();
        let now = metrics.as_ref().map(|m| m.clock.now_ms()).unwrap_or(0);
        let mut span = ambient::child("device:net.request", Plane::Device, now);
        if let Some(s) = span.as_mut() {
            s.attr("method", request.method.to_string());
            s.attr("host", request.url.host.clone());
            s.attr("path", request.url.path.clone());
        }
        if let Some(m) = &metrics {
            m.requests.inc();
        }
        let outcome = self.execute_inner(request);
        match &outcome {
            Ok((response, elapsed)) => {
                if let Some(m) = &metrics {
                    m.rtt.record(*elapsed);
                }
                if let Some(mut s) = span {
                    s.attr("status", response.status.to_string());
                    s.end(now + elapsed);
                }
            }
            Err(err) => {
                if let Some(m) = &metrics {
                    m.errors.inc();
                }
                if let Some(mut s) = span {
                    s.attr("error", err.to_string());
                    s.end(now);
                }
            }
        }
        outcome
    }

    fn execute_inner(&self, request: &HttpRequest) -> Result<(HttpResponse, u64), NetworkError> {
        let response = {
            let state = self.state.lock();
            if state.down {
                return Err(NetworkError::NetworkDown);
            }
            let server = state
                .servers
                .get(&request.url.host)
                .ok_or(NetworkError::UnknownHost)?;
            match server
                .routes
                .get(&(request.method, request.url.path.clone()))
            {
                Some(handler) => handler(request),
                None => HttpResponse::status_only(404),
            }
        };
        let elapsed = self.round_trip_ms(request.body.len() + response.body.len());
        Ok((response, elapsed))
    }

    /// Executes a request asynchronously: the callback fires with the
    /// result when the event queue is pumped past `now_ms + round-trip`.
    ///
    /// Transport failures are evaluated at submission time and still
    /// delivered asynchronously (after the base latency), matching how a
    /// real stack reports connection errors.
    pub fn execute_async<F>(&self, request: HttpRequest, now_ms: u64, callback: F)
    where
        F: FnOnce(Result<HttpResponse, NetworkError>) + Send + 'static,
    {
        let outcome = self.execute(&request);
        let (fire_at, result) = match outcome {
            Ok((response, elapsed)) => (now_ms + elapsed, Ok(response)),
            Err(err) => (now_ms + self.state.lock().base_latency_ms, Err(err)),
        };
        self.events.schedule_at(fire_at, "http-complete", move |_| {
            callback(result);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    fn network() -> (Arc<EventQueue>, SimNetwork) {
        let events = Arc::new(EventQueue::new());
        let net = SimNetwork::new(Arc::clone(&events));
        (events, net)
    }

    #[test]
    fn url_parses_full_form() {
        let url: Url = "http://h.example:8080/a/b?x=1&y=2".parse().unwrap();
        assert_eq!(url.host, "h.example");
        assert_eq!(url.port, 8080);
        assert_eq!(url.path, "/a/b");
        assert_eq!(url.query.as_deref(), Some("x=1&y=2"));
    }

    #[test]
    fn url_defaults_port_and_path() {
        let url: Url = "http://h.example".parse().unwrap();
        assert_eq!(url.port, 80);
        assert_eq!(url.path, "/");
        assert_eq!(url.query, None);
    }

    #[test]
    fn url_rejects_bad_scheme_and_host() {
        assert_eq!("ftp://x/".parse::<Url>(), Err(UrlError::BadScheme));
        assert_eq!("http://".parse::<Url>(), Err(UrlError::BadAuthority));
        assert_eq!(
            "http://h:notaport/".parse::<Url>(),
            Err(UrlError::BadAuthority)
        );
    }

    #[test]
    fn url_display_round_trips() {
        let s = "http://h.example:81/p?q=1";
        let url: Url = s.parse().unwrap();
        assert_eq!(url.to_string(), s);
        assert_eq!(url.to_string().parse::<Url>().unwrap(), url);
    }

    #[test]
    fn routed_request_gets_handler_response() {
        let (_events, net) = network();
        net.register_route("s", Method::Get, "/hello", |_| HttpResponse::ok("hi"));
        let req = HttpRequest::get("http://s/hello").unwrap();
        let (resp, elapsed) = net.execute(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text(), "hi");
        assert!(elapsed >= 60);
    }

    #[test]
    fn unrouted_path_is_404() {
        let (_events, net) = network();
        net.register_route("s", Method::Get, "/hello", |_| HttpResponse::ok("hi"));
        let req = HttpRequest::get("http://s/missing").unwrap();
        let (resp, _) = net.execute(&req).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn unknown_host_is_transport_error() {
        let (_events, net) = network();
        let req = HttpRequest::get("http://ghost/x").unwrap();
        assert_eq!(net.execute(&req), Err(NetworkError::UnknownHost));
    }

    #[test]
    fn network_down_fails_everything() {
        let (_events, net) = network();
        net.register_route("s", Method::Get, "/x", |_| HttpResponse::ok(""));
        net.set_down(true);
        let req = HttpRequest::get("http://s/x").unwrap();
        assert_eq!(net.execute(&req), Err(NetworkError::NetworkDown));
        net.set_down(false);
        assert!(net.execute(&req).is_ok());
    }

    #[test]
    fn handler_sees_method_body_and_headers() {
        let (_events, net) = network();
        net.register_route("s", Method::Post, "/echo", |req| {
            assert_eq!(req.header_value("content-type"), Some("text/plain"));
            HttpResponse::ok(req.body.clone())
        });
        let req = HttpRequest::post("http://s/echo", "payload")
            .unwrap()
            .header("Content-Type", "text/plain");
        let (resp, _) = net.execute(&req).unwrap();
        assert_eq!(resp.body_text(), "payload");
    }

    #[test]
    fn latency_grows_with_payload() {
        let (_events, net) = network();
        net.set_base_latency_ms(10);
        net.set_bytes_per_ms(1);
        net.register_route("s", Method::Post, "/big", |_| HttpResponse::ok(""));
        let small = HttpRequest::post("http://s/big", vec![0u8; 10]).unwrap();
        let large = HttpRequest::post("http://s/big", vec![0u8; 1000]).unwrap();
        let (_, t_small) = net.execute(&small).unwrap();
        let (_, t_large) = net.execute(&large).unwrap();
        assert!(t_large > t_small);
        assert_eq!(t_small, 20);
        assert_eq!(t_large, 1010);
    }

    #[test]
    fn async_execution_fires_after_latency() {
        let (events, net) = network();
        net.register_route("s", Method::Get, "/x", |_| HttpResponse::ok("ok"));
        let result = Arc::new(StdMutex::new(None));
        let sink = Arc::clone(&result);
        let req = HttpRequest::get("http://s/x").unwrap();
        net.execute_async(req, 0, move |r| {
            *sink.lock().unwrap() = Some(r);
        });
        assert!(result.lock().unwrap().is_none());
        events.run_until(1_000);
        let got = result.lock().unwrap().take().unwrap().unwrap();
        assert_eq!(got.body_text(), "ok");
    }

    #[test]
    fn async_transport_error_delivered_async() {
        let (events, net) = network();
        let result = Arc::new(StdMutex::new(None));
        let sink = Arc::clone(&result);
        let req = HttpRequest::get("http://ghost/x").unwrap();
        net.execute_async(req, 0, move |r| {
            *sink.lock().unwrap() = Some(r);
        });
        events.run_until(1_000);
        assert_eq!(
            result.lock().unwrap().take().unwrap(),
            Err(NetworkError::UnknownHost)
        );
    }

    #[test]
    fn method_parses_case_insensitively() {
        assert_eq!("get".parse::<Method>().unwrap(), Method::Get);
        assert_eq!("POST".parse::<Method>().unwrap(), Method::Post);
        assert!("PATCH".parse::<Method>().is_err());
    }
}
