//! On-device calendar store.
//!
//! Companion substrate to [`crate::contacts`] for the paper's
//! future-work "calendaring" interface (§7).

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::Mutex;

/// Identifier of a calendar entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(u64);

/// A calendar entry on the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalendarEntry {
    /// Store-assigned identifier.
    pub id: EntryId,
    /// Title shown to the user.
    pub title: String,
    /// Start, in virtual milliseconds.
    pub start_ms: u64,
    /// End, in virtual milliseconds (must be ≥ start).
    pub end_ms: u64,
    /// Free-form location text.
    pub location: String,
}

/// Error adding a calendar entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalendarError {
    /// End time precedes start time.
    EndBeforeStart,
}

impl fmt::Display for CalendarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalendarError::EndBeforeStart => write!(f, "entry end precedes start"),
        }
    }
}

impl std::error::Error for CalendarError {}

/// The device's calendar database.
///
/// # Example
///
/// ```
/// use mobivine_device::calendar::CalendarStore;
///
/// let store = CalendarStore::new();
/// store.add("Site visit", 1_000, 2_000, "Depot 4")?;
/// assert_eq!(store.entries_between(0, 1_500).len(), 1);
/// # Ok::<(), mobivine_device::calendar::CalendarError>(())
/// ```
#[derive(Default)]
pub struct CalendarStore {
    state: Mutex<StoreState>,
}

#[derive(Default)]
struct StoreState {
    next_id: u64,
    entries: BTreeMap<EntryId, CalendarEntry>,
}

impl fmt::Debug for CalendarStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CalendarStore")
            .field("count", &self.state.lock().entries.len())
            .finish()
    }
}

impl CalendarStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry.
    ///
    /// # Errors
    ///
    /// Returns [`CalendarError::EndBeforeStart`] if `end_ms < start_ms`.
    pub fn add(
        &self,
        title: &str,
        start_ms: u64,
        end_ms: u64,
        location: &str,
    ) -> Result<EntryId, CalendarError> {
        if end_ms < start_ms {
            return Err(CalendarError::EndBeforeStart);
        }
        let mut state = self.state.lock();
        state.next_id += 1;
        let id = EntryId(state.next_id);
        state.entries.insert(
            id,
            CalendarEntry {
                id,
                title: title.to_owned(),
                start_ms,
                end_ms,
                location: location.to_owned(),
            },
        );
        Ok(id)
    }

    /// Fetches an entry by id.
    pub fn get(&self, id: EntryId) -> Option<CalendarEntry> {
        self.state.lock().entries.get(&id).cloned()
    }

    /// Removes an entry; returns it if it existed.
    pub fn remove(&self, id: EntryId) -> Option<CalendarEntry> {
        self.state.lock().entries.remove(&id)
    }

    /// Entries overlapping the closed interval `[from_ms, to_ms]`, in id
    /// order.
    pub fn entries_between(&self, from_ms: u64, to_ms: u64) -> Vec<CalendarEntry> {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| e.start_ms <= to_ms && e.end_ms >= from_ms)
            .cloned()
            .collect()
    }

    /// The next entry starting at or after `now_ms`, if any.
    pub fn next_after(&self, now_ms: u64) -> Option<CalendarEntry> {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| e.start_ms >= now_ms)
            .min_by_key(|e| e.start_ms)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_overlap() {
        let store = CalendarStore::new();
        store.add("A", 100, 200, "x").unwrap();
        store.add("B", 300, 400, "y").unwrap();
        assert_eq!(store.entries_between(150, 160).len(), 1);
        assert_eq!(store.entries_between(0, 1_000).len(), 2);
        assert!(store.entries_between(201, 299).is_empty());
    }

    #[test]
    fn overlap_is_inclusive_at_edges() {
        let store = CalendarStore::new();
        store.add("Edge", 100, 200, "x").unwrap();
        assert_eq!(store.entries_between(200, 300).len(), 1);
        assert_eq!(store.entries_between(0, 100).len(), 1);
    }

    #[test]
    fn rejects_end_before_start() {
        let store = CalendarStore::new();
        assert_eq!(
            store.add("Bad", 200, 100, ""),
            Err(CalendarError::EndBeforeStart)
        );
    }

    #[test]
    fn zero_length_entries_allowed() {
        let store = CalendarStore::new();
        assert!(store.add("Ping", 100, 100, "").is_ok());
    }

    #[test]
    fn next_after_picks_earliest_future_entry() {
        let store = CalendarStore::new();
        store.add("Later", 500, 600, "").unwrap();
        store.add("Sooner", 300, 350, "").unwrap();
        assert_eq!(store.next_after(100).unwrap().title, "Sooner");
        assert_eq!(store.next_after(400).unwrap().title, "Later");
        assert!(store.next_after(700).is_none());
    }

    #[test]
    fn remove_deletes() {
        let store = CalendarStore::new();
        let id = store.add("Gone", 1, 2, "").unwrap();
        assert!(store.remove(id).is_some());
        assert!(store.get(id).is_none());
    }
}
