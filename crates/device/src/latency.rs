//! Calibrated native-API latency model.
//!
//! Figure 10 of the paper reports the wall-clock time of native platform
//! API invocations (without proxies) on real handsets. Those absolute
//! numbers are testbed-specific; what the figure demonstrates is that the
//! *proxy overhead on top of them* is a small fraction. To reproduce the
//! figure's shape we calibrate each simulated platform's native call cost
//! to the paper's measured value, and let the real (measured) Rust-side
//! proxy code add its genuine overhead on top.
//!
//! Two presets exist per platform: **paper scale** (milliseconds, used by
//! the `figure10` report binary) and **bench scale** (the same values in
//! microseconds, used by the Criterion benches so they finish quickly).
//! A zero-cost model is the default for unit tests.

use std::fmt;
use std::time::{Duration, Instant};

/// The native platform API whose invocation cost is being modelled.
///
/// These are the interfaces the paper implements proxies for (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeApi {
    /// Register a proximity alert.
    AddProximityAlert,
    /// Obtain the current location.
    GetLocation,
    /// Send a text message.
    SendSms,
    /// Place a voice call.
    MakeCall,
    /// Perform an HTTP interaction.
    HttpRequest,
}

impl NativeApi {
    /// All modelled APIs, in the order Figure 10 lists them.
    pub const ALL: [NativeApi; 5] = [
        NativeApi::AddProximityAlert,
        NativeApi::GetLocation,
        NativeApi::SendSms,
        NativeApi::MakeCall,
        NativeApi::HttpRequest,
    ];
}

impl fmt::Display for NativeApi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NativeApi::AddProximityAlert => "addProximityAlert",
            NativeApi::GetLocation => "getLocation",
            NativeApi::SendSms => "sendSMS",
            NativeApi::MakeCall => "makeACall",
            NativeApi::HttpRequest => "http",
        };
        f.write_str(s)
    }
}

/// Native API costs in microseconds, applied as a real wall-clock wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    add_proximity_alert_us: u64,
    get_location_us: u64,
    send_sms_us: u64,
    make_call_us: u64,
    http_request_us: u64,
}

/// Figure 10 native ("Without Proxy") measurements, in milliseconds:
/// `(addProximityAlert, getLocation, sendSMS)`.
pub const PAPER_ANDROID_MS: (f64, f64, f64) = (53.6, 15.5, 52.7);
/// Figure 10 Android WebView native measurements, in milliseconds.
pub const PAPER_WEBVIEW_MS: (f64, f64, f64) = (78.4, 120.0, 91.6);
/// Figure 10 Nokia S60 native measurements, in milliseconds.
pub const PAPER_S60_MS: (f64, f64, f64) = (141.0, 140.8, 15.6);

impl Default for LatencyModel {
    fn default() -> Self {
        Self::zero()
    }
}

impl LatencyModel {
    /// A model where every native call is free (unit-test default).
    pub const fn zero() -> Self {
        Self {
            add_proximity_alert_us: 0,
            get_location_us: 0,
            send_sms_us: 0,
            make_call_us: 0,
            http_request_us: 0,
        }
    }

    /// Builds a model from per-API microsecond costs for the three
    /// Figure 10 APIs; call and HTTP costs default to the SMS and
    /// location costs respectively (the paper does not report them).
    pub const fn from_us(add_proximity_alert: u64, get_location: u64, send_sms: u64) -> Self {
        Self {
            add_proximity_alert_us: add_proximity_alert,
            get_location_us: get_location,
            send_sms_us: send_sms,
            make_call_us: send_sms,
            http_request_us: get_location,
        }
    }

    /// Paper-scale Android model (milliseconds, as in Figure 10).
    pub const fn paper_android() -> Self {
        Self::from_us(53_600, 15_500, 52_700)
    }

    /// Paper-scale Android WebView model.
    pub const fn paper_webview() -> Self {
        Self::from_us(78_400, 120_000, 91_600)
    }

    /// Paper-scale Nokia S60 model.
    pub const fn paper_s60() -> Self {
        Self::from_us(141_000, 140_800, 15_600)
    }

    /// Bench-scale Android model (paper values read as microseconds, so a
    /// Criterion run completes in seconds).
    pub const fn bench_android() -> Self {
        Self::from_us(54, 16, 53)
    }

    /// Bench-scale Android WebView model.
    pub const fn bench_webview() -> Self {
        Self::from_us(78, 120, 92)
    }

    /// Bench-scale Nokia S60 model.
    pub const fn bench_s60() -> Self {
        Self::from_us(141, 141, 16)
    }

    /// Cost of one invocation of `api`, in microseconds.
    pub fn cost_us(&self, api: NativeApi) -> u64 {
        match api {
            NativeApi::AddProximityAlert => self.add_proximity_alert_us,
            NativeApi::GetLocation => self.get_location_us,
            NativeApi::SendSms => self.send_sms_us,
            NativeApi::MakeCall => self.make_call_us,
            NativeApi::HttpRequest => self.http_request_us,
        }
    }

    /// Consumes the native cost of `api` as real wall-clock time and
    /// returns the nominal cost in milliseconds (callers may advance
    /// their virtual clock by it).
    ///
    /// Costs of 5 ms and above use `thread::sleep`; shorter costs
    /// busy-wait for precision.
    pub fn consume(&self, api: NativeApi) -> f64 {
        let us = self.cost_us(api);
        if us == 0 {
            return 0.0;
        }
        let duration = Duration::from_micros(us);
        if us >= 5_000 {
            std::thread::sleep(duration);
        } else {
            let start = Instant::now();
            while start.elapsed() < duration {
                std::hint::spin_loop();
            }
        }
        us as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free_and_instant() {
        let model = LatencyModel::zero();
        for api in NativeApi::ALL {
            assert_eq!(model.cost_us(api), 0);
        }
        let start = Instant::now();
        model.consume(NativeApi::GetLocation);
        assert!(start.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn paper_models_match_figure10() {
        assert_eq!(
            LatencyModel::paper_android().cost_us(NativeApi::AddProximityAlert),
            53_600
        );
        assert_eq!(
            LatencyModel::paper_webview().cost_us(NativeApi::GetLocation),
            120_000
        );
        assert_eq!(
            LatencyModel::paper_s60().cost_us(NativeApi::SendSms),
            15_600
        );
    }

    #[test]
    fn bench_models_are_roughly_thousandth_of_paper() {
        let paper = LatencyModel::paper_android().cost_us(NativeApi::SendSms);
        let bench = LatencyModel::bench_android().cost_us(NativeApi::SendSms);
        let ratio = paper as f64 / bench as f64;
        assert!((900.0..1100.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn consume_waits_approximately_the_cost() {
        let model = LatencyModel::from_us(0, 200, 0);
        let start = Instant::now();
        let nominal = model.consume(NativeApi::GetLocation);
        let elapsed = start.elapsed();
        assert!((nominal - 0.2).abs() < 1e-9);
        assert!(elapsed >= Duration::from_micros(200));
        assert!(elapsed < Duration::from_millis(50), "elapsed {elapsed:?}");
    }

    #[test]
    fn unreported_apis_borrow_neighbouring_costs() {
        let model = LatencyModel::from_us(1, 2, 3);
        assert_eq!(model.cost_us(NativeApi::MakeCall), 3);
        assert_eq!(model.cost_us(NativeApi::HttpRequest), 2);
    }

    #[test]
    fn display_names_match_paper_labels() {
        assert_eq!(
            NativeApi::AddProximityAlert.to_string(),
            "addProximityAlert"
        );
        assert_eq!(NativeApi::GetLocation.to_string(), "getLocation");
        assert_eq!(NativeApi::SendSms.to_string(), "sendSMS");
    }
}
