//! On-device contact store.
//!
//! The paper lists "contact list information" among the platform
//! interfaces it plans to cover in future work (§7). We implement the
//! substrate here and expose Contacts proxies as an extension feature in
//! the core crate.

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::Mutex;

/// Identifier of a stored contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContactId(u64);

/// A stored contact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contact {
    /// Store-assigned identifier.
    pub id: ContactId,
    /// Display name.
    pub name: String,
    /// Phone numbers, first is primary.
    pub numbers: Vec<String>,
    /// Email addresses.
    pub emails: Vec<String>,
}

/// The device's contact database.
///
/// # Example
///
/// ```
/// use mobivine_device::contacts::ContactStore;
///
/// let store = ContactStore::new();
/// let id = store.add("Region Supervisor", &["+91-11-5550100"], &[]);
/// let found = store.find_by_name("supervisor");
/// assert_eq!(found.len(), 1);
/// assert_eq!(found[0].id, id);
/// ```
#[derive(Default)]
pub struct ContactStore {
    state: Mutex<StoreState>,
}

#[derive(Default)]
struct StoreState {
    next_id: u64,
    contacts: BTreeMap<ContactId, Contact>,
}

impl fmt::Debug for ContactStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContactStore")
            .field("count", &self.len())
            .finish()
    }
}

impl ContactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored contacts.
    pub fn len(&self) -> usize {
        self.state.lock().contacts.len()
    }

    /// Returns `true` if the store has no contacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a contact and returns its id.
    pub fn add(&self, name: &str, numbers: &[&str], emails: &[&str]) -> ContactId {
        let mut state = self.state.lock();
        state.next_id += 1;
        let id = ContactId(state.next_id);
        state.contacts.insert(
            id,
            Contact {
                id,
                name: name.to_owned(),
                numbers: numbers.iter().map(|s| (*s).to_owned()).collect(),
                emails: emails.iter().map(|s| (*s).to_owned()).collect(),
            },
        );
        id
    }

    /// Fetches a contact by id.
    pub fn get(&self, id: ContactId) -> Option<Contact> {
        self.state.lock().contacts.get(&id).cloned()
    }

    /// Removes a contact; returns it if it existed.
    pub fn remove(&self, id: ContactId) -> Option<Contact> {
        self.state.lock().contacts.remove(&id)
    }

    /// Case-insensitive substring search over names, in id order.
    pub fn find_by_name(&self, needle: &str) -> Vec<Contact> {
        let needle = needle.to_lowercase();
        self.state
            .lock()
            .contacts
            .values()
            .filter(|c| c.name.to_lowercase().contains(&needle))
            .cloned()
            .collect()
    }

    /// Finds the contact owning a phone number (exact match).
    pub fn find_by_number(&self, number: &str) -> Option<Contact> {
        self.state
            .lock()
            .contacts
            .values()
            .find(|c| c.numbers.iter().any(|n| n == number))
            .cloned()
    }

    /// All contacts in id order.
    pub fn all(&self) -> Vec<Contact> {
        self.state.lock().contacts.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let store = ContactStore::new();
        let id = store.add("Asha", &["+1"], &["asha@example.com"]);
        let c = store.get(id).unwrap();
        assert_eq!(c.name, "Asha");
        assert_eq!(c.numbers, vec!["+1"]);
        assert_eq!(c.emails, vec!["asha@example.com"]);
    }

    #[test]
    fn ids_are_unique() {
        let store = ContactStore::new();
        let a = store.add("A", &[], &[]);
        let b = store.add("B", &[], &[]);
        assert_ne!(a, b);
    }

    #[test]
    fn remove_deletes() {
        let store = ContactStore::new();
        let id = store.add("Gone", &[], &[]);
        assert!(store.remove(id).is_some());
        assert!(store.get(id).is_none());
        assert!(store.remove(id).is_none());
    }

    #[test]
    fn name_search_is_case_insensitive_substring() {
        let store = ContactStore::new();
        store.add("Region Supervisor", &[], &[]);
        store.add("Agent Seven", &[], &[]);
        assert_eq!(store.find_by_name("SUPER").len(), 1);
        assert_eq!(store.find_by_name("e").len(), 2);
        assert!(store.find_by_name("zzz").is_empty());
    }

    #[test]
    fn number_lookup_is_exact() {
        let store = ContactStore::new();
        store.add("Asha", &["+91-123", "+91-456"], &[]);
        assert_eq!(store.find_by_number("+91-456").unwrap().name, "Asha");
        assert!(store.find_by_number("+91-4").is_none());
    }

    #[test]
    fn len_and_all() {
        let store = ContactStore::new();
        assert!(store.is_empty());
        store.add("A", &[], &[]);
        store.add("B", &[], &[]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.all().len(), 2);
    }
}
