//! Power-consumption accounting.
//!
//! The S60 location stack lets applications trade accuracy for battery via
//! a `powerConsumption` criterion — one of the platform-mandated
//! attributes the paper's binding plane carries as a *property*. The
//! simulated device keeps a per-component energy ledger so tests can
//! observe that the property actually changes behaviour.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

/// Power budget level requested by an application (mirrors the S60
/// `Criteria` power-consumption constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PowerLevel {
    /// Platform picks; treated as medium.
    #[default]
    NoRequirement,
    /// Battery-saving mode: coarser fixes, lower draw.
    Low,
    /// Balanced.
    Medium,
    /// Best accuracy, highest draw.
    High,
}

impl PowerLevel {
    /// Multiplier applied to a component's base energy draw.
    pub fn draw_multiplier(&self) -> f64 {
        match self {
            PowerLevel::Low => 0.5,
            PowerLevel::NoRequirement | PowerLevel::Medium => 1.0,
            PowerLevel::High => 2.0,
        }
    }

    /// Multiplier applied to GPS accuracy sigma (lower power ⇒ coarser
    /// fixes).
    pub fn accuracy_multiplier(&self) -> f64 {
        match self {
            PowerLevel::Low => 3.0,
            PowerLevel::NoRequirement | PowerLevel::Medium => 1.0,
            PowerLevel::High => 0.5,
        }
    }

    /// Parses the textual values used in proxy property lists.
    pub fn parse(value: &str) -> Option<Self> {
        // Case-insensitive comparison in place: this runs on the traced
        // proxy hot path, which must not allocate.
        let eq = |spelling: &str| value.eq_ignore_ascii_case(spelling);
        if eq("norequirement") || eq("no_requirement") {
            Some(PowerLevel::NoRequirement)
        } else if eq("low") {
            Some(PowerLevel::Low)
        } else if eq("medium") {
            Some(PowerLevel::Medium)
        } else if eq("high") {
            Some(PowerLevel::High)
        } else {
            None
        }
    }
}

/// Per-component energy ledger (units: millijoules, nominal).
///
/// # Example
///
/// ```
/// use mobivine_device::power::PowerMeter;
///
/// let meter = PowerMeter::new();
/// meter.draw("gps", 12.5);
/// meter.draw("gps", 2.5);
/// meter.draw("radio", 5.0);
/// assert_eq!(meter.component_total("gps"), 15.0);
/// assert_eq!(meter.total(), 20.0);
/// ```
#[derive(Default)]
pub struct PowerMeter {
    /// Keyed by `&'static str`: component names form a fixed
    /// compile-time vocabulary, so a draw on the hot path never
    /// allocates a key.
    ledger: Mutex<HashMap<&'static str, f64>>,
}

impl fmt::Debug for PowerMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PowerMeter")
            .field("total_mj", &self.total())
            .finish()
    }
}

impl PowerMeter {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `amount_mj` millijoules drawn by `component`.
    pub fn draw(&self, component: &'static str, amount_mj: f64) {
        *self.ledger.lock().entry(component).or_insert(0.0) += amount_mj;
    }

    /// Total energy drawn by one component.
    pub fn component_total(&self, component: &str) -> f64 {
        self.ledger.lock().get(component).copied().unwrap_or(0.0)
    }

    /// Total energy drawn across all components.
    pub fn total(&self) -> f64 {
        self.ledger.lock().values().sum()
    }

    /// Snapshot of the ledger, sorted by component name.
    pub fn by_component(&self) -> Vec<(String, f64)> {
        let mut entries: Vec<_> = self
            .ledger
            .lock()
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Clears the ledger (used between benchmark runs).
    pub fn reset(&self) {
        self.ledger.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_accumulate_per_component() {
        let meter = PowerMeter::new();
        meter.draw("gps", 1.0);
        meter.draw("gps", 2.0);
        meter.draw("net", 4.0);
        assert_eq!(meter.component_total("gps"), 3.0);
        assert_eq!(meter.component_total("net"), 4.0);
        assert_eq!(meter.total(), 7.0);
    }

    #[test]
    fn unknown_component_is_zero() {
        assert_eq!(PowerMeter::new().component_total("nope"), 0.0);
    }

    #[test]
    fn by_component_is_sorted() {
        let meter = PowerMeter::new();
        meter.draw("z", 1.0);
        meter.draw("a", 2.0);
        let entries = meter.by_component();
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "z");
    }

    #[test]
    fn reset_clears() {
        let meter = PowerMeter::new();
        meter.draw("gps", 5.0);
        meter.reset();
        assert_eq!(meter.total(), 0.0);
    }

    #[test]
    fn power_levels_order_draw() {
        assert!(PowerLevel::Low.draw_multiplier() < PowerLevel::Medium.draw_multiplier());
        assert!(PowerLevel::Medium.draw_multiplier() < PowerLevel::High.draw_multiplier());
    }

    #[test]
    fn power_levels_order_accuracy_inversely() {
        assert!(PowerLevel::Low.accuracy_multiplier() > PowerLevel::High.accuracy_multiplier());
    }

    #[test]
    fn parse_accepts_proxy_property_spellings() {
        assert_eq!(PowerLevel::parse("Low"), Some(PowerLevel::Low));
        assert_eq!(PowerLevel::parse("HIGH"), Some(PowerLevel::High));
        assert_eq!(
            PowerLevel::parse("NoRequirement"),
            Some(PowerLevel::NoRequirement)
        );
        assert_eq!(PowerLevel::parse("turbo"), None);
    }
}
