//! Criterion version of Figure 10 — nine (platform, API) pairs, with
//! and without proxies, at bench scale (the paper's native costs read
//! as microseconds so the full suite completes quickly).

use criterion::{criterion_group, criterion_main, Criterion};

use mobivine_bench::harness::{AndroidFixture, S60Fixture, WebViewFixture};
use mobivine_device::latency::LatencyModel;

fn bench_android(c: &mut Criterion) {
    let fixture = AndroidFixture::new(LatencyModel::bench_android());
    let mut group = c.benchmark_group("figure10/android");
    group.bench_function("addProximityAlert/without_proxy", |b| {
        b.iter(|| fixture.native_add_proximity_alert())
    });
    group.bench_function("addProximityAlert/with_proxy", |b| {
        b.iter(|| fixture.proxy_add_proximity_alert())
    });
    group.bench_function("getLocation/without_proxy", |b| {
        b.iter(|| fixture.native_get_location())
    });
    group.bench_function("getLocation/with_proxy", |b| {
        b.iter(|| fixture.proxy_get_location())
    });
    group.bench_function("getLocation/with_resilient_proxy", |b| {
        b.iter(|| fixture.resilient_get_location())
    });
    group.bench_function("sendSMS/without_proxy", |b| {
        b.iter(|| fixture.native_send_sms())
    });
    group.bench_function("sendSMS/with_proxy", |b| {
        b.iter(|| fixture.proxy_send_sms())
    });
    group.finish();
}

fn bench_webview(c: &mut Criterion) {
    let fixture = WebViewFixture::new(LatencyModel::bench_webview());
    let mut group = c.benchmark_group("figure10/webview");
    group.bench_function("addProximityAlert/without_proxy", |b| {
        b.iter(|| fixture.native_add_proximity_alert())
    });
    group.bench_function("addProximityAlert/with_proxy", |b| {
        b.iter(|| fixture.proxy_add_proximity_alert())
    });
    group.bench_function("getLocation/without_proxy", |b| {
        b.iter(|| fixture.native_get_location())
    });
    group.bench_function("getLocation/with_proxy", |b| {
        b.iter(|| fixture.proxy_get_location())
    });
    group.bench_function("sendSMS/without_proxy", |b| {
        b.iter(|| fixture.native_send_sms())
    });
    group.bench_function("sendSMS/with_proxy", |b| {
        b.iter(|| fixture.proxy_send_sms())
    });
    group.finish();
}

fn bench_s60(c: &mut Criterion) {
    let fixture = S60Fixture::new(LatencyModel::bench_s60());
    let mut group = c.benchmark_group("figure10/s60");
    group.bench_function("addProximityAlert/without_proxy", |b| {
        b.iter(|| fixture.native_add_proximity_alert())
    });
    group.bench_function("addProximityAlert/with_proxy", |b| {
        b.iter(|| fixture.proxy_add_proximity_alert())
    });
    group.bench_function("getLocation/without_proxy", |b| {
        b.iter(|| fixture.native_get_location())
    });
    group.bench_function("getLocation/with_proxy", |b| {
        b.iter(|| fixture.proxy_get_location())
    });
    group.bench_function("sendSMS/without_proxy", |b| {
        b.iter(|| fixture.native_send_sms())
    });
    group.bench_function("sendSMS/with_proxy", |b| {
        b.iter(|| fixture.proxy_send_sms())
    });
    group.finish();
}

criterion_group!(benches, bench_android, bench_webview, bench_s60);
criterion_main!(benches);
