//! Ablation: where does proxy overhead come from?
//!
//! With native costs zeroed, the remaining time *is* the
//! de-fragmentation machinery. The paper attributes proxy overhead to
//! "a few extra calls dealing with data-type conversions, platform
//! specific attributes and other small de-fragmentation logic" (§5);
//! this bench decomposes it:
//!
//! - `property_bag` — the `setProperty` validation layer,
//! - `type_conversion` — platform Location → common Location mapping
//!   (measured via `getLocation` minus the bare platform call),
//! - `bridge_marshalling` — the WebView JsValue round trip,
//! - `enrichment` — a unit-conversion decorator on top of the proxy.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use mobivine::enrich::UnitLocationProxy;
use mobivine::property::PropertyValue;
use mobivine::registry::Mobivine;
use mobivine::types::AngleUnit;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_bench::harness::{AndroidFixture, WebViewFixture};
use mobivine_device::latency::LatencyModel;
use mobivine_device::{Device, GeoPoint};

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");

    // Bare platform call vs proxied call (Android, zero native cost).
    let fixture = AndroidFixture::new(LatencyModel::zero());
    group.bench_function("android/bare_platform_getLocation", |b| {
        b.iter(|| fixture.native_get_location())
    });
    group.bench_function("android/proxied_getLocation", |b| {
        b.iter(|| fixture.proxy_get_location())
    });

    // The property-bag layer alone.
    let device = Device::builder()
        .position(GeoPoint::new(28.5, 77.3))
        .build();
    let platform = AndroidPlatform::new(device, SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());
    let proxy = runtime
        .proxy::<dyn mobivine::api::LocationProxy>()
        .expect("location proxy");
    group.bench_function("android/set_property_validated", |b| {
        b.iter(|| {
            proxy
                .set_property("provider", PropertyValue::str("gps"))
                .expect("valid property")
        })
    });

    // Bridge marshalling: WebView proxied call vs Android proxied call
    // is the JsValue round-trip cost.
    let webview = WebViewFixture::new(LatencyModel::zero());
    group.bench_function("webview/proxied_getLocation", |b| {
        b.iter(|| webview.proxy_get_location())
    });

    // Enrichment decorator on top.
    let enriched = UnitLocationProxy::new(Arc::clone(&proxy), AngleUnit::Radians);
    group.bench_function("android/enriched_getLocation_radians", |b| {
        b.iter(|| enriched.get_coordinates().expect("coordinates"))
    });

    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
