//! End-to-end ablation: the complete two-site workforce patrol, native
//! vs proxy, per platform. This measures what an application actually
//! pays for adopting MobiVine over a whole run (registration + every
//! delivered alert + SMS + HTTP), not just single invocations.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mobivine::registry::Mobivine;
use mobivine_android::activity::ActivityHost;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_apps::logic::AppEvents;
use mobivine_apps::native_android::NativeAndroidApp;
use mobivine_apps::native_s60::NativeS60App;
use mobivine_apps::proxy_app::ProxyWorkforceApp;
use mobivine_apps::scenario::Scenario;
use mobivine_s60::midlet::MidletHost;
use mobivine_s60::S60Platform;

fn native_android_run(scenario: Scenario) {
    let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
    let events = AppEvents::new();
    let app = NativeAndroidApp::new(scenario.config.clone(), events);
    let mut host = ActivityHost::new(app, platform.new_context());
    host.launch().expect("launch");
    scenario.device.advance_ms(scenario.patrol_duration_ms());
}

fn proxy_android_run(scenario: Scenario) {
    let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
    let events = AppEvents::new();
    let mut app = ProxyWorkforceApp::new(
        Mobivine::for_android(platform.new_context()),
        scenario.config.clone(),
        events,
    )
    .expect("construct");
    app.start().expect("start");
    scenario.device.advance_ms(scenario.patrol_duration_ms());
}

fn native_s60_run(scenario: Scenario) {
    let platform = S60Platform::new(scenario.device.clone());
    let events = AppEvents::new();
    let app = NativeS60App::new(scenario.config.clone(), events);
    let mut host = MidletHost::new(app, platform);
    host.start().expect("start");
    scenario.device.advance_ms(scenario.patrol_duration_ms());
}

fn proxy_s60_run(scenario: Scenario) {
    let events = AppEvents::new();
    let mut app = ProxyWorkforceApp::new(
        Mobivine::for_s60(S60Platform::new(scenario.device.clone())),
        scenario.config.clone(),
        events,
    )
    .expect("construct");
    app.start().expect("start");
    scenario.device.advance_ms(scenario.patrol_duration_ms());
}

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario/two_site_patrol");
    group.sample_size(20);
    group.bench_function("android/native", |b| {
        b.iter_batched(
            || Scenario::two_site_patrol(1),
            native_android_run,
            BatchSize::SmallInput,
        )
    });
    group.bench_function("android/proxy", |b| {
        b.iter_batched(
            || Scenario::two_site_patrol(1),
            proxy_android_run,
            BatchSize::SmallInput,
        )
    });
    group.bench_function("s60/native", |b| {
        b.iter_batched(
            || Scenario::two_site_patrol(1),
            native_s60_run,
            BatchSize::SmallInput,
        )
    });
    group.bench_function("s60/proxy", |b| {
        b.iter_batched(
            || Scenario::two_site_patrol(1),
            proxy_s60_run,
            BatchSize::SmallInput,
        )
    });
    // WebView proxy path (no native WebView batch: its polling loop is
    // the dominant cost and identical either way).
    group.bench_function("webview/proxy", |b| {
        b.iter_batched(
            || Scenario::two_site_patrol(1),
            |scenario| {
                let platform = AndroidPlatform::new(scenario.device.clone(), SdkVersion::M5Rc15);
                let webview = Arc::new(mobivine_webview::WebView::new(platform.new_context()));
                let events = AppEvents::new();
                let mut app = ProxyWorkforceApp::new(
                    Mobivine::for_webview(webview),
                    scenario.config.clone(),
                    events,
                )
                .expect("construct");
                app.start().expect("start");
                scenario.device.advance_ms(scenario.patrol_duration_ms());
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
