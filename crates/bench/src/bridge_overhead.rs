//! WebView bridge marshalling ablation (the zero-copy wire layer).
//!
//! One multi-read — a location fix plus the GPS power draw — against a
//! minimal in-memory [`JavaScriptInterface`] serving fixed values, in
//! three shapes:
//!
//! - `per-call-marshalling`: the classic crossing. Two
//!   [`invoke_with_context`] calls, each rendering the traceparent to a
//!   heap string, building the reply as a `JsValue` object (a
//!   `BTreeMap` with owned string keys), and carrying that reply
//!   across the boundary **as text** — stringified on the page side
//!   and parsed back on the native side, the string shape values
//!   actually take across `addJavaScriptInterface` (the repo's
//!   in-memory `JsValue` hand-off is a simulation shortcut that
//!   understates it; this baseline pays the real toll).
//! - `wire-buf`: two [`invoke_wire`] crossings through the handle's
//!   reusable call/reply arenas. The arena *is* the wire
//!   representation — both sides read and write offset views, so
//!   there is no text form and no heap once warm.
//! - `batched`: one [`invoke_batch`] crossing carrying both call
//!   frames, halving the crossings on top of the arena savings.
//!
//! The acceptance gate requires the batched wire path to be at least
//! 3x the per-call-marshalling baseline.
//!
//! [`invoke_with_context`]: mobivine_webview::webview::JsInterfaceHandle::invoke_with_context
//! [`invoke_wire`]: mobivine_webview::webview::JsInterfaceHandle::invoke_wire
//! [`invoke_batch`]: mobivine_webview::webview::JsInterfaceHandle::invoke_batch

use std::sync::Arc;
use std::time::Instant;

use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::Device;
use mobivine_webview::bridge::{BridgeError, JavaScriptInterface};
use mobivine_webview::webview::JsInterfaceHandle;
use mobivine_webview::{JsValue, NodeId, WebView, WireBuf, WireValue};

/// One row of the bridge-marshalling comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BridgeOverheadRow {
    /// `per-call-marshalling`, `wire-buf` or `batched`.
    pub mode: &'static str,
    /// Multi-reads timed (each = one fix + one power draw).
    pub multi_reads: u64,
    /// Wall-clock multi-reads per second (table only — never committed
    /// to a deterministic artifact).
    pub wall_ops_per_sec: f64,
}

/// The fixed fix the fixture serves; the fields mirror a real
/// `getLocation` reply so the marshalling cost is representative.
const FIX: [(&str, f64); 7] = [
    ("latitude", 28.6139),
    ("longitude", 77.209),
    ("altitude", 216.0),
    ("accuracy", 12.5),
    ("time", 1_234_567.0),
    ("speed", 1.25),
    ("bearing", 90.0),
];

const POWER_MW: f64 = 42.5;

/// The minimal wire-aware interface: `call` marshals `JsValue`s (the
/// baseline's cost), `call_wire` writes straight into the reply arena.
struct FixtureBridge;

impl FixtureBridge {
    fn encode_fix(reply: &mut WireBuf) -> NodeId {
        let mark = reply.begin();
        for (key, value) in FIX {
            let node = reply.push_number(value);
            reply.stage_entry(key, node);
        }
        reply.end_object(mark)
    }
}

impl JavaScriptInterface for FixtureBridge {
    fn call(&self, method: &str, _args: &[JsValue]) -> Result<JsValue, BridgeError> {
        match method {
            "getLocation" => Ok(JsValue::object(
                FIX.iter()
                    .map(|&(key, value)| (key, JsValue::Number(value))),
            )),
            "getPowerDrawn" => Ok(JsValue::Number(POWER_MW)),
            other => Err(BridgeError::bridge(format!("unknown method {other}"))),
        }
    }

    fn call_wire(
        &self,
        method: &str,
        _args: WireValue<'_>,
        reply: &mut WireBuf,
        _traceparent: Option<&str>,
        _deadline_budget_ms: Option<u64>,
    ) -> Result<NodeId, BridgeError> {
        match method {
            "getLocation" => Ok(Self::encode_fix(reply)),
            "getPowerDrawn" => Ok(reply.push_number(POWER_MW)),
            other => Err(BridgeError::bridge(format!("unknown method {other}"))),
        }
    }
}

/// A fixed, already-rendered W3C traceparent — what the wire modes
/// carry (the proxy plane renders it into a stack buffer).
const TRACEPARENT: &str = "00-00000000000000000123456789abcdef-0123456789abcdef-01";
const DEADLINE_BUDGET_MS: u64 = 5_000;

/// What the pre-optimization proxy plane paid per crossing for the
/// trace context: rendering the traceparent into a fresh heap `String`.
fn rendered_traceparent() -> String {
    format!(
        "00-{:016x}{:016x}-{:016x}-01",
        0u64,
        std::hint::black_box(0x0123_4567_89ab_cdefu64),
        0x0123_4567_89ab_cdefu64
    )
}

fn fixture_handle() -> JsInterfaceHandle {
    let platform = AndroidPlatform::new(Device::builder().build(), SdkVersion::M5Rc15);
    let webview = WebView::new(platform.new_context());
    webview.add_javascript_interface(Arc::new(FixtureBridge), "fixture");
    webview
        .js_interface("fixture")
        .expect("the fixture interface was just added")
}

/// The sum a multi-read folds its reads into (keeps the optimizer from
/// discarding the decode work). Every mode decodes the *full* fix —
/// all seven fields, as the proxy plane's `Location` decoder does —
/// plus the power figure.
fn fold(fix_sum: f64, power: f64) -> f64 {
    fix_sum + power
}

/// One leg of the textual wire format a real `addJavaScriptInterface`
/// crossing pays: the page side stringifies the value, the native side
/// parses it back. The wire-buf modes replace exactly this hop with
/// offset views into a shared arena.
fn cross_as_text(value: &JsValue) -> JsValue {
    fn to_json(value: &JsValue) -> serde_json::Value {
        match value {
            JsValue::Undefined | JsValue::Null => serde_json::Value::Null,
            JsValue::Bool(b) => serde_json::Value::Bool(*b),
            JsValue::Number(n) => serde_json::Value::Number(*n),
            JsValue::Str(s) => serde_json::Value::String(s.clone()),
            JsValue::Array(items) => serde_json::Value::Array(items.iter().map(to_json).collect()),
            JsValue::Object(map) => serde_json::Value::Object(
                map.iter().map(|(k, v)| (k.clone(), to_json(v))).collect(),
            ),
        }
    }
    fn from_json(value: &serde_json::Value) -> JsValue {
        match value {
            serde_json::Value::Null => JsValue::Null,
            serde_json::Value::Bool(b) => JsValue::Bool(*b),
            serde_json::Value::Number(n) => JsValue::Number(*n),
            serde_json::Value::String(s) => JsValue::Str(s.clone()),
            serde_json::Value::Array(items) => {
                JsValue::Array(items.iter().map(from_json).collect())
            }
            serde_json::Value::Object(map) => {
                JsValue::Object(map.iter().map(|(k, v)| (k.clone(), from_json(v))).collect())
            }
        }
    }
    let text = to_json(value).to_string();
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("own rendering parses");
    from_json(&parsed)
}

/// Decodes all seven fix fields from a `JsValue` reply, mirroring the
/// proxy plane's `location_from_js`.
fn js_fix_sum(fix: &JsValue) -> f64 {
    FIX.iter()
        .map(|&(key, _)| fix.get_ref(key).and_then(JsValue::as_number).unwrap_or(0.0))
        .sum()
}

/// Decodes all seven fix fields from a wire reply view, mirroring the
/// proxy plane's `location_from_wire`.
fn wire_fix_sum(fix: WireValue<'_>) -> f64 {
    FIX.iter()
        .map(|&(key, _)| fix.get(key).and_then(|v| v.as_number()).unwrap_or(0.0))
        .sum()
}

/// Times `multi_reads` fix+power multi-reads in all three shapes
/// against the same fixture interface, baseline first.
pub fn run_bridge_overhead(multi_reads: u64) -> Vec<BridgeOverheadRow> {
    let handle = fixture_handle();
    let mut acc = 0.0f64;

    // Baseline: the classic crossing — per call, a heap traceparent, a
    // heap-marshalled reply, and the reply's trip through its text
    // form (the string shape real bridge values take).
    let started = Instant::now();
    for _ in 0..multi_reads {
        let traceparent = rendered_traceparent();
        let fix = handle
            .invoke_with_context(
                "getLocation",
                &[],
                Some(&traceparent),
                Some(DEADLINE_BUDGET_MS),
            )
            .expect("fixture serves getLocation");
        let fix = cross_as_text(&fix);
        let traceparent = rendered_traceparent();
        let power = handle
            .invoke_with_context(
                "getPowerDrawn",
                &[],
                Some(&traceparent),
                Some(DEADLINE_BUDGET_MS),
            )
            .expect("fixture serves getPowerDrawn");
        let power = cross_as_text(&power);
        acc += fold(js_fix_sum(&fix), power.as_number().unwrap_or(0.0));
    }
    let marshalling_secs = started.elapsed().as_secs_f64();

    // Wire arenas: still two crossings, but encode/decode are offset
    // views into the handle's reusable buffers — zero heap once warm.
    let started = Instant::now();
    for _ in 0..multi_reads {
        let fix_sum = handle
            .invoke_wire(
                "getLocation",
                Some(TRACEPARENT),
                Some(DEADLINE_BUDGET_MS),
                WireBuf::empty_args,
                |reply| Ok(wire_fix_sum(reply)),
            )
            .expect("fixture serves getLocation");
        let power = handle
            .invoke_wire(
                "getPowerDrawn",
                Some(TRACEPARENT),
                Some(DEADLINE_BUDGET_MS),
                WireBuf::empty_args,
                |reply| Ok(reply.as_number().unwrap_or(0.0)),
            )
            .expect("fixture serves getPowerDrawn");
        acc += fold(fix_sum, power);
    }
    let wire_secs = started.elapsed().as_secs_f64();

    // Batched: both reads ride one crossing — one lock, one dispatch,
    // two frames through the same arenas.
    let started = Instant::now();
    for _ in 0..multi_reads {
        let (fix_sum, power) = handle
            .invoke_batch(
                Some(TRACEPARENT),
                Some(DEADLINE_BUDGET_MS),
                |call| {
                    let args = call.empty_args();
                    call.push_frame("getLocation", args);
                    let args = call.empty_args();
                    call.push_frame("getPowerDrawn", args);
                },
                |replies| {
                    let number = |i: usize, pick: fn(WireValue<'_>) -> f64| match replies.get(i) {
                        Some(Ok(value)) => Ok(pick(value)),
                        Some(Err((code, message))) => Err(BridgeError {
                            code,
                            message: message.to_owned(),
                        }),
                        None => Err(BridgeError::bridge("missing batch reply")),
                    };
                    Ok((
                        number(0, wire_fix_sum)?,
                        number(1, |v| v.as_number().unwrap_or(0.0))?,
                    ))
                },
            )
            .expect("fixture serves the batch");
        acc += fold(fix_sum, power);
    }
    let batched_secs = started.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    let rate = |secs: f64| {
        if secs > 0.0 {
            multi_reads as f64 / secs
        } else {
            f64::INFINITY
        }
    };
    vec![
        BridgeOverheadRow {
            mode: "per-call-marshalling",
            multi_reads,
            wall_ops_per_sec: rate(marshalling_secs),
        },
        BridgeOverheadRow {
            mode: "wire-buf",
            multi_reads,
            wall_ops_per_sec: rate(wire_secs),
        },
        BridgeOverheadRow {
            mode: "batched",
            multi_reads,
            wall_ops_per_sec: rate(batched_secs),
        },
    ]
}

/// The batched-over-marshalling speedup factor, when both rows are
/// present — the figure the acceptance gate pins at ≥3x.
pub fn bridge_overhead_speedup(rows: &[BridgeOverheadRow]) -> Option<f64> {
    let baseline = rows.iter().find(|r| r.mode == "per-call-marshalling")?;
    let batched = rows.iter().find(|r| r.mode == "batched")?;
    if baseline.wall_ops_per_sec > 0.0 {
        Some(batched.wall_ops_per_sec / baseline.wall_ops_per_sec)
    } else {
        None
    }
}

/// Renders the comparison, including the speedup line the acceptance
/// gate reads.
pub fn render_bridge_overhead_table(rows: &[BridgeOverheadRow]) -> String {
    let mut out = String::new();
    out.push_str("WebView bridge marshalling (wall clock; 1 op = fix + power multi-read)\n");
    out.push_str("mode                 | multi-reads |    ops/sec\n");
    out.push_str("---------------------+-------------+-----------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<20} | {:>11} | {:>10.0}\n",
            row.mode, row.multi_reads, row.wall_ops_per_sec,
        ));
    }
    if let Some(speedup) = bridge_overhead_speedup(rows) {
        out.push_str(&format!(
            "batched wire-buf speedup over per-call marshalling: {speedup:.1}x\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_wire_path_clears_the_speedup_bar() {
        let rows = run_bridge_overhead(100_000);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mode, "per-call-marshalling");
        assert_eq!(rows[1].mode, "wire-buf");
        assert_eq!(rows[2].mode, "batched");
        let speedup = bridge_overhead_speedup(&rows).expect("both rows present");
        assert!(
            speedup >= 3.0,
            "batched wire path must be >= 3x the per-call marshalling baseline, got {speedup:.1}x"
        );
    }

    #[test]
    fn all_three_paths_read_the_same_values() {
        let handle = fixture_handle();
        let via_js = handle
            .invoke("getLocation", &[])
            .expect("fixture serves getLocation");
        let js_latitude = via_js.get_ref("latitude").and_then(JsValue::as_number);
        let wire_latitude = handle
            .invoke_wire("getLocation", None, None, WireBuf::empty_args, |reply| {
                Ok(reply.get("latitude").and_then(|v| v.as_number()))
            })
            .expect("fixture serves getLocation");
        assert_eq!(js_latitude, wire_latitude);
        let batch_latitude = handle
            .invoke_batch(
                None,
                None,
                |call| {
                    let args = call.empty_args();
                    call.push_frame("getLocation", args);
                },
                |replies| {
                    Ok(replies
                        .get(0)
                        .and_then(Result::ok)
                        .and_then(|v| v.get("latitude").and_then(|v| v.as_number())))
                },
            )
            .expect("fixture serves the batch");
        assert_eq!(js_latitude, batch_latitude);
    }

    #[test]
    fn table_renders_all_modes() {
        let table = render_bridge_overhead_table(&run_bridge_overhead(5_000));
        assert!(table.contains("per-call-marshalling"));
        assert!(table.contains("wire-buf"));
        assert!(table.contains("batched"));
        assert!(table.contains("speedup"));
    }
}
