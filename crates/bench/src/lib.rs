#![warn(missing_docs)]
//! Benchmark harness for the MobiVine evaluation (paper §5).
//!
//! [`figure10`] regenerates the paper's only quantitative artifact —
//! Figure 10, "Time taken for invoking APIs on Android, Android WebView
//! and Nokia S60" with and without proxies — by timing real invocations
//! against each simulated platform with its native-API cost calibrated
//! to the paper's measurements. [`harness`] holds the per-platform
//! setup shared by the report binary and the Criterion benches.

pub mod bridge_overhead;
pub mod figure10;
pub mod fleet_bench;
pub mod harness;
pub mod summary;
pub mod telemetry_hotpath;

pub use figure10::{
    measure, run_figure10, run_resilience_overhead, run_telemetry_overhead, Figure10Row,
    LatencyStats, ResilienceOverheadRow, Scale, TelemetryOverheadRow,
};
pub use fleet_bench::{
    run_fleet_scaling, run_fleet_scaling_with_telemetry, run_resolution_comparison,
    FleetScalingRow, ResolutionRow,
};
pub use summary::{
    fleet_summary_json, parse_fleet_baseline, summary_json, validate_fleet_json,
    validate_summary_json, FleetBaselineRow, FleetCheck, SummaryCheck,
};
pub use telemetry_hotpath::{
    hotpath_speedup, run_fleet_telemetry_ablation, run_hotpath_comparison, HotpathRow,
};
