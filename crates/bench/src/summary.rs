//! Machine-readable bench summaries (`figure10 --json`, `fleet --json`).
//!
//! One JSON document per binary: the `figure10` summary carries the
//! nine Figure 10 pairs with their histogram-derived p50/p95/p99 tails
//! plus the resilience- and telemetry-overhead ablations; the `fleet`
//! summary carries the scaling sweep and the resolution-mode inventory.
//! [`validate_summary_json`] / [`validate_fleet_json`] are the schema
//! checks shared by each binary's `--check` mode and CI. The fleet
//! summary deliberately contains **no wall-clock-derived values**, so
//! two runs with the same configuration emit byte-identical JSON.

use serde_json::Value;

use crate::bridge_overhead::{bridge_overhead_speedup, BridgeOverheadRow};
use crate::figure10::{
    journal_overhead_factor, Figure10Row, JournalOverheadRow, LatencyStats, ResilienceOverheadRow,
    TelemetryOverheadRow,
};
use crate::fleet_bench::{
    BridgeRow, BrownoutRow, CacheRow, CrashRow, FleetScalingRow, ResolutionRow,
};
use crate::telemetry_hotpath::HotpathRow;

/// Schema identifier stamped into (and required from) every summary.
/// `v2` added the required `bridge_overhead` section (the WebView
/// marshalling ablation: per-call text marshalling vs the arena wire
/// format vs batched crossings) and its gate — the batched wire path
/// must clear a 3x speedup over per-call marshalling. `v3` added the
/// required `journal_overhead` section (the same fleet traffic with
/// durability off, journal-only, and journal + per-apply checkpoints)
/// and its bounded-overhead gate: all three arms byte-identical by
/// checksum and the fully durable arm within 10x of the undurable
/// per-op wall cost.
pub const SCHEMA: &str = "mobivine.figure10.v3";

/// Schema identifier of the fleet benchmark summary. `v2` added the
/// required `brownout` section (the overload-protection gate); `v3`
/// added the flight-recorder evidence to each brownout arm
/// (`deadline_blown`, `promoted_traces`, `promoted_deadline`,
/// `incident_checksum`) and extended the gate: the unprotected arm must
/// carry a promoted trace for every deadline-blown call. `v4` added the
/// required `cache` section (read-heavy traffic with the read-through
/// proxy cache on vs off) and its gate: both arms byte-identical by
/// checksum, the cached arm actually hitting, and the uncached arm
/// invoking the binding plane at least 5x more often for reads. `v5`
/// added the required `bridge` section (the same read-heavy multi-read
/// traffic with WebView bridge batching on vs off) and its gate: both
/// arms byte-identical by checksum — batching must be invisible to
/// what the fleet computes — and the batched arm crossing the bridge
/// strictly fewer times. `v6` added the required `crash` section (the
/// same durable traffic with a deterministic crash storm armed vs
/// crash-free) and its exactly-once gate: byte-identical checksums,
/// zero duplicate effects, and a storm that exercised at least one
/// torn-write and one intent/effect-gap crash per shard.
pub const FLEET_SCHEMA: &str = "mobivine.fleet.v6";

fn num(v: f64) -> Value {
    Value::Number(v)
}

fn text(v: &str) -> Value {
    Value::String(v.to_owned())
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn stats_value(stats: &LatencyStats) -> Value {
    object(vec![
        ("mean_ms", num(stats.mean_ms)),
        ("p50_ms", num(stats.p50_ms)),
        ("p95_ms", num(stats.p95_ms)),
        ("p99_ms", num(stats.p99_ms)),
    ])
}

/// The per-section row slices a figure10 summary document is built
/// from — one field per required section of the schema.
pub struct SummarySections<'a> {
    /// Figure-10 overhead rows (per platform × API).
    pub rows: &'a [Figure10Row],
    /// Resilience-layer overhead ablation.
    pub resilience: &'a [ResilienceOverheadRow],
    /// Telemetry on/off ablation.
    pub telemetry: &'a [TelemetryOverheadRow],
    /// Recording hot-path ablation (per-call lookup vs cached handles).
    pub hotpath: &'a [HotpathRow],
    /// WebView bridge-marshalling ablation.
    pub bridge: &'a [BridgeOverheadRow],
    /// Write-ahead-journal cost ablation.
    pub journal: &'a [JournalOverheadRow],
}

/// Builds the summary document as a JSON string.
pub fn summary_json(scale: &str, runs: u32, sections: &SummarySections<'_>) -> String {
    let SummarySections {
        rows,
        resilience,
        telemetry,
        hotpath,
        bridge,
        journal,
    } = *sections;
    let figure10 = rows
        .iter()
        .map(|row| {
            object(vec![
                ("platform", text(row.platform)),
                ("api", text(row.api)),
                ("without", stats_value(&row.without_stats)),
                ("with", stats_value(&row.with_stats)),
                ("overhead_fraction", num(row.overhead_fraction())),
                ("paper_without_ms", num(row.paper_ms.0)),
                ("paper_with_ms", num(row.paper_ms.1)),
            ])
        })
        .collect();
    let resilience = resilience
        .iter()
        .map(|row| {
            object(vec![
                ("platform", text(row.platform)),
                ("native_ms", num(row.native_ms)),
                ("proxy_ms", num(row.proxy_ms)),
                ("resilient_ms", num(row.resilient_ms)),
            ])
        })
        .collect();
    let telemetry = telemetry
        .iter()
        .map(|row| {
            object(vec![
                ("platform", text(row.platform)),
                ("bare_ms", num(row.bare_ms)),
                ("instrumented_ms", num(row.instrumented_ms)),
                ("overhead_fraction", num(row.overhead_fraction())),
            ])
        })
        .collect();
    let hotpath = hotpath
        .iter()
        .map(|row| {
            object(vec![
                ("mode", text(row.mode)),
                ("ops", num(row.ops as f64)),
                ("wall_ops_per_sec", num(row.wall_ops_per_sec)),
            ])
        })
        .collect();
    let bridge = bridge
        .iter()
        .map(|row| {
            object(vec![
                ("mode", text(row.mode)),
                ("multi_reads", num(row.multi_reads as f64)),
                ("wall_ops_per_sec", num(row.wall_ops_per_sec)),
            ])
        })
        .collect();
    let journal = journal
        .iter()
        .map(|row| {
            object(vec![
                ("mode", text(row.mode)),
                ("total_ops", num(row.total_ops as f64)),
                ("errors", num(row.errors as f64)),
                ("client_appends", num(row.client_appends as f64)),
                ("checkpoints", num(row.checkpoints as f64)),
                ("checksum", text(&format!("{:016x}", row.checksum))),
                ("wall_us_per_op", num(row.wall_us_per_op)),
            ])
        })
        .collect();
    object(vec![
        ("schema", text(SCHEMA)),
        ("scale", text(scale)),
        ("runs", num(runs as f64)),
        ("figure10", Value::Array(figure10)),
        ("resilience_overhead", Value::Array(resilience)),
        ("telemetry_overhead", Value::Array(telemetry)),
        ("telemetry_hotpath", Value::Array(hotpath)),
        ("bridge_overhead", Value::Array(bridge)),
        ("journal_overhead", Value::Array(journal)),
    ])
    .to_string()
}

/// What a valid summary contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryCheck {
    /// Number of Figure 10 pairs (always 9 for a full run).
    pub figure10_rows: usize,
    /// Number of resilience-overhead rows.
    pub resilience_rows: usize,
    /// Number of telemetry-overhead rows.
    pub telemetry_rows: usize,
    /// Number of telemetry hot-path rows (both modes must be present).
    pub hotpath_rows: usize,
    /// Number of bridge-marshalling rows (all three modes must be
    /// present and the batched path must clear the 3x speedup bar).
    pub bridge_rows: usize,
    /// Number of journal-ablation rows (all three modes must be present
    /// with identical checksums and a bounded durable per-op cost).
    pub journal_rows: usize,
}

fn require_number(entry: &Value, key: &str, context: &str) -> Result<f64, String> {
    match entry.get_field(key) {
        Some(Value::Number(n)) if n.is_finite() => Ok(*n),
        Some(other) => Err(format!("{context}: field {key} is not a number: {other:?}")),
        None => Err(format!("{context}: missing field {key}")),
    }
}

fn require_string<'a>(entry: &'a Value, key: &str, context: &str) -> Result<&'a str, String> {
    match entry.get_field(key) {
        Some(Value::String(s)) if !s.is_empty() => Ok(s),
        _ => Err(format!("{context}: missing string field {key}")),
    }
}

fn require_array<'a>(root: &'a Value, key: &str) -> Result<&'a [Value], String> {
    match root.get_field(key) {
        Some(Value::Array(items)) if !items.is_empty() => Ok(items),
        Some(Value::Array(_)) => Err(format!("{key} is empty")),
        _ => Err(format!("missing array {key}")),
    }
}

fn check_stats(entry: &Value, key: &str, context: &str) -> Result<(), String> {
    let stats = entry
        .get_field(key)
        .ok_or_else(|| format!("{context}: missing {key} stats"))?;
    let p50 = require_number(stats, "p50_ms", context)?;
    let p95 = require_number(stats, "p95_ms", context)?;
    let p99 = require_number(stats, "p99_ms", context)?;
    require_number(stats, "mean_ms", context)?;
    if p50 > p95 || p95 > p99 {
        return Err(format!(
            "{context}: {key} quantiles are not ordered: p50={p50} p95={p95} p99={p99}"
        ));
    }
    Ok(())
}

/// Validates a `figure10 --json` document against the
/// [`SCHEMA`] shape.
///
/// # Errors
///
/// A human-readable description of the first violation: bad JSON, a
/// wrong or missing schema id, or a missing/mistyped field.
pub fn validate_summary_json(json: &str) -> Result<SummaryCheck, String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    match root.get_field("schema") {
        Some(Value::String(s)) if s == SCHEMA => {}
        Some(Value::String(s)) => return Err(format!("unknown schema {s:?}, expected {SCHEMA:?}")),
        _ => return Err("missing schema field".to_owned()),
    }
    require_string(&root, "scale", "summary")?;
    require_number(&root, "runs", "summary")?;

    let figure10 = require_array(&root, "figure10")?;
    for (i, entry) in figure10.iter().enumerate() {
        let context = format!("figure10[{i}]");
        require_string(entry, "platform", &context)?;
        require_string(entry, "api", &context)?;
        check_stats(entry, "without", &context)?;
        check_stats(entry, "with", &context)?;
        require_number(entry, "overhead_fraction", &context)?;
        require_number(entry, "paper_without_ms", &context)?;
        require_number(entry, "paper_with_ms", &context)?;
    }

    let resilience = require_array(&root, "resilience_overhead")?;
    for (i, entry) in resilience.iter().enumerate() {
        let context = format!("resilience_overhead[{i}]");
        require_string(entry, "platform", &context)?;
        require_number(entry, "native_ms", &context)?;
        require_number(entry, "proxy_ms", &context)?;
        require_number(entry, "resilient_ms", &context)?;
    }

    let telemetry = require_array(&root, "telemetry_overhead")?;
    for (i, entry) in telemetry.iter().enumerate() {
        let context = format!("telemetry_overhead[{i}]");
        require_string(entry, "platform", &context)?;
        let bare = require_number(entry, "bare_ms", &context)?;
        let instrumented = require_number(entry, "instrumented_ms", &context)?;
        require_number(entry, "overhead_fraction", &context)?;
        if bare < 0.0 || instrumented < 0.0 {
            return Err(format!("{context}: negative latency"));
        }
    }

    let hotpath = require_array(&root, "telemetry_hotpath")?;
    for (i, entry) in hotpath.iter().enumerate() {
        let context = format!("telemetry_hotpath[{i}]");
        require_string(entry, "mode", &context)?;
        require_number(entry, "ops", &context)?;
        let rate = require_number(entry, "wall_ops_per_sec", &context)?;
        if rate < 0.0 {
            return Err(format!("{context}: negative wall_ops_per_sec"));
        }
    }
    for mode in ["per-call-lookup", "cached-handles"] {
        if !hotpath
            .iter()
            .any(|entry| matches!(entry.get_field("mode"), Some(Value::String(s)) if s == mode))
        {
            return Err(format!("telemetry_hotpath: missing row for mode {mode:?}"));
        }
    }

    let bridge = require_array(&root, "bridge_overhead")?;
    let mut bridge_rows: Vec<BridgeOverheadRow> = Vec::new();
    for (i, entry) in bridge.iter().enumerate() {
        let context = format!("bridge_overhead[{i}]");
        // Re-intern the mode so the parsed rows can flow back through
        // the same speedup helper the table renderer uses.
        let mode: &'static str = match require_string(entry, "mode", &context)? {
            "per-call-marshalling" => "per-call-marshalling",
            "wire-buf" => "wire-buf",
            "batched" => "batched",
            other => return Err(format!("{context}: unknown mode {other:?}")),
        };
        let multi_reads = require_number(entry, "multi_reads", &context)?;
        let rate = require_number(entry, "wall_ops_per_sec", &context)?;
        if multi_reads <= 0.0 || rate <= 0.0 {
            return Err(format!("{context}: non-positive measurement"));
        }
        bridge_rows.push(BridgeOverheadRow {
            mode,
            multi_reads: multi_reads as u64,
            wall_ops_per_sec: rate,
        });
    }
    for mode in ["per-call-marshalling", "wire-buf", "batched"] {
        if !bridge_rows.iter().any(|row| row.mode == mode) {
            return Err(format!("bridge_overhead: missing row for mode {mode:?}"));
        }
    }
    // The wire-layer gate: batching the arena-encoded crossings must
    // beat per-call text marshalling by at least 3x.
    let speedup =
        bridge_overhead_speedup(&bridge_rows).ok_or("bridge_overhead: incomplete comparison")?;
    if speedup < 3.0 {
        return Err(format!(
            "bridge_overhead: batched speedup {speedup:.1}x is below the 3x bar"
        ));
    }

    let journal = require_array(&root, "journal_overhead")?;
    let mut journal_rows: Vec<JournalOverheadRow> = Vec::new();
    for (i, entry) in journal.iter().enumerate() {
        let context = format!("journal_overhead[{i}]");
        // Re-intern the mode so the parsed rows can flow back through
        // the same overhead helper the table renderer uses.
        let mode: &'static str = match require_string(entry, "mode", &context)? {
            "off" => "off",
            "journal" => "journal",
            "journal+checkpoints" => "journal+checkpoints",
            other => return Err(format!("{context}: unknown mode {other:?}")),
        };
        let total_ops = require_number(entry, "total_ops", &context)?;
        let errors = require_number(entry, "errors", &context)?;
        let client_appends = require_number(entry, "client_appends", &context)?;
        let checkpoints = require_number(entry, "checkpoints", &context)?;
        let wall_us_per_op = require_number(entry, "wall_us_per_op", &context)?;
        if total_ops <= 0.0 || errors < 0.0 || wall_us_per_op <= 0.0 {
            return Err(format!("{context}: non-positive measurement"));
        }
        let checksum_hex = require_string(entry, "checksum", &context)?;
        if checksum_hex.len() != 16 || !checksum_hex.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!(
                "{context}: checksum is not a 16-digit hex string: {checksum_hex:?}"
            ));
        }
        let checksum = u64::from_str_radix(checksum_hex, 16)
            .map_err(|e| format!("{context}: bad checksum: {e}"))?;
        journal_rows.push(JournalOverheadRow {
            mode,
            total_ops: total_ops as u64,
            errors: errors as u64,
            client_appends: client_appends as u64,
            checkpoints: checkpoints as u64,
            checksum,
            wall_us_per_op,
        });
    }
    for mode in ["off", "journal", "journal+checkpoints"] {
        if !journal_rows.iter().any(|row| row.mode == mode) {
            return Err(format!("journal_overhead: missing row for mode {mode:?}"));
        }
    }
    // The durability gate: all three arms byte-identical — journalling
    // must be invisible to what the fleet computes — and the fully
    // durable arm's per-op wall cost bounded by 10x the undurable one.
    let factor = journal_overhead_factor(&journal_rows)
        .ok_or("journal_overhead: arms drifted or the ablation never journalled")?;
    if factor >= 10.0 {
        return Err(format!(
            "journal_overhead: durable per-op cost {factor:.2}x blows the 10x bound"
        ));
    }

    Ok(SummaryCheck {
        figure10_rows: figure10.len(),
        resilience_rows: resilience.len(),
        telemetry_rows: telemetry.len(),
        hotpath_rows: hotpath.len(),
        bridge_rows: bridge.len(),
        journal_rows: journal.len(),
    })
}

/// Builds the fleet summary document as a JSON string. Only
/// deterministic fields are emitted — the wall-clock columns of the
/// human-readable tables are intentionally absent, and the `u64`
/// checksum is rendered as a hex string so no precision is lost to
/// JSON's doubles.
pub fn fleet_summary_json(
    scaling: &[FleetScalingRow],
    resolution: &[ResolutionRow],
    brownout: &[BrownoutRow],
    cache: &[CacheRow],
    bridge: &[BridgeRow],
    crash: &[CrashRow],
) -> String {
    let scaling = scaling
        .iter()
        .map(|row| {
            object(vec![
                ("shards", num(row.shards as f64)),
                ("devices", num(row.devices as f64)),
                ("workers", num(row.workers as f64)),
                ("rounds", num(row.rounds as f64)),
                ("ops_per_round", num(row.ops_per_round as f64)),
                ("seed", num(row.seed as f64)),
                ("telemetry", Value::Bool(row.telemetry)),
                ("total_ops", num(row.total_ops as f64)),
                ("errors", num(row.errors as f64)),
                ("virtual_ops_per_sec", num(row.virtual_ops_per_sec as f64)),
                ("p50_ms", num(row.p50_ms as f64)),
                ("p95_ms", num(row.p95_ms as f64)),
                ("p99_ms", num(row.p99_ms as f64)),
                ("checksum", text(&format!("{:016x}", row.checksum))),
            ])
        })
        .collect();
    let resolution = resolution
        .iter()
        .map(|row| {
            object(vec![
                ("mode", text(row.mode)),
                ("acquisitions", num(row.acquisitions as f64)),
                ("devices", num(row.devices as f64)),
            ])
        })
        .collect();
    let brownout = brownout
        .iter()
        .map(|row| {
            object(vec![
                ("admission", Value::Bool(row.admission)),
                ("target_shard", num(row.target_shard as f64)),
                ("ops_multiplier", num(f64::from(row.ops_multiplier))),
                ("deadline_budget_ms", num(row.deadline_budget_ms as f64)),
                ("p99_target_ms", num(row.p99_target_ms as f64)),
                ("total_ops", num(row.total_ops as f64)),
                ("errors", num(row.errors as f64)),
                ("shed", num(row.shed as f64)),
                ("degraded", num(row.degraded as f64)),
                ("deadline_exceeded", num(row.deadline_exceeded as f64)),
                ("shard_p99_ms", num(row.shard_p99_ms as f64)),
                ("deadline_blown", num(row.deadline_blown as f64)),
                ("promoted_traces", num(row.promoted_traces as f64)),
                ("promoted_deadline", num(row.promoted_deadline as f64)),
                (
                    "incident_checksum",
                    text(&format!("{:016x}", row.incident_checksum)),
                ),
                ("checksum", text(&format!("{:016x}", row.checksum))),
            ])
        })
        .collect();
    let cache = cache
        .iter()
        .map(|row| {
            object(vec![
                ("cached", Value::Bool(row.cached)),
                ("devices", num(row.devices as f64)),
                ("total_ops", num(row.total_ops as f64)),
                ("errors", num(row.errors as f64)),
                ("location_fixes", num(row.location_fixes as f64)),
                ("binding_reads", num(row.binding_reads as f64)),
                ("hits", num(row.hits as f64)),
                ("coalesced", num(row.coalesced as f64)),
                ("invalidated", num(row.invalidated as f64)),
                ("checksum", text(&format!("{:016x}", row.checksum))),
            ])
        })
        .collect();
    let bridge = bridge
        .iter()
        .map(|row| {
            object(vec![
                ("batched", Value::Bool(row.batched)),
                ("devices", num(row.devices as f64)),
                ("webview_devices", num(row.webview_devices as f64)),
                ("total_ops", num(row.total_ops as f64)),
                ("errors", num(row.errors as f64)),
                ("location_fixes", num(row.location_fixes as f64)),
                ("crossings", num(row.crossings as f64)),
                ("checksum", text(&format!("{:016x}", row.checksum))),
            ])
        })
        .collect();
    let crash = crash
        .iter()
        .map(|row| {
            object(vec![
                ("stormed", Value::Bool(row.stormed)),
                ("devices", num(row.devices as f64)),
                ("shards", num(row.shards as f64)),
                ("crashes_per_shard", num(row.crashes_per_shard as f64)),
                ("total_ops", num(row.total_ops as f64)),
                ("errors", num(row.errors as f64)),
                ("recoveries", num(row.recoveries as f64)),
                ("torn_crashes", num(row.torn_crashes as f64)),
                ("gap_crashes", num(row.gap_crashes as f64)),
                ("effect_crashes", num(row.effect_crashes as f64)),
                ("replayed_records", num(row.replayed_records as f64)),
                ("torn_truncated", num(row.torn_truncated as f64)),
                (
                    "suppressed_duplicates",
                    num(row.suppressed_duplicates as f64),
                ),
                ("duplicates", num(row.duplicates as f64)),
                ("recovery_p50_us", num(row.recovery_p50_us as f64)),
                ("recovery_p99_us", num(row.recovery_p99_us as f64)),
                ("checksum", text(&format!("{:016x}", row.checksum))),
            ])
        })
        .collect();
    object(vec![
        ("schema", text(FLEET_SCHEMA)),
        ("scaling", Value::Array(scaling)),
        ("resolution", Value::Array(resolution)),
        ("brownout", Value::Array(brownout)),
        ("cache", Value::Array(cache)),
        ("bridge", Value::Array(bridge)),
        ("crash", Value::Array(crash)),
    ])
    .to_string()
}

/// What a valid fleet summary contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCheck {
    /// Number of shard-count configurations in the sweep.
    pub scaling_rows: usize,
    /// Number of resolution-mode rows (both modes must be present).
    pub resolution_rows: usize,
    /// Number of brownout arms (both admission modes must be present
    /// and each must hold its side of the overload gate).
    pub brownout_rows: usize,
    /// Number of cache arms (cached and uncached must both be present
    /// and the pair must hold the cache gate).
    pub cache_rows: usize,
    /// Number of bridge arms (batched and unbatched must both be
    /// present and the pair must hold the bridge gate).
    pub bridge_rows: usize,
    /// Number of crash arms (stormed and crash-free must both be
    /// present and the pair must hold the exactly-once gate).
    pub crash_rows: usize,
}

/// Validates a `fleet --json` document against the [`FLEET_SCHEMA`]
/// shape.
///
/// # Errors
///
/// A human-readable description of the first violation: bad JSON, a
/// wrong or missing schema id, a missing/mistyped field, unordered
/// percentiles, a malformed checksum, or a missing resolution mode.
pub fn validate_fleet_json(json: &str) -> Result<FleetCheck, String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    match root.get_field("schema") {
        Some(Value::String(s)) if s == FLEET_SCHEMA => {}
        Some(Value::String(s)) => {
            return Err(format!("unknown schema {s:?}, expected {FLEET_SCHEMA:?}"))
        }
        _ => return Err("missing schema field".to_owned()),
    }

    let scaling = require_array(&root, "scaling")?;
    for (i, entry) in scaling.iter().enumerate() {
        let context = format!("scaling[{i}]");
        for key in [
            "shards",
            "devices",
            "workers",
            "rounds",
            "ops_per_round",
            "seed",
            "total_ops",
            "errors",
            "virtual_ops_per_sec",
        ] {
            let value = require_number(entry, key, &context)?;
            if value < 0.0 {
                return Err(format!("{context}: negative {key}"));
            }
        }
        match entry.get_field("telemetry") {
            Some(Value::Bool(_)) => {}
            other => {
                return Err(format!(
                    "{context}: telemetry is {other:?}, expected a bool"
                ))
            }
        }
        let p50 = require_number(entry, "p50_ms", &context)?;
        let p95 = require_number(entry, "p95_ms", &context)?;
        let p99 = require_number(entry, "p99_ms", &context)?;
        if p50 > p95 || p95 > p99 {
            return Err(format!(
                "{context}: quantiles are not ordered: p50={p50} p95={p95} p99={p99}"
            ));
        }
        let checksum = require_string(entry, "checksum", &context)?;
        if checksum.len() != 16 || !checksum.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!(
                "{context}: checksum is not a 16-digit hex string: {checksum:?}"
            ));
        }
    }

    let resolution = require_array(&root, "resolution")?;
    for (i, entry) in resolution.iter().enumerate() {
        let context = format!("resolution[{i}]");
        require_string(entry, "mode", &context)?;
        require_number(entry, "acquisitions", &context)?;
        require_number(entry, "devices", &context)?;
    }
    for mode in ["per-call-construction", "sharded-memoized"] {
        if !resolution
            .iter()
            .any(|entry| matches!(entry.get_field("mode"), Some(Value::String(s)) if s == mode))
        {
            return Err(format!("resolution: missing row for mode {mode:?}"));
        }
    }

    let brownout = require_array(&root, "brownout")?;
    for (i, entry) in brownout.iter().enumerate() {
        let context = format!("brownout[{i}]");
        let admission = match entry.get_field("admission") {
            Some(Value::Bool(b)) => *b,
            other => {
                return Err(format!(
                    "{context}: admission is {other:?}, expected a bool"
                ))
            }
        };
        for key in [
            "target_shard",
            "ops_multiplier",
            "deadline_budget_ms",
            "total_ops",
            "errors",
            "degraded",
            "deadline_exceeded",
        ] {
            let value = require_number(entry, key, &context)?;
            if value < 0.0 {
                return Err(format!("{context}: negative {key}"));
            }
        }
        let target = require_number(entry, "p99_target_ms", &context)?;
        let shed = require_number(entry, "shed", &context)?;
        let shard_p99 = require_number(entry, "shard_p99_ms", &context)?;
        let deadline_blown = require_number(entry, "deadline_blown", &context)?;
        let promoted_traces = require_number(entry, "promoted_traces", &context)?;
        let promoted_deadline = require_number(entry, "promoted_deadline", &context)?;
        if promoted_deadline > promoted_traces {
            return Err(format!(
                "{context}: promoted_deadline {promoted_deadline} exceeds promoted_traces {promoted_traces}"
            ));
        }
        for key in ["checksum", "incident_checksum"] {
            let checksum = require_string(entry, key, &context)?;
            if checksum.len() != 16 || !checksum.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(format!(
                    "{context}: {key} is not a 16-digit hex string: {checksum:?}"
                ));
            }
        }
        // The overload gate itself: shedding must keep the accepted-call
        // p99 of the ramped shard within target, and the unprotected arm
        // must demonstrably blow past it — with a promoted trace in the
        // incident store explaining every deadline breach.
        if admission {
            if shed <= 0.0 {
                return Err(format!("{context}: admission arm shed nothing"));
            }
            if shard_p99 > target {
                return Err(format!(
                    "{context}: admission arm p99 {shard_p99} exceeds target {target}"
                ));
            }
        } else {
            if shed != 0.0 {
                return Err(format!("{context}: unprotected arm shed {shed} calls"));
            }
            if shard_p99 <= target {
                return Err(format!(
                    "{context}: unprotected arm p99 {shard_p99} within target {target} — the ramp did not overload the shard"
                ));
            }
            if deadline_blown <= 0.0 {
                return Err(format!(
                    "{context}: unprotected arm blew no deadlines — the ramp did not overload the shard"
                ));
            }
            if promoted_deadline != deadline_blown {
                return Err(format!(
                    "{context}: {promoted_deadline} promoted deadline traces for {deadline_blown} blown deadlines — the flight recorder lost evidence"
                ));
            }
        }
    }
    for (admission, label) in [(true, "admission-on"), (false, "admission-off")] {
        if !brownout.iter().any(
            |entry| matches!(entry.get_field("admission"), Some(Value::Bool(b)) if *b == admission),
        ) {
            return Err(format!("brownout: missing the {label} arm"));
        }
    }

    let cache = require_array(&root, "cache")?;
    let mut arms: Vec<(bool, u64, u64, &str)> = Vec::new();
    for (i, entry) in cache.iter().enumerate() {
        let context = format!("cache[{i}]");
        let cached = match entry.get_field("cached") {
            Some(Value::Bool(b)) => *b,
            other => return Err(format!("{context}: cached is {other:?}, expected a bool")),
        };
        for key in [
            "devices",
            "total_ops",
            "errors",
            "location_fixes",
            "coalesced",
            "invalidated",
        ] {
            let value = require_number(entry, key, &context)?;
            if value < 0.0 {
                return Err(format!("{context}: negative {key}"));
            }
        }
        let binding_reads = require_number(entry, "binding_reads", &context)?;
        let hits = require_number(entry, "hits", &context)?;
        if binding_reads < 0.0 || hits < 0.0 {
            return Err(format!("{context}: negative read counter"));
        }
        let checksum = require_string(entry, "checksum", &context)?;
        if checksum.len() != 16 || !checksum.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!(
                "{context}: checksum is not a 16-digit hex string: {checksum:?}"
            ));
        }
        arms.push((cached, binding_reads as u64, hits as u64, checksum));
    }
    // The cache gate: both arms present, byte-identical results, a
    // cached arm that actually hit, and a ≥5x cut in binding-plane read
    // invocations.
    let Some(on) = arms.iter().find(|(cached, ..)| *cached) else {
        return Err("cache: missing the cached arm".to_owned());
    };
    let Some(off) = arms.iter().find(|(cached, ..)| !*cached) else {
        return Err("cache: missing the uncached arm".to_owned());
    };
    if on.3 != off.3 {
        return Err(format!(
            "cache: arm checksums differ ({} vs {}) — caching changed what the fleet computes",
            on.3, off.3
        ));
    }
    if on.2 == 0 {
        return Err("cache: the cached arm never hit".to_owned());
    }
    if on.1 == 0 || off.1 < on.1 * 5 {
        return Err(format!(
            "cache: binding-plane reads {} (cached) vs {} (uncached) miss the 5x reduction bar",
            on.1, off.1
        ));
    }

    let bridge = require_array(&root, "bridge")?;
    let mut bridge_arms: Vec<(bool, u64, &str)> = Vec::new();
    for (i, entry) in bridge.iter().enumerate() {
        let context = format!("bridge[{i}]");
        let batched = match entry.get_field("batched") {
            Some(Value::Bool(b)) => *b,
            other => return Err(format!("{context}: batched is {other:?}, expected a bool")),
        };
        for key in [
            "devices",
            "webview_devices",
            "total_ops",
            "errors",
            "location_fixes",
        ] {
            let value = require_number(entry, key, &context)?;
            if value < 0.0 {
                return Err(format!("{context}: negative {key}"));
            }
        }
        let crossings = require_number(entry, "crossings", &context)?;
        if crossings < 0.0 {
            return Err(format!("{context}: negative crossings"));
        }
        let checksum = require_string(entry, "checksum", &context)?;
        if checksum.len() != 16 || !checksum.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!(
                "{context}: checksum is not a 16-digit hex string: {checksum:?}"
            ));
        }
        bridge_arms.push((batched, crossings as u64, checksum));
    }
    // The bridge gate: both arms present, byte-identical results —
    // batching must be invisible to what the fleet computes — and a
    // batched arm that crossed the bridge strictly fewer times.
    let Some(on) = bridge_arms.iter().find(|(batched, ..)| *batched) else {
        return Err("bridge: missing the batched arm".to_owned());
    };
    let Some(off) = bridge_arms.iter().find(|(batched, ..)| !*batched) else {
        return Err("bridge: missing the unbatched arm".to_owned());
    };
    if on.2 != off.2 {
        return Err(format!(
            "bridge: arm checksums differ ({} vs {}) — batching changed what the fleet computes",
            on.2, off.2
        ));
    }
    if on.1 == 0 {
        return Err("bridge: the batched arm never crossed the bridge".to_owned());
    }
    if off.1 <= on.1 {
        return Err(format!(
            "bridge: crossings {} (batched) vs {} (unbatched) show no reduction",
            on.1, off.1
        ));
    }

    let crash = require_array(&root, "crash")?;
    struct CrashArm {
        stormed: bool,
        shards: u64,
        crashes_per_shard: u64,
        recoveries: u64,
        torn_crashes: u64,
        gap_crashes: u64,
        duplicates: u64,
        checksum: String,
    }
    let mut crash_arms: Vec<CrashArm> = Vec::new();
    for (i, entry) in crash.iter().enumerate() {
        let context = format!("crash[{i}]");
        let stormed = match entry.get_field("stormed") {
            Some(Value::Bool(b)) => *b,
            other => return Err(format!("{context}: stormed is {other:?}, expected a bool")),
        };
        for key in [
            "devices",
            "shards",
            "crashes_per_shard",
            "total_ops",
            "errors",
            "recoveries",
            "torn_crashes",
            "gap_crashes",
            "effect_crashes",
            "replayed_records",
            "torn_truncated",
            "suppressed_duplicates",
            "duplicates",
            "recovery_p50_us",
            "recovery_p99_us",
        ] {
            let value = require_number(entry, key, &context)?;
            if value < 0.0 {
                return Err(format!("{context}: negative {key}"));
            }
        }
        let checksum = require_string(entry, "checksum", &context)?;
        if checksum.len() != 16 || !checksum.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(format!(
                "{context}: checksum is not a 16-digit hex string: {checksum:?}"
            ));
        }
        crash_arms.push(CrashArm {
            stormed,
            shards: require_number(entry, "shards", &context)? as u64,
            crashes_per_shard: require_number(entry, "crashes_per_shard", &context)? as u64,
            recoveries: require_number(entry, "recoveries", &context)? as u64,
            torn_crashes: require_number(entry, "torn_crashes", &context)? as u64,
            gap_crashes: require_number(entry, "gap_crashes", &context)? as u64,
            duplicates: require_number(entry, "duplicates", &context)? as u64,
            checksum: checksum.to_owned(),
        });
    }
    // The exactly-once gate: both arms present, byte-identical results
    // — a storm of recovered crashes must be invisible to what the
    // fleet computes — zero duplicate effects on either arm, every
    // scheduled crash recovered, and both hard crash points exercised
    // on every shard.
    let Some(on) = crash_arms.iter().find(|a| a.stormed) else {
        return Err("crash: missing the stormed arm".to_owned());
    };
    let Some(off) = crash_arms.iter().find(|a| !a.stormed) else {
        return Err("crash: missing the crash-free arm".to_owned());
    };
    if on.checksum != off.checksum {
        return Err(format!(
            "crash: arm checksums differ ({} vs {}) — recovery changed what the fleet computes",
            on.checksum, off.checksum
        ));
    }
    if on.duplicates != 0 || off.duplicates != 0 {
        return Err(format!(
            "crash: {} stormed / {} crash-free duplicate effects — exactly-once is violated",
            on.duplicates, off.duplicates
        ));
    }
    if on.recoveries != on.shards * on.crashes_per_shard {
        return Err(format!(
            "crash: {} recoveries for {} shards x {} scheduled crashes",
            on.recoveries, on.shards, on.crashes_per_shard
        ));
    }
    if on.torn_crashes < on.shards || on.gap_crashes < on.shards {
        return Err(format!(
            "crash: {} torn / {} gap crashes did not cover all {} shards",
            on.torn_crashes, on.gap_crashes, on.shards
        ));
    }
    if off.recoveries != 0 {
        return Err(format!(
            "crash: the crash-free arm recovered {} times",
            off.recoveries
        ));
    }

    Ok(FleetCheck {
        scaling_rows: scaling.len(),
        resolution_rows: resolution.len(),
        brownout_rows: brownout.len(),
        cache_rows: cache.len(),
        bridge_rows: bridge.len(),
        crash_rows: crash.len(),
    })
}

/// One scaling row parsed back out of a committed fleet baseline, with
/// enough configuration to re-run it and enough results to compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetBaselineRow {
    /// Shard count of the baseline run.
    pub shards: usize,
    /// Device count of the baseline run.
    pub devices: usize,
    /// Worker count of the baseline run.
    pub workers: usize,
    /// Rounds of the baseline run.
    pub rounds: u64,
    /// Ops per device per round of the baseline run.
    pub ops_per_round: u32,
    /// Seed of the baseline run.
    pub seed: u64,
    /// Whether the baseline run traced its devices.
    pub telemetry: bool,
    /// Recorded deterministic throughput, ops per virtual second.
    pub virtual_ops_per_sec: u64,
    /// Recorded determinism fingerprint.
    pub checksum: u64,
}

/// Parses the scaling rows of a fleet baseline document (validating it
/// first) so a regression gate can re-run each configuration.
///
/// # Errors
///
/// Everything [`validate_fleet_json`] rejects, plus a malformed
/// checksum.
pub fn parse_fleet_baseline(json: &str) -> Result<Vec<FleetBaselineRow>, String> {
    validate_fleet_json(json)?;
    let root: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let scaling = require_array(&root, "scaling")?;
    scaling
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let context = format!("scaling[{i}]");
            let checksum_hex = require_string(entry, "checksum", &context)?;
            let checksum = u64::from_str_radix(checksum_hex, 16)
                .map_err(|e| format!("{context}: bad checksum: {e}"))?;
            let telemetry = matches!(entry.get_field("telemetry"), Some(Value::Bool(true)));
            Ok(FleetBaselineRow {
                shards: require_number(entry, "shards", &context)? as usize,
                devices: require_number(entry, "devices", &context)? as usize,
                workers: require_number(entry, "workers", &context)? as usize,
                rounds: require_number(entry, "rounds", &context)? as u64,
                ops_per_round: require_number(entry, "ops_per_round", &context)? as u32,
                seed: require_number(entry, "seed", &context)? as u64,
                telemetry,
                virtual_ops_per_sec: require_number(entry, "virtual_ops_per_sec", &context)? as u64,
                checksum,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure10::{run_figure10, run_resilience_overhead, run_telemetry_overhead, Scale};

    fn sample() -> String {
        summary_json(
            "zero",
            2,
            &SummarySections {
                rows: &run_figure10(Scale::ZeroCost, 2),
                resilience: &run_resilience_overhead(Scale::ZeroCost, 2),
                telemetry: &run_telemetry_overhead(Scale::ZeroCost, 2),
                hotpath: &crate::telemetry_hotpath::run_hotpath_comparison(5_000),
                bridge: &crate::bridge_overhead::run_bridge_overhead(20_000),
                journal: &crate::figure10::run_journal_ablation(),
            },
        )
    }

    #[test]
    fn summary_round_trips_through_validation() {
        let check = validate_summary_json(&sample()).expect("generated summary is valid");
        assert_eq!(
            check,
            SummaryCheck {
                figure10_rows: 9,
                resilience_rows: 3,
                telemetry_rows: 3,
                hotpath_rows: 2,
                bridge_rows: 3,
                journal_rows: 3,
            }
        );
    }

    #[test]
    fn summary_rejects_missing_journal_mode() {
        let json = sample().replace("journal+checkpoints", "journal+nothing");
        let err = validate_summary_json(&json).unwrap_err();
        assert!(err.contains("unknown mode"), "{err}");
    }

    #[test]
    fn summary_rejects_an_unjournalled_ablation() {
        let json = regex_free_replace(&sample(), "client_appends", 0.0);
        let err = validate_summary_json(&json).unwrap_err();
        assert!(err.contains("never journalled"), "{err}");
    }

    #[test]
    fn summary_rejects_missing_bridge_mode() {
        let json = sample().replace("wire-buf", "wire-gone");
        let err = validate_summary_json(&json).unwrap_err();
        assert!(err.contains("unknown mode"), "{err}");
    }

    #[test]
    fn summary_rejects_missing_hotpath_mode() {
        let json = sample().replace("cached-handles", "cached-nothing");
        let err = validate_summary_json(&json).unwrap_err();
        assert!(err.contains("cached-handles"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let json = sample().replace(SCHEMA, "mobivine.figure10.v0");
        let err = validate_summary_json(&json).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn missing_section_is_rejected() {
        let json = sample().replace("telemetry_overhead", "telemetry_dropped");
        assert!(validate_summary_json(&json).is_err());
    }

    #[test]
    fn garbage_is_rejected_with_a_parse_error() {
        let err = validate_summary_json("{not json").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
    }

    fn fleet_sample() -> String {
        let scaling = crate::fleet_bench::run_fleet_scaling(24, &[1, 2], 2, 1, 1, 3);
        let resolution = crate::fleet_bench::run_resolution_comparison(4, 100);
        let brownout = crate::fleet_bench::run_fleet_brownout(30, 4, 3, 3, 2, 11);
        let cache = crate::fleet_bench::run_fleet_cache(30, 4, 3, 4, 6, 11);
        let bridge = crate::fleet_bench::run_fleet_bridge(30, 4, 3, 4, 6, 11);
        let crash = crate::fleet_bench::run_fleet_crash(30, 4, 3, 3, 2, 11, 3);
        fleet_summary_json(&scaling, &resolution, &brownout, &cache, &bridge, &crash)
    }

    #[test]
    fn fleet_summary_round_trips_through_validation() {
        let check = validate_fleet_json(&fleet_sample()).expect("generated fleet summary is valid");
        assert_eq!(
            check,
            FleetCheck {
                scaling_rows: 2,
                resolution_rows: 2,
                brownout_rows: 2,
                cache_rows: 2,
                bridge_rows: 2,
                crash_rows: 2,
            }
        );
    }

    #[test]
    fn fleet_summary_rejects_a_missing_crash_arm() {
        let json = fleet_sample().replace("\"stormed\":false", "\"stormed\":true");
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("crash-free arm"), "{err}");
    }

    #[test]
    fn fleet_summary_rejects_a_duplicated_effect() {
        let json = regex_free_replace(&fleet_sample(), "duplicates", 1.0);
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("exactly-once"), "{err}");
    }

    #[test]
    fn fleet_summary_rejects_a_missing_bridge_arm() {
        let json = fleet_sample().replace("\"batched\":false", "\"batched\":true");
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("unbatched arm"), "{err}");
    }

    #[test]
    fn fleet_summary_rejects_a_bridge_arm_without_reduction() {
        // Pinning both arms' crossings to the same value erases the
        // batched arm's advantage, which the v5 gate must reject.
        let json = regex_free_replace(&fleet_sample(), "crossings", 500.0);
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("no reduction"), "{err}");
    }

    #[test]
    fn fleet_summary_rejects_a_missing_cache_arm() {
        let json = fleet_sample().replace("\"cached\":false", "\"cached\":true");
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("uncached arm"), "{err}");
    }

    #[test]
    fn fleet_summary_rejects_a_cold_cache() {
        let json = regex_free_replace(&fleet_sample(), "hits", 0.0);
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("never hit"), "{err}");
    }

    #[test]
    fn fleet_summary_rejects_a_missing_brownout_arm() {
        let json = fleet_sample().replace("\"admission\":false", "\"admission\":true");
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("brownout"), "{err}");
    }

    #[test]
    fn fleet_summary_is_byte_identical_across_runs() {
        assert_eq!(fleet_sample(), fleet_sample());
    }

    #[test]
    fn fleet_summary_rejects_missing_resolution_mode() {
        let json = fleet_sample().replace("sharded-memoized", "sharded-unknown");
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("sharded-memoized"), "{err}");
    }

    #[test]
    fn fleet_summary_rejects_unexplained_deadline_breaches() {
        // Zero out the promoted-deadline evidence of every arm; the
        // unprotected arm then has blown deadlines with no promoted
        // traces, which the v3 gate must reject.
        let json = regex_free_replace(&fleet_sample(), "promoted_deadline", 0.0);
        let err = validate_fleet_json(&json).unwrap_err();
        assert!(err.contains("flight recorder lost evidence"), "{err}");
    }

    /// Replaces field `key`'s numeric value with `value` in every
    /// object of a compact serde_json document (string hack — the stub
    /// serializer emits `"key":value` with no spaces).
    fn regex_free_replace(json: &str, key: &str, value: f64) -> String {
        let needle = format!("\"{key}\":");
        let mut out = String::with_capacity(json.len());
        let mut rest = json;
        while let Some(at) = rest.find(&needle) {
            let after = at + needle.len();
            out.push_str(&rest[..after]);
            let tail = &rest[after..];
            let end = tail.find([',', '}']).unwrap_or(tail.len());
            out.push_str(&format!("{value}"));
            rest = &tail[end..];
        }
        out.push_str(rest);
        out
    }

    #[test]
    fn fleet_summary_rejects_wrong_schema() {
        let json = fleet_sample().replace(FLEET_SCHEMA, "mobivine.fleet.v0");
        assert!(validate_fleet_json(&json).is_err());
    }
}
