//! Machine-readable bench summary (`figure10 --json`).
//!
//! One JSON document carries everything the `figure10` binary prints:
//! the nine Figure 10 pairs with their histogram-derived p50/p95/p99
//! tails, the resilience-overhead ablation and the telemetry-overhead
//! ablation. [`validate_summary_json`] is the schema check shared by
//! the binary's `--check` mode and CI.

use serde_json::Value;

use crate::figure10::{Figure10Row, LatencyStats, ResilienceOverheadRow, TelemetryOverheadRow};

/// Schema identifier stamped into (and required from) every summary.
pub const SCHEMA: &str = "mobivine.figure10.v1";

fn num(v: f64) -> Value {
    Value::Number(v)
}

fn text(v: &str) -> Value {
    Value::String(v.to_owned())
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn stats_value(stats: &LatencyStats) -> Value {
    object(vec![
        ("mean_ms", num(stats.mean_ms)),
        ("p50_ms", num(stats.p50_ms)),
        ("p95_ms", num(stats.p95_ms)),
        ("p99_ms", num(stats.p99_ms)),
    ])
}

/// Builds the summary document as a JSON string.
pub fn summary_json(
    scale: &str,
    runs: u32,
    rows: &[Figure10Row],
    resilience: &[ResilienceOverheadRow],
    telemetry: &[TelemetryOverheadRow],
) -> String {
    let figure10 = rows
        .iter()
        .map(|row| {
            object(vec![
                ("platform", text(row.platform)),
                ("api", text(row.api)),
                ("without", stats_value(&row.without_stats)),
                ("with", stats_value(&row.with_stats)),
                ("overhead_fraction", num(row.overhead_fraction())),
                ("paper_without_ms", num(row.paper_ms.0)),
                ("paper_with_ms", num(row.paper_ms.1)),
            ])
        })
        .collect();
    let resilience = resilience
        .iter()
        .map(|row| {
            object(vec![
                ("platform", text(row.platform)),
                ("native_ms", num(row.native_ms)),
                ("proxy_ms", num(row.proxy_ms)),
                ("resilient_ms", num(row.resilient_ms)),
            ])
        })
        .collect();
    let telemetry = telemetry
        .iter()
        .map(|row| {
            object(vec![
                ("platform", text(row.platform)),
                ("bare_ms", num(row.bare_ms)),
                ("instrumented_ms", num(row.instrumented_ms)),
                ("overhead_fraction", num(row.overhead_fraction())),
            ])
        })
        .collect();
    object(vec![
        ("schema", text(SCHEMA)),
        ("scale", text(scale)),
        ("runs", num(runs as f64)),
        ("figure10", Value::Array(figure10)),
        ("resilience_overhead", Value::Array(resilience)),
        ("telemetry_overhead", Value::Array(telemetry)),
    ])
    .to_string()
}

/// What a valid summary contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryCheck {
    /// Number of Figure 10 pairs (always 9 for a full run).
    pub figure10_rows: usize,
    /// Number of resilience-overhead rows.
    pub resilience_rows: usize,
    /// Number of telemetry-overhead rows.
    pub telemetry_rows: usize,
}

fn require_number(entry: &Value, key: &str, context: &str) -> Result<f64, String> {
    match entry.get_field(key) {
        Some(Value::Number(n)) if n.is_finite() => Ok(*n),
        Some(other) => Err(format!("{context}: field {key} is not a number: {other:?}")),
        None => Err(format!("{context}: missing field {key}")),
    }
}

fn require_string<'a>(entry: &'a Value, key: &str, context: &str) -> Result<&'a str, String> {
    match entry.get_field(key) {
        Some(Value::String(s)) if !s.is_empty() => Ok(s),
        _ => Err(format!("{context}: missing string field {key}")),
    }
}

fn require_array<'a>(root: &'a Value, key: &str) -> Result<&'a [Value], String> {
    match root.get_field(key) {
        Some(Value::Array(items)) if !items.is_empty() => Ok(items),
        Some(Value::Array(_)) => Err(format!("{key} is empty")),
        _ => Err(format!("missing array {key}")),
    }
}

fn check_stats(entry: &Value, key: &str, context: &str) -> Result<(), String> {
    let stats = entry
        .get_field(key)
        .ok_or_else(|| format!("{context}: missing {key} stats"))?;
    let p50 = require_number(stats, "p50_ms", context)?;
    let p95 = require_number(stats, "p95_ms", context)?;
    let p99 = require_number(stats, "p99_ms", context)?;
    require_number(stats, "mean_ms", context)?;
    if p50 > p95 || p95 > p99 {
        return Err(format!(
            "{context}: {key} quantiles are not ordered: p50={p50} p95={p95} p99={p99}"
        ));
    }
    Ok(())
}

/// Validates a `figure10 --json` document against the
/// [`SCHEMA`] shape.
///
/// # Errors
///
/// A human-readable description of the first violation: bad JSON, a
/// wrong or missing schema id, or a missing/mistyped field.
pub fn validate_summary_json(json: &str) -> Result<SummaryCheck, String> {
    let root: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    match root.get_field("schema") {
        Some(Value::String(s)) if s == SCHEMA => {}
        Some(Value::String(s)) => return Err(format!("unknown schema {s:?}, expected {SCHEMA:?}")),
        _ => return Err("missing schema field".to_owned()),
    }
    require_string(&root, "scale", "summary")?;
    require_number(&root, "runs", "summary")?;

    let figure10 = require_array(&root, "figure10")?;
    for (i, entry) in figure10.iter().enumerate() {
        let context = format!("figure10[{i}]");
        require_string(entry, "platform", &context)?;
        require_string(entry, "api", &context)?;
        check_stats(entry, "without", &context)?;
        check_stats(entry, "with", &context)?;
        require_number(entry, "overhead_fraction", &context)?;
        require_number(entry, "paper_without_ms", &context)?;
        require_number(entry, "paper_with_ms", &context)?;
    }

    let resilience = require_array(&root, "resilience_overhead")?;
    for (i, entry) in resilience.iter().enumerate() {
        let context = format!("resilience_overhead[{i}]");
        require_string(entry, "platform", &context)?;
        require_number(entry, "native_ms", &context)?;
        require_number(entry, "proxy_ms", &context)?;
        require_number(entry, "resilient_ms", &context)?;
    }

    let telemetry = require_array(&root, "telemetry_overhead")?;
    for (i, entry) in telemetry.iter().enumerate() {
        let context = format!("telemetry_overhead[{i}]");
        require_string(entry, "platform", &context)?;
        let bare = require_number(entry, "bare_ms", &context)?;
        let instrumented = require_number(entry, "instrumented_ms", &context)?;
        require_number(entry, "overhead_fraction", &context)?;
        if bare < 0.0 || instrumented < 0.0 {
            return Err(format!("{context}: negative latency"));
        }
    }

    Ok(SummaryCheck {
        figure10_rows: figure10.len(),
        resilience_rows: resilience.len(),
        telemetry_rows: telemetry.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure10::{run_figure10, run_resilience_overhead, run_telemetry_overhead, Scale};

    fn sample() -> String {
        summary_json(
            "zero",
            2,
            &run_figure10(Scale::ZeroCost, 2),
            &run_resilience_overhead(Scale::ZeroCost, 2),
            &run_telemetry_overhead(Scale::ZeroCost, 2),
        )
    }

    #[test]
    fn summary_round_trips_through_validation() {
        let check = validate_summary_json(&sample()).expect("generated summary is valid");
        assert_eq!(
            check,
            SummaryCheck {
                figure10_rows: 9,
                resilience_rows: 3,
                telemetry_rows: 3,
            }
        );
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let json = sample().replace(SCHEMA, "mobivine.figure10.v0");
        let err = validate_summary_json(&json).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn missing_section_is_rejected() {
        let json = sample().replace("telemetry_overhead", "telemetry_dropped");
        assert!(validate_summary_json(&json).is_err());
    }

    #[test]
    fn garbage_is_rejected_with_a_parse_error() {
        let err = validate_summary_json("{not json").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
    }
}
