//! Figure 10 regeneration.
//!
//! The paper times `addProximityAlert`, `getLocation` and `sendSMS`
//! with and without proxies on Android, Android WebView and Nokia S60,
//! averaging ten executions per API. The native costs are calibrated to
//! the paper's bars (see [`mobivine_device::latency`]); the proxy
//! overhead on top is genuinely measured Rust.

use std::fmt;
use std::time::Instant;

use mobivine_apps::fleet::{DurabilityFleetConfig, Fleet, FleetConfig};
use mobivine_device::latency::LatencyModel;
use mobivine_telemetry::Histogram;

use crate::harness::{AndroidFixture, S60Fixture, WebViewFixture};

/// Which latency calibration a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Millisecond-scale native costs, exactly the paper's Figure 10
    /// values — a full run takes a few seconds of wall time.
    Paper,
    /// The same values read as microseconds — for Criterion runs.
    Bench,
    /// Zero native cost — isolates pure proxy overhead (the ablation).
    ZeroCost,
}

impl Scale {
    /// Stable machine-readable name, as stamped into the JSON summary.
    pub fn as_str(&self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Bench => "bench",
            Scale::ZeroCost => "zero",
        }
    }

    fn android(&self) -> LatencyModel {
        match self {
            Scale::Paper => LatencyModel::paper_android(),
            Scale::Bench => LatencyModel::bench_android(),
            Scale::ZeroCost => LatencyModel::zero(),
        }
    }

    fn webview(&self) -> LatencyModel {
        match self {
            Scale::Paper => LatencyModel::paper_webview(),
            Scale::Bench => LatencyModel::bench_webview(),
            Scale::ZeroCost => LatencyModel::zero(),
        }
    }

    fn s60(&self) -> LatencyModel {
        match self {
            Scale::Paper => LatencyModel::paper_s60(),
            Scale::Bench => LatencyModel::bench_s60(),
            Scale::ZeroCost => LatencyModel::zero(),
        }
    }
}

/// Latency distribution of one measured call path, derived from a
/// log-bucketed telemetry [`Histogram`] of per-call wall-clock
/// microseconds (the paper reports means; the histogram additionally
/// yields tail quantiles).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Arithmetic mean per call, ms.
    pub mean_ms: f64,
    /// Median per-call time, ms.
    pub p50_ms: f64,
    /// 95th-percentile per-call time, ms.
    pub p95_ms: f64,
    /// 99th-percentile per-call time, ms.
    pub p99_ms: f64,
}

impl LatencyStats {
    /// Derives the table entries from a histogram of microsecond
    /// samples.
    pub fn from_histogram_us(histogram: &Histogram) -> Self {
        const US_PER_MS: f64 = 1000.0;
        Self {
            mean_ms: histogram.mean() / US_PER_MS,
            p50_ms: histogram.quantile(0.5) / US_PER_MS,
            p95_ms: histogram.quantile(0.95) / US_PER_MS,
            p99_ms: histogram.quantile(0.99) / US_PER_MS,
        }
    }
}

/// One bar pair of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure10Row {
    /// Platform label, as the figure prints it.
    pub platform: &'static str,
    /// API label, as the figure prints it.
    pub api: &'static str,
    /// Mean native invocation time, ms ("Without Proxy").
    pub without_proxy_ms: f64,
    /// Mean proxied invocation time, ms ("With Proxy").
    pub with_proxy_ms: f64,
    /// The paper's reported values `(without, with)` for comparison.
    pub paper_ms: (f64, f64),
    /// Full latency distribution of the native path.
    pub without_stats: LatencyStats,
    /// Full latency distribution of the proxied path.
    pub with_stats: LatencyStats,
}

impl Figure10Row {
    /// Relative proxy overhead of the measured pair.
    pub fn overhead_fraction(&self) -> f64 {
        if self.without_proxy_ms <= 0.0 {
            return 0.0;
        }
        (self.with_proxy_ms - self.without_proxy_ms) / self.without_proxy_ms
    }
}

impl fmt::Display for Figure10Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:<18} {:>10.3} {:>10.3} {:>8.1}% (paper: {:.1} / {:.1})",
            self.platform,
            self.api,
            self.without_proxy_ms,
            self.with_proxy_ms,
            self.overhead_fraction() * 100.0,
            self.paper_ms.0,
            self.paper_ms.1,
        )
    }
}

/// Times `f` over `runs` executions, recording each call's wall-clock
/// duration in microseconds into a telemetry [`Histogram`], and derives
/// the latency table from it — mean (the paper's "average of ten
/// executions") plus p50/p95/p99 tails.
pub fn measure<F: FnMut()>(runs: u32, mut f: F) -> LatencyStats {
    let histogram = Histogram::new();
    for _ in 0..runs {
        let start = Instant::now();
        f();
        histogram.record(start.elapsed().as_micros() as u64);
    }
    LatencyStats::from_histogram_us(&histogram)
}

/// Mean per-call time in milliseconds over `runs` executions — a thin
/// wrapper over [`measure`] for call sites that only need the mean.
pub fn mean_ms<F: FnMut()>(runs: u32, f: F) -> f64 {
    measure(runs, f).mean_ms
}

/// The paper's Figure 10 values, `(platform, api, without, with)`.
pub const PAPER_VALUES: [(&str, &str, f64, f64); 9] = [
    ("Android", "addProximityAlert", 53.6, 55.4),
    ("Android", "getLocation", 15.5, 17.3),
    ("Android", "sendSMS", 52.7, 55.8),
    ("Android WebView", "addProximityAlert", 78.4, 80.5),
    ("Android WebView", "getLocation", 120.0, 121.7),
    ("Android WebView", "sendSMS", 91.6, 91.8),
    ("Nokia S60", "addProximityAlert", 141.0, 146.8),
    ("Nokia S60", "getLocation", 140.8, 148.5),
    ("Nokia S60", "sendSMS", 15.6, 16.1),
];

fn paper_pair(platform: &str, api: &str) -> (f64, f64) {
    PAPER_VALUES
        .iter()
        .find(|(p, a, _, _)| *p == platform && *a == api)
        .map(|(_, _, w, wp)| (*w, *wp))
        .expect("paper table covers all nine pairs")
}

/// Measures one bar pair: both paths go through [`measure`], so the
/// printed means and the JSON quantiles come from the same histograms.
fn measure_row<W: FnMut(), P: FnMut()>(
    platform: &'static str,
    api: &'static str,
    runs: u32,
    without_f: W,
    with_f: P,
) -> Figure10Row {
    let without_stats = measure(runs, without_f);
    let with_stats = measure(runs, with_f);
    Figure10Row {
        platform,
        api,
        without_proxy_ms: without_stats.mean_ms,
        with_proxy_ms: with_stats.mean_ms,
        paper_ms: paper_pair(platform, api),
        without_stats,
        with_stats,
    }
}

/// Runs the full Figure 10 measurement: nine (platform, API) pairs,
/// each averaged over `runs` executions, at the given scale.
pub fn run_figure10(scale: Scale, runs: u32) -> Vec<Figure10Row> {
    let mut rows = Vec::with_capacity(9);

    let android = AndroidFixture::new(scale.android());
    rows.push(measure_row(
        "Android",
        "addProximityAlert",
        runs,
        || android.native_add_proximity_alert(),
        || android.proxy_add_proximity_alert(),
    ));
    rows.push(measure_row(
        "Android",
        "getLocation",
        runs,
        || android.native_get_location(),
        || android.proxy_get_location(),
    ));
    rows.push(measure_row(
        "Android",
        "sendSMS",
        runs,
        || android.native_send_sms(),
        || android.proxy_send_sms(),
    ));

    let webview = WebViewFixture::new(scale.webview());
    rows.push(measure_row(
        "Android WebView",
        "addProximityAlert",
        runs,
        || webview.native_add_proximity_alert(),
        || webview.proxy_add_proximity_alert(),
    ));
    rows.push(measure_row(
        "Android WebView",
        "getLocation",
        runs,
        || webview.native_get_location(),
        || webview.proxy_get_location(),
    ));
    rows.push(measure_row(
        "Android WebView",
        "sendSMS",
        runs,
        || webview.native_send_sms(),
        || webview.proxy_send_sms(),
    ));

    let s60 = S60Fixture::new(scale.s60());
    rows.push(measure_row(
        "Nokia S60",
        "addProximityAlert",
        runs,
        || s60.native_add_proximity_alert(),
        || s60.proxy_add_proximity_alert(),
    ));
    rows.push(measure_row(
        "Nokia S60",
        "getLocation",
        runs,
        || s60.native_get_location(),
        || s60.proxy_get_location(),
    ));
    rows.push(measure_row(
        "Nokia S60",
        "sendSMS",
        runs,
        || s60.native_send_sms(),
        || s60.proxy_send_sms(),
    ));

    rows
}

/// One row of the resilience-overhead ablation: `getLocation` on one
/// platform — native, through the plain proxy, and through the proxy
/// wrapped by the resilience layer (retry/circuit bookkeeping on the
/// happy path, no faults injected).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceOverheadRow {
    /// Platform label, as the figure prints it.
    pub platform: &'static str,
    /// Mean native invocation time, ms.
    pub native_ms: f64,
    /// Mean plain-proxy invocation time, ms.
    pub proxy_ms: f64,
    /// Mean resilient-proxy invocation time, ms.
    pub resilient_ms: f64,
}

impl fmt::Display for ResilienceOverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>10.3} {:>10.3} {:>12.3}",
            self.platform, self.native_ms, self.proxy_ms, self.resilient_ms,
        )
    }
}

/// Measures the resilience-layer overhead on the happy path: the
/// `getLocation` cost native vs plain proxy vs resilient proxy on each
/// platform, averaged over `runs` executions.
pub fn run_resilience_overhead(scale: Scale, runs: u32) -> Vec<ResilienceOverheadRow> {
    let android = AndroidFixture::new(scale.android());
    let webview = WebViewFixture::new(scale.webview());
    let s60 = S60Fixture::new(scale.s60());
    vec![
        ResilienceOverheadRow {
            platform: "Android",
            native_ms: mean_ms(runs, || android.native_get_location()),
            proxy_ms: mean_ms(runs, || android.proxy_get_location()),
            resilient_ms: mean_ms(runs, || android.resilient_get_location()),
        },
        ResilienceOverheadRow {
            platform: "Android WebView",
            native_ms: mean_ms(runs, || webview.native_get_location()),
            proxy_ms: mean_ms(runs, || webview.proxy_get_location()),
            resilient_ms: mean_ms(runs, || webview.resilient_get_location()),
        },
        ResilienceOverheadRow {
            platform: "Nokia S60",
            native_ms: mean_ms(runs, || s60.native_get_location()),
            proxy_ms: mean_ms(runs, || s60.proxy_get_location()),
            resilient_ms: mean_ms(runs, || s60.resilient_get_location()),
        },
    ]
}

/// One row of the telemetry-overhead ablation: `getLocation` through
/// the plain proxy vs. through the proxy with the telemetry runtime
/// attached (spans at every plane, counters and a latency histogram
/// per call).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOverheadRow {
    /// Platform label, as the figure prints it.
    pub platform: &'static str,
    /// Mean uninstrumented proxy invocation time, ms.
    pub bare_ms: f64,
    /// Mean instrumented proxy invocation time, ms.
    pub instrumented_ms: f64,
}

impl TelemetryOverheadRow {
    /// Relative cost of the instrumentation.
    pub fn overhead_fraction(&self) -> f64 {
        if self.bare_ms <= 0.0 {
            return 0.0;
        }
        (self.instrumented_ms - self.bare_ms) / self.bare_ms
    }
}

impl fmt::Display for TelemetryOverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>10.3} {:>13.3}",
            self.platform, self.bare_ms, self.instrumented_ms,
        )
    }
}

/// Measures the telemetry-layer overhead: `getLocation` through the
/// plain proxy vs. the instrumented proxy on each platform, averaged
/// over `runs` executions.
pub fn run_telemetry_overhead(scale: Scale, runs: u32) -> Vec<TelemetryOverheadRow> {
    let android = AndroidFixture::new(scale.android());
    let webview = WebViewFixture::new(scale.webview());
    let s60 = S60Fixture::new(scale.s60());
    vec![
        TelemetryOverheadRow {
            platform: "Android",
            bare_ms: mean_ms(runs, || android.proxy_get_location()),
            instrumented_ms: mean_ms(runs, || android.instrumented_get_location()),
        },
        TelemetryOverheadRow {
            platform: "Android WebView",
            bare_ms: mean_ms(runs, || webview.proxy_get_location()),
            instrumented_ms: mean_ms(runs, || webview.instrumented_get_location()),
        },
        TelemetryOverheadRow {
            platform: "Nokia S60",
            bare_ms: mean_ms(runs, || s60.proxy_get_location()),
            instrumented_ms: mean_ms(runs, || s60.instrumented_get_location()),
        },
    ]
}

/// One arm of the journal-overhead ablation: the same deterministic
/// fleet traffic with durability off, with the write-ahead journal on
/// (intents + fsync barriers, no checkpoints, replay-from-genesis
/// recovery), and with per-apply checkpoints on top. The checksum must
/// be identical across all three arms — durability is bookkeeping, not
/// behaviour — and `wall_us_per_op` is what the bounded-overhead gate
/// compares.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalOverheadRow {
    /// `off`, `journal` or `journal+checkpoints`.
    pub mode: &'static str,
    /// Total proxy operations issued.
    pub total_ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Client-side journal intents appended (zero with durability off).
    pub client_appends: u64,
    /// Server checkpoints taken (zero below the checkpointed arm).
    pub checkpoints: u64,
    /// Determinism fingerprint — identical across all three arms.
    pub checksum: u64,
    /// Mean wall-clock cost per operation, µs (table + gate).
    pub wall_us_per_op: f64,
}

/// The journal ablation's fixed fleet configuration — the brownout/
/// cache comparisons' shape, kept independent of the sweep flags.
fn journal_arm_config(durability: Option<DurabilityFleetConfig>) -> FleetConfig {
    FleetConfig {
        devices: 30,
        shards: 4,
        workers: 3,
        rounds: 3,
        tick_ms: 1_000,
        ops_per_round: 2,
        seed: 11,
        read_heavy: false,
        cache: false,
        telemetry: false,
        span_retention: 16,
        incident_capacity: 256,
        slo: false,
        brownout: None,
        bridge_batch: None,
        durability,
        crash_plan: None,
    }
}

/// Runs the journal-overhead ablation: the same fleet traffic with
/// durability off, journal-only (`checkpoint_every = 0`), and journal +
/// per-apply checkpoints. Returns the arms in that order.
///
/// # Panics
///
/// Panics if a fleet cannot be built — a programming error here, the
/// configurations are fixed.
pub fn run_journal_ablation() -> Vec<JournalOverheadRow> {
    [
        ("off", None),
        (
            "journal",
            Some(DurabilityFleetConfig {
                checkpoint_every: 0,
            }),
        ),
        (
            "journal+checkpoints",
            Some(DurabilityFleetConfig {
                checkpoint_every: 1,
            }),
        ),
    ]
    .into_iter()
    .map(|(mode, durability)| {
        let fleet =
            Fleet::build(journal_arm_config(durability)).expect("ablation configuration is valid");
        let started = Instant::now();
        let report = fleet.run();
        let wall_us = started.elapsed().as_secs_f64() * 1_000_000.0;
        let digest = report.recovery.as_ref();
        JournalOverheadRow {
            mode,
            total_ops: report.total_ops,
            errors: report.errors,
            client_appends: digest.map_or(0, |d| d.client_appends),
            checkpoints: digest.map_or(0, |d| d.checkpoints),
            checksum: report.checksum,
            wall_us_per_op: if report.total_ops > 0 {
                wall_us / report.total_ops as f64
            } else {
                0.0
            },
        }
    })
    .collect()
}

/// The fully durable arm's per-op wall cost relative to the
/// durability-off arm, when all three arms are present with identical
/// checksums. `None` signals a missing arm or a checksum drift — the
/// ablation is only meaningful when durability changed nothing the
/// fleet computes.
pub fn journal_overhead_factor(rows: &[JournalOverheadRow]) -> Option<f64> {
    let off = rows.iter().find(|r| r.mode == "off")?;
    let journal = rows.iter().find(|r| r.mode == "journal")?;
    let checkpointed = rows.iter().find(|r| r.mode == "journal+checkpoints")?;
    if journal.checksum != off.checksum || checkpointed.checksum != off.checksum {
        return None;
    }
    if journal.client_appends == 0 || checkpointed.checkpoints == 0 {
        return None;
    }
    if off.wall_us_per_op > 0.0 {
        Some(checkpointed.wall_us_per_op / off.wall_us_per_op)
    } else {
        None
    }
}

/// Renders the journal-overhead table the `figure10` binary prints
/// below the bridge-marshalling ablation.
pub fn render_journal_table(rows: &[JournalOverheadRow]) -> String {
    let mut out = String::new();
    out.push_str("Journal overhead — same fleet traffic, durability off vs on vs on+checkpoints\n");
    out.push_str("mode                |   ops   | errors | appends | checkpoints |     checksum     | wall µs/op\n");
    out.push_str("--------------------+---------+--------+---------+-------------+------------------+-----------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<19} | {:>7} | {:>6} | {:>7} | {:>11} | {:016x} | {:>10.2}\n",
            row.mode,
            row.total_ops,
            row.errors,
            row.client_appends,
            row.checkpoints,
            row.checksum,
            row.wall_us_per_op,
        ));
    }
    if let Some(factor) = journal_overhead_factor(rows) {
        out.push_str(&format!(
            "durable per-op cost over the undurable baseline: {factor:.2}x\n"
        ));
    }
    out
}

/// Renders the telemetry-overhead table the `figure10` binary prints
/// below the resilience table.
pub fn render_telemetry_table(rows: &[TelemetryOverheadRow]) -> String {
    let mut out = String::new();
    out.push_str("Telemetry overhead — getLocation, proxy path, spans + metrics per call\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>13}\n",
        "Platform", "proxy", "proxy+spans"
    ));
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

/// Renders the resilience-overhead table the `figure10` binary prints
/// below Figure 10 proper.
pub fn render_resilience_table(rows: &[ResilienceOverheadRow]) -> String {
    let mut out = String::new();
    out.push_str("Resilience overhead — getLocation, happy path (no faults injected)\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>12}\n",
        "Platform", "native", "proxy", "proxy+retry"
    ));
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

/// Renders the table the `figure10` binary prints.
pub fn render_table(rows: &[Figure10Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 10 — Time taken for invoking APIs on Android, Android WebView and Nokia S60\n",
    );
    out.push_str(&format!(
        "{:<16} {:<18} {:>10} {:>10} {:>9}\n",
        "Platform", "API", "w/o proxy", "w/ proxy", "overhead"
    ));
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_has_nine_pairs_all_with_small_overhead() {
        assert_eq!(PAPER_VALUES.len(), 9);
        for (_, _, without, with) in PAPER_VALUES {
            assert!(with > without, "the paper's proxy always costs something");
            let overhead = (with - without) / without;
            assert!(overhead < 0.12, "paper overhead is under 12%: {overhead}");
        }
    }

    #[test]
    fn zero_cost_run_measures_pure_proxy_overhead() {
        // With native costs zeroed, everything is proxy overhead — it
        // must be tiny in absolute terms (well under a millisecond per
        // call on any host).
        let rows = run_figure10(Scale::ZeroCost, 5);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.with_proxy_ms < 5.0,
                "{} {} proxy path took {} ms",
                row.platform,
                row.api,
                row.with_proxy_ms
            );
        }
    }

    #[test]
    fn bench_scale_reproduces_the_figures_shape() {
        // At bench scale (µs-calibrated native costs) the proxied path
        // must cost at least as much as the native path in aggregate —
        // the proxy adds work, it cannot remove any. Aggregated across
        // all nine pairs with a tolerance so scheduler noise under
        // parallel test execution cannot flake the assertion.
        let rows = run_figure10(Scale::Bench, 30);
        let native: f64 = rows.iter().map(|r| r.without_proxy_ms).sum();
        let proxied: f64 = rows.iter().map(|r| r.with_proxy_ms).sum();
        assert!(
            proxied >= native * 0.7,
            "proxied total {proxied} ms vs native total {native} ms"
        );
    }

    #[test]
    fn resilience_overhead_happy_path_is_small_in_absolute_terms() {
        // With native costs zeroed, the resilient path is pure
        // decorator bookkeeping — like the plain proxy it must stay
        // well under a millisecond per call on any host.
        let rows = run_resilience_overhead(Scale::ZeroCost, 5);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.resilient_ms < 5.0,
                "{} resilient path took {} ms",
                row.platform,
                row.resilient_ms
            );
        }
    }

    #[test]
    fn render_resilience_table_has_one_row_per_platform() {
        let rows = run_resilience_overhead(Scale::ZeroCost, 1);
        let table = render_resilience_table(&rows);
        assert!(table.contains("proxy+retry"));
        assert!(table.contains("Android WebView"));
        assert!(table.contains("Nokia S60"));
        assert_eq!(table.lines().count(), 2 + 3);
    }

    #[test]
    fn measure_derives_ordered_quantiles_from_the_histogram() {
        let stats = measure(50, || {
            std::hint::black_box(0u64);
        });
        assert!(stats.p50_ms <= stats.p95_ms, "{stats:?}");
        assert!(stats.p95_ms <= stats.p99_ms, "{stats:?}");
        assert!(stats.mean_ms >= 0.0);
    }

    #[test]
    fn figure10_rows_carry_distribution_stats() {
        let rows = run_figure10(Scale::ZeroCost, 3);
        for row in &rows {
            assert!(
                (row.with_proxy_ms - row.with_stats.mean_ms).abs() < 1e-9,
                "table mean and histogram mean are the same number"
            );
            assert!(row.with_stats.p50_ms <= row.with_stats.p99_ms);
        }
    }

    #[test]
    fn telemetry_overhead_is_bounded_in_absolute_terms() {
        // With native costs zeroed, the instrumented path is pure span
        // + metric bookkeeping on top of the bare proxy path — it must
        // stay well under a millisecond per call on any host.
        let rows = run_telemetry_overhead(Scale::ZeroCost, 5);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.instrumented_ms < 5.0,
                "{} instrumented path took {} ms",
                row.platform,
                row.instrumented_ms
            );
        }
    }

    #[test]
    fn render_telemetry_table_has_one_row_per_platform() {
        let rows = run_telemetry_overhead(Scale::ZeroCost, 1);
        let table = render_telemetry_table(&rows);
        assert!(table.contains("proxy+spans"));
        assert!(table.contains("Android WebView"));
        assert!(table.contains("Nokia S60"));
        assert_eq!(table.lines().count(), 2 + 3);
    }

    #[test]
    fn journal_ablation_arms_agree_and_bound_the_overhead() {
        let rows = run_journal_ablation();
        assert_eq!(rows.len(), 3);
        let off = &rows[0];
        assert_eq!(off.mode, "off");
        assert_eq!(off.client_appends, 0, "no journal, no appends");
        for row in &rows[1..] {
            assert_eq!(
                row.checksum, off.checksum,
                "durability changed what the fleet computes: {row:?}"
            );
            assert!(row.client_appends > 0, "{row:?}");
        }
        assert_eq!(rows[1].checkpoints, 0, "checkpoint_every=0 disables them");
        assert!(rows[2].checkpoints > 0, "per-apply checkpoints fire");
        let factor = journal_overhead_factor(&rows).expect("arms agree");
        assert!(
            factor.is_finite() && factor > 0.0 && factor < 10.0,
            "durable per-op cost {factor:.2}x blows the bounded-overhead gate"
        );

        let table = render_journal_table(&rows);
        assert!(table.contains("journal+checkpoints"), "{table}");
        assert!(table.contains("undurable baseline"), "{table}");
    }

    #[test]
    fn journal_overhead_factor_rejects_a_drifted_or_missing_arm() {
        let rows = run_journal_ablation();
        assert!(journal_overhead_factor(&rows[..2]).is_none());
        let mut drifted = rows.clone();
        drifted[2].checksum ^= 1;
        assert!(journal_overhead_factor(&drifted).is_none());
        let mut unjournalled = rows;
        unjournalled[1].client_appends = 0;
        assert!(journal_overhead_factor(&unjournalled).is_none());
    }

    #[test]
    fn render_table_includes_all_rows() {
        let rows = run_figure10(Scale::ZeroCost, 1);
        let table = render_table(&rows);
        assert!(table.contains("Android WebView"));
        assert!(table.contains("Nokia S60"));
        assert!(table.contains("addProximityAlert"));
        assert_eq!(table.lines().count(), 2 + 9);
    }
}
