//! Figure 10 regeneration.
//!
//! The paper times `addProximityAlert`, `getLocation` and `sendSMS`
//! with and without proxies on Android, Android WebView and Nokia S60,
//! averaging ten executions per API. The native costs are calibrated to
//! the paper's bars (see [`mobivine_device::latency`]); the proxy
//! overhead on top is genuinely measured Rust.

use std::fmt;
use std::time::Instant;

use mobivine_device::latency::LatencyModel;

use crate::harness::{AndroidFixture, S60Fixture, WebViewFixture};

/// Which latency calibration a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Millisecond-scale native costs, exactly the paper's Figure 10
    /// values — a full run takes a few seconds of wall time.
    Paper,
    /// The same values read as microseconds — for Criterion runs.
    Bench,
    /// Zero native cost — isolates pure proxy overhead (the ablation).
    ZeroCost,
}

impl Scale {
    fn android(&self) -> LatencyModel {
        match self {
            Scale::Paper => LatencyModel::paper_android(),
            Scale::Bench => LatencyModel::bench_android(),
            Scale::ZeroCost => LatencyModel::zero(),
        }
    }

    fn webview(&self) -> LatencyModel {
        match self {
            Scale::Paper => LatencyModel::paper_webview(),
            Scale::Bench => LatencyModel::bench_webview(),
            Scale::ZeroCost => LatencyModel::zero(),
        }
    }

    fn s60(&self) -> LatencyModel {
        match self {
            Scale::Paper => LatencyModel::paper_s60(),
            Scale::Bench => LatencyModel::bench_s60(),
            Scale::ZeroCost => LatencyModel::zero(),
        }
    }
}

/// One bar pair of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure10Row {
    /// Platform label, as the figure prints it.
    pub platform: &'static str,
    /// API label, as the figure prints it.
    pub api: &'static str,
    /// Mean native invocation time, ms ("Without Proxy").
    pub without_proxy_ms: f64,
    /// Mean proxied invocation time, ms ("With Proxy").
    pub with_proxy_ms: f64,
    /// The paper's reported values `(without, with)` for comparison.
    pub paper_ms: (f64, f64),
}

impl Figure10Row {
    /// Relative proxy overhead of the measured pair.
    pub fn overhead_fraction(&self) -> f64 {
        if self.without_proxy_ms <= 0.0 {
            return 0.0;
        }
        (self.with_proxy_ms - self.without_proxy_ms) / self.without_proxy_ms
    }
}

impl fmt::Display for Figure10Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:<18} {:>10.3} {:>10.3} {:>8.1}% (paper: {:.1} / {:.1})",
            self.platform,
            self.api,
            self.without_proxy_ms,
            self.with_proxy_ms,
            self.overhead_fraction() * 100.0,
            self.paper_ms.0,
            self.paper_ms.1,
        )
    }
}

/// Times `f` over `runs` executions and returns the mean per-call time
/// in milliseconds — "for each API we took an average of ten
/// executions".
pub fn mean_ms<F: FnMut()>(runs: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..runs {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / runs as f64
}

/// The paper's Figure 10 values, `(platform, api, without, with)`.
pub const PAPER_VALUES: [(&str, &str, f64, f64); 9] = [
    ("Android", "addProximityAlert", 53.6, 55.4),
    ("Android", "getLocation", 15.5, 17.3),
    ("Android", "sendSMS", 52.7, 55.8),
    ("Android WebView", "addProximityAlert", 78.4, 80.5),
    ("Android WebView", "getLocation", 120.0, 121.7),
    ("Android WebView", "sendSMS", 91.6, 91.8),
    ("Nokia S60", "addProximityAlert", 141.0, 146.8),
    ("Nokia S60", "getLocation", 140.8, 148.5),
    ("Nokia S60", "sendSMS", 15.6, 16.1),
];

fn paper_pair(platform: &str, api: &str) -> (f64, f64) {
    PAPER_VALUES
        .iter()
        .find(|(p, a, _, _)| *p == platform && *a == api)
        .map(|(_, _, w, wp)| (*w, *wp))
        .expect("paper table covers all nine pairs")
}

/// Runs the full Figure 10 measurement: nine (platform, API) pairs,
/// each averaged over `runs` executions, at the given scale.
pub fn run_figure10(scale: Scale, runs: u32) -> Vec<Figure10Row> {
    let mut rows = Vec::with_capacity(9);

    let android = AndroidFixture::new(scale.android());
    rows.push(Figure10Row {
        platform: "Android",
        api: "addProximityAlert",
        without_proxy_ms: mean_ms(runs, || android.native_add_proximity_alert()),
        with_proxy_ms: mean_ms(runs, || android.proxy_add_proximity_alert()),
        paper_ms: paper_pair("Android", "addProximityAlert"),
    });
    rows.push(Figure10Row {
        platform: "Android",
        api: "getLocation",
        without_proxy_ms: mean_ms(runs, || android.native_get_location()),
        with_proxy_ms: mean_ms(runs, || android.proxy_get_location()),
        paper_ms: paper_pair("Android", "getLocation"),
    });
    rows.push(Figure10Row {
        platform: "Android",
        api: "sendSMS",
        without_proxy_ms: mean_ms(runs, || android.native_send_sms()),
        with_proxy_ms: mean_ms(runs, || android.proxy_send_sms()),
        paper_ms: paper_pair("Android", "sendSMS"),
    });

    let webview = WebViewFixture::new(scale.webview());
    rows.push(Figure10Row {
        platform: "Android WebView",
        api: "addProximityAlert",
        without_proxy_ms: mean_ms(runs, || webview.native_add_proximity_alert()),
        with_proxy_ms: mean_ms(runs, || webview.proxy_add_proximity_alert()),
        paper_ms: paper_pair("Android WebView", "addProximityAlert"),
    });
    rows.push(Figure10Row {
        platform: "Android WebView",
        api: "getLocation",
        without_proxy_ms: mean_ms(runs, || webview.native_get_location()),
        with_proxy_ms: mean_ms(runs, || webview.proxy_get_location()),
        paper_ms: paper_pair("Android WebView", "getLocation"),
    });
    rows.push(Figure10Row {
        platform: "Android WebView",
        api: "sendSMS",
        without_proxy_ms: mean_ms(runs, || webview.native_send_sms()),
        with_proxy_ms: mean_ms(runs, || webview.proxy_send_sms()),
        paper_ms: paper_pair("Android WebView", "sendSMS"),
    });

    let s60 = S60Fixture::new(scale.s60());
    rows.push(Figure10Row {
        platform: "Nokia S60",
        api: "addProximityAlert",
        without_proxy_ms: mean_ms(runs, || s60.native_add_proximity_alert()),
        with_proxy_ms: mean_ms(runs, || s60.proxy_add_proximity_alert()),
        paper_ms: paper_pair("Nokia S60", "addProximityAlert"),
    });
    rows.push(Figure10Row {
        platform: "Nokia S60",
        api: "getLocation",
        without_proxy_ms: mean_ms(runs, || s60.native_get_location()),
        with_proxy_ms: mean_ms(runs, || s60.proxy_get_location()),
        paper_ms: paper_pair("Nokia S60", "getLocation"),
    });
    rows.push(Figure10Row {
        platform: "Nokia S60",
        api: "sendSMS",
        without_proxy_ms: mean_ms(runs, || s60.native_send_sms()),
        with_proxy_ms: mean_ms(runs, || s60.proxy_send_sms()),
        paper_ms: paper_pair("Nokia S60", "sendSMS"),
    });

    rows
}

/// One row of the resilience-overhead ablation: `getLocation` on one
/// platform — native, through the plain proxy, and through the proxy
/// wrapped by the resilience layer (retry/circuit bookkeeping on the
/// happy path, no faults injected).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceOverheadRow {
    /// Platform label, as the figure prints it.
    pub platform: &'static str,
    /// Mean native invocation time, ms.
    pub native_ms: f64,
    /// Mean plain-proxy invocation time, ms.
    pub proxy_ms: f64,
    /// Mean resilient-proxy invocation time, ms.
    pub resilient_ms: f64,
}

impl fmt::Display for ResilienceOverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>10.3} {:>10.3} {:>12.3}",
            self.platform, self.native_ms, self.proxy_ms, self.resilient_ms,
        )
    }
}

/// Measures the resilience-layer overhead on the happy path: the
/// `getLocation` cost native vs plain proxy vs resilient proxy on each
/// platform, averaged over `runs` executions.
pub fn run_resilience_overhead(scale: Scale, runs: u32) -> Vec<ResilienceOverheadRow> {
    let android = AndroidFixture::new(scale.android());
    let webview = WebViewFixture::new(scale.webview());
    let s60 = S60Fixture::new(scale.s60());
    vec![
        ResilienceOverheadRow {
            platform: "Android",
            native_ms: mean_ms(runs, || android.native_get_location()),
            proxy_ms: mean_ms(runs, || android.proxy_get_location()),
            resilient_ms: mean_ms(runs, || android.resilient_get_location()),
        },
        ResilienceOverheadRow {
            platform: "Android WebView",
            native_ms: mean_ms(runs, || webview.native_get_location()),
            proxy_ms: mean_ms(runs, || webview.proxy_get_location()),
            resilient_ms: mean_ms(runs, || webview.resilient_get_location()),
        },
        ResilienceOverheadRow {
            platform: "Nokia S60",
            native_ms: mean_ms(runs, || s60.native_get_location()),
            proxy_ms: mean_ms(runs, || s60.proxy_get_location()),
            resilient_ms: mean_ms(runs, || s60.resilient_get_location()),
        },
    ]
}

/// Renders the resilience-overhead table the `figure10` binary prints
/// below Figure 10 proper.
pub fn render_resilience_table(rows: &[ResilienceOverheadRow]) -> String {
    let mut out = String::new();
    out.push_str("Resilience overhead — getLocation, happy path (no faults injected)\n");
    out.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>12}\n",
        "Platform", "native", "proxy", "proxy+retry"
    ));
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

/// Renders the table the `figure10` binary prints.
pub fn render_table(rows: &[Figure10Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 10 — Time taken for invoking APIs on Android, Android WebView and Nokia S60\n",
    );
    out.push_str(&format!(
        "{:<16} {:<18} {:>10} {:>10} {:>9}\n",
        "Platform", "API", "w/o proxy", "w/ proxy", "overhead"
    ));
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_has_nine_pairs_all_with_small_overhead() {
        assert_eq!(PAPER_VALUES.len(), 9);
        for (_, _, without, with) in PAPER_VALUES {
            assert!(with > without, "the paper's proxy always costs something");
            let overhead = (with - without) / without;
            assert!(overhead < 0.12, "paper overhead is under 12%: {overhead}");
        }
    }

    #[test]
    fn zero_cost_run_measures_pure_proxy_overhead() {
        // With native costs zeroed, everything is proxy overhead — it
        // must be tiny in absolute terms (well under a millisecond per
        // call on any host).
        let rows = run_figure10(Scale::ZeroCost, 5);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.with_proxy_ms < 5.0,
                "{} {} proxy path took {} ms",
                row.platform,
                row.api,
                row.with_proxy_ms
            );
        }
    }

    #[test]
    fn bench_scale_reproduces_the_figures_shape() {
        // At bench scale (µs-calibrated native costs) the proxied path
        // must cost at least as much as the native path in aggregate —
        // the proxy adds work, it cannot remove any. Aggregated across
        // all nine pairs with a tolerance so scheduler noise under
        // parallel test execution cannot flake the assertion.
        let rows = run_figure10(Scale::Bench, 30);
        let native: f64 = rows.iter().map(|r| r.without_proxy_ms).sum();
        let proxied: f64 = rows.iter().map(|r| r.with_proxy_ms).sum();
        assert!(
            proxied >= native * 0.7,
            "proxied total {proxied} ms vs native total {native} ms"
        );
    }

    #[test]
    fn resilience_overhead_happy_path_is_small_in_absolute_terms() {
        // With native costs zeroed, the resilient path is pure
        // decorator bookkeeping — like the plain proxy it must stay
        // well under a millisecond per call on any host.
        let rows = run_resilience_overhead(Scale::ZeroCost, 5);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.resilient_ms < 5.0,
                "{} resilient path took {} ms",
                row.platform,
                row.resilient_ms
            );
        }
    }

    #[test]
    fn render_resilience_table_has_one_row_per_platform() {
        let rows = run_resilience_overhead(Scale::ZeroCost, 1);
        let table = render_resilience_table(&rows);
        assert!(table.contains("proxy+retry"));
        assert!(table.contains("Android WebView"));
        assert!(table.contains("Nokia S60"));
        assert_eq!(table.lines().count(), 2 + 3);
    }

    #[test]
    fn render_table_includes_all_rows() {
        let rows = run_figure10(Scale::ZeroCost, 1);
        let table = render_table(&rows);
        assert!(table.contains("Android WebView"));
        assert!(table.contains("Nokia S60"));
        assert!(table.contains("addProximityAlert"));
        assert_eq!(table.lines().count(), 2 + 9);
    }
}
