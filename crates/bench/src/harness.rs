//! Per-platform measurement fixtures.
//!
//! A fixture owns a freshly built device (with the requested latency
//! calibration) plus everything needed to invoke one API natively and
//! through its proxy. Each invocation pair is constructed the way the
//! paper's measurement harness would have: the *without proxy* path
//! calls the platform middleware directly; the *with proxy* path goes
//! through the MobiVine binding.

use std::sync::Arc;

use mobivine::api::{LocationProxy, SmsProxy};
use mobivine::registry::Mobivine;
use mobivine::resilience::ResiliencePolicy;
use mobivine::types::{ProximityEvent, SharedProximityListener};
use mobivine_android::context::Context;
use mobivine_android::intent::Intent;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_device::latency::LatencyModel;
use mobivine_device::{Device, GeoPoint};
use mobivine_s60::location::{Coordinates, Criteria, LocationProvider};
use mobivine_s60::messaging::{MessageConnection, MessageType};
use mobivine_s60::S60Platform;
use mobivine_webview::bridge::{args, BridgeError, JavaScriptInterface};
use mobivine_webview::{JsValue, WebView};

/// Fixture position (outside any alert radius so registrations do not
/// generate event traffic during timing).
pub const FIXTURE_POSITION: GeoPoint = GeoPoint {
    latitude: 28.5355,
    longitude: 77.3910,
    altitude: 0.0,
};

/// Remote region used for proximity registrations (never entered).
pub const FAR_REGION: (f64, f64) = (28.7, 77.6);

/// SMS destination registered on every fixture.
pub const SMS_DESTINATION: &str = "+91-98-SUPERVISOR";

fn device_with(latency: LatencyModel) -> Device {
    let device = Device::builder()
        .msisdn("+91-98-AGENT-7")
        .position(FIXTURE_POSITION)
        .latency(latency)
        .build();
    device.smsc().register_address(SMS_DESTINATION);
    device
}

fn noop_listener() -> SharedProximityListener {
    Arc::new(|_event: &ProximityEvent| {})
}

/// Android fixture: native middleware handles and proxy handles over
/// one device.
pub struct AndroidFixture {
    /// The simulated handset.
    pub device: Device,
    ctx: Context,
    location_proxy: Arc<dyn LocationProxy>,
    sms_proxy: Arc<dyn SmsProxy>,
    resilient_location_proxy: Arc<dyn LocationProxy>,
    instrumented_location_proxy: Arc<dyn LocationProxy>,
}

impl AndroidFixture {
    /// Builds the fixture with the given latency calibration.
    pub fn new(latency: LatencyModel) -> Self {
        let device = device_with(latency);
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let ctx = platform.new_context();
        let runtime = Mobivine::for_android(ctx.clone());
        let resilient =
            Mobivine::for_android(ctx.clone()).with_resilience(ResiliencePolicy::default());
        let instrumented = Mobivine::for_android(ctx.clone()).with_telemetry();
        Self {
            device,
            ctx,
            location_proxy: runtime
                .proxy::<dyn LocationProxy>()
                .expect("android location proxy"),
            sms_proxy: runtime.proxy::<dyn SmsProxy>().expect("android sms proxy"),
            resilient_location_proxy: resilient
                .proxy::<dyn LocationProxy>()
                .expect("android resilient location proxy"),
            instrumented_location_proxy: instrumented
                .proxy::<dyn LocationProxy>()
                .expect("android instrumented location proxy"),
        }
    }

    /// Native `addProximityAlert` (Fig. 2(a) path).
    pub fn native_add_proximity_alert(&self) {
        let registration = self
            .ctx
            .location_manager()
            .add_proximity_alert(FAR_REGION.0, FAR_REGION.1, 100.0, -1, Intent::new("BENCH"))
            .expect("native registration succeeds");
        self.ctx
            .location_manager()
            .remove_proximity_alert(&Intent::new("BENCH"));
        drop(registration);
    }

    /// Native `getCurrentLocation`.
    pub fn native_get_location(&self) {
        self.ctx
            .location_manager()
            .get_current_location("gps")
            .expect("fixture gps is available");
    }

    /// Native `sendTextMessage`.
    pub fn native_send_sms(&self) {
        self.ctx
            .sms_manager()
            .send_text_message(SMS_DESTINATION, None, "bench", None)
            .expect("fixture sms succeeds");
    }

    /// Proxy `addProximityAlert` (Fig. 8(a) path).
    pub fn proxy_add_proximity_alert(&self) {
        let listener = noop_listener();
        self.location_proxy
            .add_proximity_alert(
                FAR_REGION.0,
                FAR_REGION.1,
                0.0,
                100.0,
                -1,
                Arc::clone(&listener),
            )
            .expect("proxy registration succeeds");
        self.location_proxy
            .remove_proximity_alert(&listener)
            .expect("proxy removal succeeds");
    }

    /// Proxy `getLocation`.
    pub fn proxy_get_location(&self) {
        self.location_proxy
            .get_location()
            .expect("proxy location succeeds");
    }

    /// Proxy `sendTextMessage`.
    pub fn proxy_send_sms(&self) {
        self.sms_proxy
            .send_text_message(SMS_DESTINATION, "bench", None)
            .expect("proxy sms succeeds");
    }

    /// Proxy `getLocation` through the resilience layer (happy path —
    /// no faults, so this prices the retry/circuit bookkeeping alone).
    pub fn resilient_get_location(&self) {
        self.resilient_location_proxy
            .get_location()
            .expect("resilient location succeeds");
    }

    /// Proxy `getLocation` with the telemetry runtime attached — every
    /// call records spans at each plane plus counters and a latency
    /// histogram, pricing the instrumentation itself.
    pub fn instrumented_get_location(&self) {
        self.instrumented_location_proxy
            .get_location()
            .expect("instrumented location succeeds");
    }
}

/// S60 fixture.
pub struct S60Fixture {
    /// The simulated handset.
    pub device: Device,
    platform: S60Platform,
    provider: LocationProvider,
    location_proxy: Arc<dyn LocationProxy>,
    sms_proxy: Arc<dyn SmsProxy>,
    resilient_location_proxy: Arc<dyn LocationProxy>,
    instrumented_location_proxy: Arc<dyn LocationProxy>,
}

impl S60Fixture {
    /// Builds the fixture with the given latency calibration.
    pub fn new(latency: LatencyModel) -> Self {
        let device = device_with(latency);
        let platform = S60Platform::new(device.clone());
        let provider =
            LocationProvider::get_instance(&platform, Criteria::new()).expect("fixture provider");
        let runtime = Mobivine::for_s60(platform.clone());
        let resilient =
            Mobivine::for_s60(platform.clone()).with_resilience(ResiliencePolicy::default());
        let instrumented = Mobivine::for_s60(platform.clone()).with_telemetry();
        Self {
            device,
            platform,
            provider,
            location_proxy: runtime
                .proxy::<dyn LocationProxy>()
                .expect("s60 location proxy"),
            sms_proxy: runtime.proxy::<dyn SmsProxy>().expect("s60 sms proxy"),
            resilient_location_proxy: resilient
                .proxy::<dyn LocationProxy>()
                .expect("s60 resilient location proxy"),
            instrumented_location_proxy: instrumented
                .proxy::<dyn LocationProxy>()
                .expect("s60 instrumented location proxy"),
        }
    }

    /// Native `addProximityListener` (Fig. 2(b) path).
    pub fn native_add_proximity_alert(&self) {
        struct Noop;
        impl mobivine_s60::location::ProximityListener for Noop {
            fn proximity_event(&self, _c: &Coordinates, _l: &mobivine_s60::location::Location) {}
        }
        let listener: Arc<dyn mobivine_s60::location::ProximityListener> = Arc::new(Noop);
        LocationProvider::add_proximity_listener(
            &self.platform,
            Arc::clone(&listener),
            Coordinates::new(FAR_REGION.0, FAR_REGION.1, 0.0),
            100.0,
        )
        .expect("native registration succeeds");
        LocationProvider::remove_proximity_listener(&self.platform, &listener);
    }

    /// Native `getLocation`.
    pub fn native_get_location(&self) {
        self.provider
            .get_location(-1)
            .expect("fixture gps is available");
    }

    /// Native JSR-120 send.
    pub fn native_send_sms(&self) {
        let connection =
            MessageConnection::open_client(&self.platform, &format!("sms://{SMS_DESTINATION}"))
                .expect("fixture connection");
        let mut message = connection.new_message(MessageType::Text);
        message.set_payload_text("bench");
        connection.send(&message).expect("fixture send succeeds");
    }

    /// Proxy `addProximityAlert`.
    pub fn proxy_add_proximity_alert(&self) {
        let listener = noop_listener();
        self.location_proxy
            .add_proximity_alert(
                FAR_REGION.0,
                FAR_REGION.1,
                0.0,
                100.0,
                -1,
                Arc::clone(&listener),
            )
            .expect("proxy registration succeeds");
        self.location_proxy
            .remove_proximity_alert(&listener)
            .expect("proxy removal succeeds");
    }

    /// Proxy `getLocation`.
    pub fn proxy_get_location(&self) {
        self.location_proxy
            .get_location()
            .expect("proxy location succeeds");
    }

    /// Proxy `sendTextMessage`.
    pub fn proxy_send_sms(&self) {
        self.sms_proxy
            .send_text_message(SMS_DESTINATION, "bench", None)
            .expect("proxy sms succeeds");
    }

    /// Proxy `getLocation` through the resilience layer (happy path).
    pub fn resilient_get_location(&self) {
        self.resilient_location_proxy
            .get_location()
            .expect("resilient location succeeds");
    }

    /// Proxy `getLocation` with the telemetry runtime attached.
    pub fn instrumented_get_location(&self) {
        self.instrumented_location_proxy
            .get_location()
            .expect("instrumented location succeeds");
    }
}

/// A minimal hand-rolled bridge, the "without proxy" WebView baseline:
/// what an application calling `addJavaScriptInterface` directly pays.
struct RawBridge {
    ctx: Context,
}

impl JavaScriptInterface for RawBridge {
    fn call(&self, method: &str, call_args: &[JsValue]) -> Result<JsValue, BridgeError> {
        match method {
            "getLocation" => {
                let location = self
                    .ctx
                    .location_manager()
                    .get_current_location("gps")
                    .map_err(|e| BridgeError::bridge(e.to_string()))?;
                Ok(JsValue::object([
                    ("latitude", location.latitude().into()),
                    ("longitude", location.longitude().into()),
                ]))
            }
            "sendSms" => {
                let destination = args::string(call_args, 0)?;
                let text = args::string(call_args, 1)?;
                self.ctx
                    .sms_manager()
                    .send_text_message(destination, None, text, None)
                    .map_err(|e| BridgeError::bridge(e.to_string()))?;
                Ok(JsValue::Bool(true))
            }
            "addProximityAlert" => {
                let latitude = args::number(call_args, 0)?;
                let longitude = args::number(call_args, 1)?;
                let radius = args::number(call_args, 2)?;
                self.ctx
                    .location_manager()
                    .add_proximity_alert(
                        latitude,
                        longitude,
                        radius as f32,
                        -1,
                        Intent::new("RAW-BENCH"),
                    )
                    .map_err(|e| BridgeError::bridge(e.to_string()))?;
                self.ctx
                    .location_manager()
                    .remove_proximity_alert(&Intent::new("RAW-BENCH"));
                Ok(JsValue::Bool(true))
            }
            other => Err(BridgeError::bridge(format!("no method {other}"))),
        }
    }
}

/// WebView fixture.
pub struct WebViewFixture {
    /// The simulated handset.
    pub device: Device,
    webview: Arc<WebView>,
    location_proxy: Arc<dyn LocationProxy>,
    sms_proxy: Arc<dyn SmsProxy>,
    resilient_location_proxy: Arc<dyn LocationProxy>,
    instrumented_location_proxy: Arc<dyn LocationProxy>,
}

impl WebViewFixture {
    /// Builds the fixture with the given latency calibration.
    pub fn new(latency: LatencyModel) -> Self {
        let device = device_with(latency);
        let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
        let webview = Arc::new(WebView::new(platform.new_context()));
        webview.add_javascript_interface(
            Arc::new(RawBridge {
                ctx: webview.context().clone(),
            }),
            "RawBridge",
        );
        let runtime = Mobivine::for_webview(Arc::clone(&webview));
        let resilient = Mobivine::for_webview(Arc::clone(&webview))
            .with_resilience(ResiliencePolicy::default());
        let instrumented = Mobivine::for_webview(Arc::clone(&webview)).with_telemetry();
        Self {
            device,
            webview: Arc::clone(&webview),
            location_proxy: runtime
                .proxy::<dyn LocationProxy>()
                .expect("webview location proxy"),
            sms_proxy: runtime.proxy::<dyn SmsProxy>().expect("webview sms proxy"),
            resilient_location_proxy: resilient
                .proxy::<dyn LocationProxy>()
                .expect("webview resilient location proxy"),
            instrumented_location_proxy: instrumented
                .proxy::<dyn LocationProxy>()
                .expect("webview instrumented location proxy"),
        }
    }

    fn raw(&self) -> mobivine_webview::webview::JsInterfaceHandle {
        self.webview
            .js_interface("RawBridge")
            .expect("raw bridge installed")
    }

    /// Native (hand-bridged) `addProximityAlert`.
    pub fn native_add_proximity_alert(&self) {
        self.raw()
            .invoke(
                "addProximityAlert",
                &[FAR_REGION.0.into(), FAR_REGION.1.into(), 100.0.into()],
            )
            .expect("raw registration succeeds");
    }

    /// Native (hand-bridged) `getLocation`.
    pub fn native_get_location(&self) {
        self.raw()
            .invoke("getLocation", &[])
            .expect("raw location succeeds");
    }

    /// Native (hand-bridged) SMS send.
    pub fn native_send_sms(&self) {
        self.raw()
            .invoke(
                "sendSms",
                &[JsValue::str(SMS_DESTINATION), JsValue::str("bench")],
            )
            .expect("raw sms succeeds");
    }

    /// Proxy `addProximityAlert` (Fig. 9 path).
    pub fn proxy_add_proximity_alert(&self) {
        let listener = noop_listener();
        self.location_proxy
            .add_proximity_alert(
                FAR_REGION.0,
                FAR_REGION.1,
                0.0,
                100.0,
                -1,
                Arc::clone(&listener),
            )
            .expect("proxy registration succeeds");
        self.location_proxy
            .remove_proximity_alert(&listener)
            .expect("proxy removal succeeds");
    }

    /// Proxy `getLocation`.
    pub fn proxy_get_location(&self) {
        self.location_proxy
            .get_location()
            .expect("proxy location succeeds");
    }

    /// Proxy `sendTextMessage`.
    pub fn proxy_send_sms(&self) {
        self.sms_proxy
            .send_text_message(SMS_DESTINATION, "bench", None)
            .expect("proxy sms succeeds");
    }

    /// Proxy `getLocation` through the resilience layer (happy path).
    pub fn resilient_get_location(&self) {
        self.resilient_location_proxy
            .get_location()
            .expect("resilient location succeeds");
    }

    /// Proxy `getLocation` with the telemetry runtime attached — the
    /// trace context additionally crosses the JS bridge as a
    /// `traceparent` string on this platform.
    pub fn instrumented_get_location(&self) {
        self.instrumented_location_proxy
            .get_location()
            .expect("instrumented location succeeds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_fixture_paths_all_run() {
        let fixture = AndroidFixture::new(LatencyModel::zero());
        fixture.native_add_proximity_alert();
        fixture.native_get_location();
        fixture.native_send_sms();
        fixture.proxy_add_proximity_alert();
        fixture.proxy_get_location();
        fixture.proxy_send_sms();
        fixture.resilient_get_location();
        fixture.instrumented_get_location();
    }

    #[test]
    fn s60_fixture_paths_all_run() {
        let fixture = S60Fixture::new(LatencyModel::zero());
        fixture.native_add_proximity_alert();
        fixture.native_get_location();
        fixture.native_send_sms();
        fixture.proxy_add_proximity_alert();
        fixture.proxy_get_location();
        fixture.proxy_send_sms();
        fixture.resilient_get_location();
        fixture.instrumented_get_location();
    }

    #[test]
    fn webview_fixture_paths_all_run() {
        let fixture = WebViewFixture::new(LatencyModel::zero());
        fixture.native_add_proximity_alert();
        fixture.native_get_location();
        fixture.native_send_sms();
        fixture.proxy_add_proximity_alert();
        fixture.proxy_get_location();
        fixture.proxy_send_sms();
        fixture.resilient_get_location();
        fixture.instrumented_get_location();
    }
}
