//! Regenerates the software-engineering evaluation (paper §5, Q1–Q2):
//! portability and complexity of the workforce-management app with and
//! without proxies, over the complete variant sources in
//! `mobivine-apps`.
//!
//! Usage: `cargo run -p mobivine-bench --bin se_metrics`

use mobivine_apps::metrics::{analyze, similarity, variant_sources};

fn main() {
    let sources = variant_sources();

    println!("E-Cplx — Complexity (paper §5 Q2): code size and platform coupling per variant");
    println!(
        "{:<24} {:<22} {:>6} {:>14} {:>13}",
        "variant", "platform(s)", "loc", "platform refs", "callback loc"
    );
    for v in &sources {
        let m = analyze(v.source);
        println!(
            "{:<24} {:<22} {:>6} {:>14} {:>13}",
            v.name, v.platform, m.loc, m.platform_api_refs, m.callback_machinery_lines
        );
    }

    let native_total: usize = sources
        .iter()
        .filter(|v| !v.uses_proxies)
        .map(|v| analyze(v.source).loc)
        .sum();
    let proxy_total: usize = sources
        .iter()
        .filter(|v| v.uses_proxies)
        .map(|v| analyze(v.source).loc)
        .sum();
    println!(
        "\nthree native variants: {native_total} loc total; one proxy variant (all platforms): {proxy_total} loc ({}x reduction)",
        native_total as f64 / proxy_total as f64
    );

    println!("\nE-Port — Portability (paper §5 Q1): cross-platform code sharing");
    let android = sources.iter().find(|v| v.name == "native-android").unwrap();
    let s60 = sources.iter().find(|v| v.name == "native-s60").unwrap();
    let webview = sources.iter().find(|v| v.name == "native-webview").unwrap();
    println!(
        "native android <-> native s60 shared lines: {:.0}%",
        similarity(android.source, s60.source) * 100.0
    );
    println!(
        "native android <-> native webview shared lines: {:.0}%",
        similarity(android.source, webview.source) * 100.0
    );
    println!("proxy variant across android/s60/webview shared lines: 100% (single source)");
    println!(
        "\nconclusion: proxies concentrate business logic in one place and make the code\naround the API identical across platforms (paper Figs. 8/9 vs Fig. 2)"
    );
}
