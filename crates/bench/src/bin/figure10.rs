//! Regenerates the paper's Figure 10 at paper scale.
//!
//! Usage: `cargo run -p mobivine-bench --bin figure10 [--runs N]
//! [--scale paper|bench|zero] [--json [PATH]] [--check PATH]`
//!
//! Native API costs are calibrated to the paper's handset measurements;
//! the proxy overhead on top is real measured Rust. The paper's values
//! are printed alongside each measured pair. `--json` replaces the
//! human-readable tables with a machine-readable summary (schema
//! `mobivine.figure10.v3`, which adds the journal-overhead ablation —
//! durability off vs journal vs journal + checkpoints on the same
//! fleet traffic — and its bounded-overhead gate, on top of v2's
//! WebView bridge-marshalling ablation and its 3x gate) on stdout, or
//! at `PATH` when one follows the flag; `--check PATH` validates an
//! existing summary file instead of measuring anything.

use mobivine_bench::bridge_overhead::{
    bridge_overhead_speedup, render_bridge_overhead_table, run_bridge_overhead,
};
use mobivine_bench::figure10::{
    journal_overhead_factor, render_journal_table, render_resilience_table, render_table,
    render_telemetry_table, run_figure10, run_journal_ablation, run_resilience_overhead,
    run_telemetry_overhead, Scale,
};
use mobivine_bench::summary::{summary_json, validate_summary_json, SummarySections};
use mobivine_bench::telemetry_hotpath::{
    hotpath_speedup, render_hotpath_table, run_hotpath_comparison,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut runs: u32 = 10; // the paper averages ten executions
    let mut scale = Scale::Paper;
    let mut json_out: Option<Option<String>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                runs = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(runs);
                i += 2;
            }
            "--scale" => {
                scale = match args.get(i + 1).map(String::as_str) {
                    Some("bench") => Scale::Bench,
                    Some("zero") => Scale::ZeroCost,
                    _ => Scale::Paper,
                };
                i += 2;
            }
            "--json" => {
                // An optional path may follow; a bare `--json` (or one
                // followed by another flag) writes to stdout.
                match args.get(i + 1) {
                    Some(path) if !path.starts_with("--") => {
                        json_out = Some(Some(path.clone()));
                        i += 2;
                    }
                    _ => {
                        json_out = Some(None);
                        i += 1;
                    }
                }
            }
            "--check" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--check requires a file path");
                    std::process::exit(2);
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                };
                match validate_summary_json(&text) {
                    Ok(check) => {
                        println!(
                            "{path}: valid ({} figure10 rows, {} resilience rows, {} telemetry rows, {} hotpath rows, {} bridge rows, {} journal rows)",
                            check.figure10_rows,
                            check.resilience_rows,
                            check.telemetry_rows,
                            check.hotpath_rows,
                            check.bridge_rows,
                            check.journal_rows
                        );
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("{path}: invalid summary: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("running figure 10 at {scale:?} scale, {runs} executions per API ...");
    let rows = run_figure10(scale, runs);
    let resilience_rows = run_resilience_overhead(scale, runs);
    let telemetry_rows = run_telemetry_overhead(scale, runs);
    let hotpath_ops = match scale {
        Scale::ZeroCost => 50_000,
        _ => 500_000,
    };
    let hotpath_rows = run_hotpath_comparison(hotpath_ops);
    let bridge_reads = match scale {
        Scale::ZeroCost => 20_000,
        _ => 200_000,
    };
    let bridge_rows = run_bridge_overhead(bridge_reads);
    let journal_rows = run_journal_ablation();

    if let Some(target) = json_out {
        let json = summary_json(
            scale.as_str(),
            runs,
            &SummarySections {
                rows: &rows,
                resilience: &resilience_rows,
                telemetry: &telemetry_rows,
                hotpath: &hotpath_rows,
                bridge: &bridge_rows,
                journal: &journal_rows,
            },
        );
        match target {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote summary to {path}");
            }
            None => println!("{json}"),
        }
        return;
    }

    print!("{}", render_table(&rows));

    let max_overhead = rows
        .iter()
        .map(Figure10RowExt::overhead)
        .fold(0.0f64, f64::max);
    println!(
        "\nmax relative proxy overhead: {:.1}% (paper max: 5.5%)",
        max_overhead * 100.0
    );
    println!(
        "conclusion: the overhead of the proxy is a small fraction of the corresponding native interface"
    );

    println!();
    print!("{}", render_resilience_table(&resilience_rows));

    println!();
    print!("{}", render_telemetry_table(&telemetry_rows));

    println!();
    print!("{}", render_hotpath_table(&hotpath_rows));
    if let Some(speedup) = hotpath_speedup(&hotpath_rows) {
        let verdict = if speedup >= 5.0 { "PASS" } else { "FAIL" };
        println!("acceptance (>= 5x cached-handle speedup): {verdict}");
    }

    println!();
    print!("{}", render_bridge_overhead_table(&bridge_rows));
    if let Some(speedup) = bridge_overhead_speedup(&bridge_rows) {
        let verdict = if speedup >= 3.0 { "PASS" } else { "FAIL" };
        println!("acceptance (>= 3x batched wire-buf speedup): {verdict}");
    }

    println!();
    print!("{}", render_journal_table(&journal_rows));
    match journal_overhead_factor(&journal_rows) {
        Some(factor) if factor < 10.0 => {
            println!("acceptance (checksum parity + durable cost < 10x baseline): PASS");
        }
        _ => println!("acceptance (checksum parity + durable cost < 10x baseline): FAIL"),
    }
}

trait Figure10RowExt {
    fn overhead(&self) -> f64;
}

impl Figure10RowExt for mobivine_bench::figure10::Figure10Row {
    fn overhead(&self) -> f64 {
        self.overhead_fraction()
    }
}
