//! Regenerates the paper's Figure 10 at paper scale.
//!
//! Usage: `cargo run -p mobivine-bench --bin figure10 [--runs N]
//! [--scale paper|bench|zero]`
//!
//! Native API costs are calibrated to the paper's handset measurements;
//! the proxy overhead on top is real measured Rust. The paper's values
//! are printed alongside each measured pair.

use mobivine_bench::figure10::{
    render_resilience_table, render_table, run_figure10, run_resilience_overhead, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut runs: u32 = 10; // the paper averages ten executions
    let mut scale = Scale::Paper;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                runs = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(runs);
                i += 2;
            }
            "--scale" => {
                scale = match args.get(i + 1).map(String::as_str) {
                    Some("bench") => Scale::Bench,
                    Some("zero") => Scale::ZeroCost,
                    _ => Scale::Paper,
                };
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("running figure 10 at {scale:?} scale, {runs} executions per API ...");
    let rows = run_figure10(scale, runs);
    print!("{}", render_table(&rows));

    let max_overhead = rows
        .iter()
        .map(Figure10RowExt::overhead)
        .fold(0.0f64, f64::max);
    println!(
        "\nmax relative proxy overhead: {:.1}% (paper max: 5.5%)",
        max_overhead * 100.0
    );
    println!(
        "conclusion: the overhead of the proxy is a small fraction of the corresponding native interface"
    );

    println!();
    let resilience_rows = run_resilience_overhead(scale, runs);
    print!("{}", render_resilience_table(&resilience_rows));
}

trait Figure10RowExt {
    fn overhead(&self) -> f64;
}

impl Figure10RowExt for mobivine_bench::figure10::Figure10Row {
    fn overhead(&self) -> f64 {
        self.overhead_fraction()
    }
}
