//! Regenerates the maintenance evaluation (paper §5, Q3): the Android
//! m5-rc15 → 1.0 evolution changed `addProximityAlert` to take a
//! `PendingIntent` instead of an `Intent`. The native application
//! breaks; the proxy application runs unchanged because "the
//! differences can be absorbed inside proxies for this version of the
//! platform".
//!
//! Usage: `cargo run -p mobivine-bench --bin maintenance`

use std::sync::Arc;

use mobivine::registry::Mobivine;
use mobivine_android::activity::ActivityHost;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_apps::logic::AppEvents;
use mobivine_apps::native_android::NativeAndroidApp;
use mobivine_apps::proxy_app::ProxyWorkforceApp;
use mobivine_apps::scenario::{Scenario, ScenarioOutcome};

fn run_native(version: SdkVersion) -> (ScenarioOutcome, usize) {
    let scenario = Scenario::two_site_patrol(1);
    let platform = AndroidPlatform::new(scenario.device.clone(), version);
    let events = AppEvents::new();
    let app = NativeAndroidApp::new(scenario.config.clone(), Arc::clone(&events));
    let mut host = ActivityHost::new(app, platform.new_context());
    host.launch().expect("activity launches");
    let registered_tasks = host.activity().tasks().len();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    (ScenarioOutcome::collect(&scenario), registered_tasks)
}

fn run_proxy(version: SdkVersion) -> ScenarioOutcome {
    let scenario = Scenario::two_site_patrol(1);
    let platform = AndroidPlatform::new(scenario.device.clone(), version);
    let events = AppEvents::new();
    let mut app = ProxyWorkforceApp::new(
        Mobivine::for_android(platform.new_context()),
        scenario.config.clone(),
        events,
    )
    .expect("proxy app constructs");
    app.start().expect("proxy app starts");
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    scenario.device.advance_ms(1_000);
    ScenarioOutcome::collect(&scenario)
}

/// Counts the call sites in the native source that use the changed API
/// — what a developer would have to edit for the migration.
fn native_migration_sites() -> usize {
    let source = mobivine_apps::metrics::variant_sources()
        .into_iter()
        .find(|v| v.name == "native-android")
        .expect("native android variant exists")
        .source;
    source.matches("add_proximity_alert(").count()
}

fn main() {
    println!("E-Maint — Maintenance (paper §5 Q3): Android m5-rc15 -> 1.0 migration");
    println!("(addProximityAlert now takes a PendingIntent instead of an Intent)\n");

    let expected = ScenarioOutcome::expected_two_site();

    let (native_m5, _) = run_native(SdkVersion::M5Rc15);
    println!(
        "native app on m5-rc15: {native_m5:?}  (works: {})",
        native_m5 == expected
    );

    let (native_v1, _) = run_native(SdkVersion::V1_0);
    println!(
        "native app on 1.0:     {native_v1:?}  (works: {})",
        native_v1 == expected
    );

    let proxy_m5 = run_proxy(SdkVersion::M5Rc15);
    println!(
        "proxy app on m5-rc15:  {proxy_m5:?}  (works: {})",
        proxy_m5 == expected
    );

    let proxy_v1 = run_proxy(SdkVersion::V1_0);
    println!(
        "proxy app on 1.0:      {proxy_v1:?}  (works: {})",
        proxy_v1 == expected
    );

    println!(
        "\napplication changes required for the migration:\n  native app: {} call site(s) to rewrite (Intent -> PendingIntent)\n  proxy app:  0 (absorbed inside the Android binding module)",
        native_migration_sites()
    );

    // The repository also contains the post-migration native variant
    // (`native_android_v1`): nearly identical source, yet a forced
    // maintenance burden per platform release.
    let sources = mobivine_apps::metrics::variant_sources();
    let m5 = sources
        .iter()
        .find(|v| v.name == "native-android")
        .expect("m5 variant");
    let v1 = sources
        .iter()
        .find(|v| v.name == "native-android-v1.0")
        .expect("migrated variant");
    println!(
        "  migrated native variant shares {:.0}% of its lines with the m5 variant,\n  but neither version runs on the other SDK — apps must fork per release without proxies",
        mobivine_apps::metrics::similarity(v1.source, m5.source) * 100.0
    );

    assert_eq!(native_m5, expected, "native app works on the old SDK");
    assert_ne!(native_v1, expected, "native app breaks on the new SDK");
    assert_eq!(proxy_m5, expected, "proxy app works on the old SDK");
    assert_eq!(
        proxy_v1, expected,
        "proxy app works unchanged on the new SDK"
    );
    println!("\nall maintenance assertions hold");
}
