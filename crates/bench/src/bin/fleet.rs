//! Fleet-scale throughput benchmark.
//!
//! Usage: `cargo run -p mobivine-bench --bin fleet [--devices N]
//! [--shards A,B,C] [--workers N] [--rounds N] [--ops N] [--seed N]
//! [--json [PATH]] [--check PATH]`
//!
//! Runs the deterministic fleet load engine at each shard count and the
//! resolution-throughput comparison (per-call construction vs
//! sharded + memoized). `--json` emits the machine-readable summary
//! (schema `mobivine.fleet.v1`) — deterministic for a fixed
//! configuration — on stdout, or at `PATH` when one follows the flag;
//! `--check PATH` validates an existing summary file instead of
//! measuring anything.

use mobivine_bench::fleet_bench::{
    render_fleet_table, render_resolution_table, resolution_speedup, run_fleet_scaling,
    run_resolution_comparison,
};
use mobivine_bench::summary::{fleet_summary_json, validate_fleet_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut devices: usize = 10_000;
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut workers: usize = 4;
    let mut rounds: u64 = 3;
    let mut ops: u32 = 2;
    let mut seed: u64 = 7;
    let mut json_out: Option<Option<String>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--devices" => {
                devices = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(devices);
                i += 2;
            }
            "--shards" => {
                if let Some(list) = args.get(i + 1) {
                    let parsed: Vec<usize> =
                        list.split(',').filter_map(|v| v.parse().ok()).collect();
                    if !parsed.is_empty() {
                        shard_counts = parsed;
                    }
                }
                i += 2;
            }
            "--workers" => {
                workers = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(workers);
                i += 2;
            }
            "--rounds" => {
                rounds = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(rounds);
                i += 2;
            }
            "--ops" => {
                ops = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(ops);
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(seed);
                i += 2;
            }
            "--json" => match args.get(i + 1) {
                Some(path) if !path.starts_with("--") => {
                    json_out = Some(Some(path.clone()));
                    i += 2;
                }
                _ => {
                    json_out = Some(None);
                    i += 1;
                }
            },
            "--check" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--check requires a file path");
                    std::process::exit(2);
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                };
                match validate_fleet_json(&text) {
                    Ok(check) => {
                        println!(
                            "{path}: valid ({} scaling rows, {} resolution rows)",
                            check.scaling_rows, check.resolution_rows
                        );
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("{path}: invalid fleet summary: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "running fleet benchmark: {devices} devices, shard counts {shard_counts:?}, \
         {workers} workers, {rounds} rounds x {ops} ops, seed {seed} ..."
    );
    let scaling = run_fleet_scaling(devices, &shard_counts, workers, rounds, ops, seed);
    let resolution = run_resolution_comparison(devices.min(64), 50_000);

    if let Some(target) = json_out {
        let json = fleet_summary_json(&scaling, &resolution);
        match target {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote fleet summary to {path}");
            }
            None => println!("{json}"),
        }
        return;
    }

    print!("{}", render_fleet_table(&scaling));
    println!();
    print!("{}", render_resolution_table(&resolution));
    if let Some(speedup) = resolution_speedup(&resolution) {
        let verdict = if speedup >= 5.0 { "PASS" } else { "FAIL" };
        println!("acceptance (>= 5x memoized speedup): {verdict}");
    }
}
