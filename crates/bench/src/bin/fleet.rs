//! Fleet-scale throughput benchmark.
//!
//! Usage: `cargo run -p mobivine-bench --bin fleet [--devices N]
//! [--shards A,B,C] [--workers N] [--rounds N] [--ops N] [--seed N]
//! [--json [PATH]] [--check PATH] [--compare PATH] [--brownout]
//! [--crash]`
//!
//! Runs the deterministic fleet load engine at each shard count — plus
//! one telemetry-on configuration at the first shard count, so the
//! summary carries the tracing-overhead ablation — the
//! resolution-throughput comparison (per-call construction vs
//! sharded + memoized), the brownout comparison (one shard ramped,
//! overload layer on vs off, at a fixed small configuration so the gate
//! margins stay pinned; both arms trace their devices, so each row also
//! carries the flight-recorder evidence), and the cache comparison
//! (the same read-heavy traffic with the read-through proxy cache on vs
//! off, also at a fixed configuration), and the bridge comparison (the
//! same read-heavy traffic turned into power-aware multi-reads, with
//! WebView bridge batching on vs off), and the crash comparison (the
//! same durable traffic with a deterministic crash storm armed vs
//! crash-free). `--json` emits the
//! machine-readable summary (schema `mobivine.fleet.v6`) —
//! deterministic for a fixed configuration — on stdout, or at `PATH`
//! when one follows the flag; `--check PATH` validates an existing
//! summary file instead of measuring anything; `--brownout` runs only
//! the brownout comparison and exits non-zero unless both arms hold the
//! overload gate, which since v3 includes the accountability clause:
//! every deadline-blown call of the unprotected arm must have a
//! promoted trace in the incident store (the CI chaos smoke);
//! `--crash` runs only the crash comparison and exits non-zero unless
//! the stormed arm reproduced the crash-free checksum with zero
//! duplicate effects, ≥1 torn-write and ≥1 intent/effect-gap crash
//! recovered per shard (the CI crash smoke — it also prints a one-line
//! JSON digest of the stormed arm).
//!
//! `--compare PATH` is the regression gate CI runs against the
//! committed baseline: every scaling row of the baseline is re-run at
//! its recorded configuration and must reproduce its checksum exactly
//! and reach at least 75% of its recorded deterministic throughput
//! (>25% regression fails); the live proxy-acquisition and
//! telemetry-recording comparisons must both clear their 5x speedup
//! bars; since v4 the live cache comparison must hold its gate:
//! byte-identical checksums across arms and a ≥5x cut in binding-plane
//! read invocations; and since v5 the live bridge comparison must hold
//! its gate: byte-identical checksums across the batched and unbatched
//! arms and strictly fewer bridge crossings batched; and since v6 the
//! live crash comparison must hold its exactly-once gate.

use mobivine_bench::fleet_bench::{
    bridge_gate_holds, cache_gate_holds, crash_gate_holds, render_bridge_table,
    render_brownout_table, render_cache_table, render_crash_table, render_fleet_table,
    render_resolution_table, resolution_speedup, run_fleet_bridge, run_fleet_brownout,
    run_fleet_cache, run_fleet_crash, run_fleet_scaling, run_fleet_scaling_with_telemetry,
    run_resolution_comparison, BridgeRow, BrownoutRow, CacheRow, CrashRow,
};
use mobivine_bench::summary::{fleet_summary_json, parse_fleet_baseline, validate_fleet_json};
use mobivine_bench::telemetry_hotpath::{hotpath_speedup, run_hotpath_comparison};

/// The brownout comparison's fixed configuration: small enough for a
/// CI smoke, large enough that the ramp overloads the target shard.
/// Keeping it independent of the sweep flags pins the gate margins.
fn brownout_comparison() -> Vec<BrownoutRow> {
    run_fleet_brownout(30, 4, 3, 3, 2, 11)
}

/// The cache comparison's fixed configuration: a read-heavy mix big
/// enough that the warmed cache's hit rate dominates, small enough for
/// a CI smoke. Independent of the sweep flags, like the brownout.
fn cache_comparison() -> Vec<CacheRow> {
    run_fleet_cache(30, 4, 3, 4, 6, 11)
}

/// The bridge comparison's fixed configuration: the cache comparison's
/// read-heavy shape, with every fix turned into a power-aware
/// multi-read so the WebView devices have something to batch.
fn bridge_comparison() -> Vec<BridgeRow> {
    run_fleet_bridge(30, 4, 3, 4, 6, 11)
}

/// The crash comparison's fixed configuration: the brownout shape with
/// durability on, three deterministic crashes per shard when stormed.
/// Independent of the sweep flags so the gate margins stay pinned.
fn crash_comparison() -> Vec<CrashRow> {
    run_fleet_crash(30, 4, 3, 3, 2, 11, 3)
}

/// Re-runs every baseline scaling row and the live speedup gates.
fn compare_against_baseline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let baseline = parse_fleet_baseline(&text)?;
    for (i, row) in baseline.iter().enumerate() {
        eprintln!(
            "re-running baseline row {i}: {} devices, {} shards, telemetry {} ...",
            row.devices, row.shards, row.telemetry
        );
        let rerun = run_fleet_scaling_with_telemetry(
            row.devices,
            &[row.shards],
            row.workers,
            row.rounds,
            row.ops_per_round,
            row.seed,
            row.telemetry,
        );
        let current = &rerun[0];
        if current.checksum != row.checksum {
            return Err(format!(
                "scaling[{i}]: checksum {:016x} != baseline {:016x} — the fleet no longer \
                 computes the same results",
                current.checksum, row.checksum
            ));
        }
        let floor = row.virtual_ops_per_sec * 3 / 4;
        if current.virtual_ops_per_sec < floor {
            return Err(format!(
                "scaling[{i}]: throughput {} ops/vsec is more than 25% below baseline {}",
                current.virtual_ops_per_sec, row.virtual_ops_per_sec
            ));
        }
    }
    let resolution = run_resolution_comparison(64, 20_000);
    let speedup = resolution_speedup(&resolution).ok_or("resolution comparison incomplete")?;
    if speedup < 5.0 {
        return Err(format!(
            "proxy-acquisition speedup {speedup:.1}x is below the 5x bar"
        ));
    }
    eprintln!("proxy-acquisition speedup: {speedup:.1}x");
    let hotpath = run_hotpath_comparison(200_000);
    let speedup = hotpath_speedup(&hotpath).ok_or("hotpath comparison incomplete")?;
    if speedup < 5.0 {
        return Err(format!(
            "telemetry cached-handle speedup {speedup:.1}x is below the 5x bar"
        ));
    }
    eprintln!("telemetry cached-handle speedup: {speedup:.1}x");
    for row in brownout_comparison() {
        if !row.holds_the_gate() {
            return Err(format!("brownout overload gate failed: {row:?}"));
        }
    }
    eprintln!("brownout overload gate: both arms hold");
    let cache = cache_comparison();
    if !cache_gate_holds(&cache) {
        return Err(format!(
            "cache gate failed (equal checksums + ≥5x binding-read cut required): {cache:?}"
        ));
    }
    eprintln!("read-through cache gate: holds");
    let bridge = bridge_comparison();
    if !bridge_gate_holds(&bridge) {
        return Err(format!(
            "bridge gate failed (equal checksums + fewer batched crossings required): {bridge:?}"
        ));
    }
    eprintln!("webview bridge-batching gate: holds");
    let crash = crash_comparison();
    if !crash_gate_holds(&crash) {
        return Err(format!(
            "crash gate failed (equal checksums + zero duplicates + full storm coverage required): {crash:?}"
        ));
    }
    eprintln!("crash-storm exactly-once gate: holds");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut devices: usize = 10_000;
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut workers: usize = 4;
    let mut rounds: u64 = 3;
    let mut ops: u32 = 2;
    let mut seed: u64 = 7;
    let mut json_out: Option<Option<String>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--devices" => {
                devices = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(devices);
                i += 2;
            }
            "--shards" => {
                if let Some(list) = args.get(i + 1) {
                    let parsed: Vec<usize> =
                        list.split(',').filter_map(|v| v.parse().ok()).collect();
                    if !parsed.is_empty() {
                        shard_counts = parsed;
                    }
                }
                i += 2;
            }
            "--workers" => {
                workers = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(workers);
                i += 2;
            }
            "--rounds" => {
                rounds = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(rounds);
                i += 2;
            }
            "--ops" => {
                ops = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(ops);
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(seed);
                i += 2;
            }
            "--json" => match args.get(i + 1) {
                Some(path) if !path.starts_with("--") => {
                    json_out = Some(Some(path.clone()));
                    i += 2;
                }
                _ => {
                    json_out = Some(None);
                    i += 1;
                }
            },
            "--compare" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--compare requires a baseline file path");
                    std::process::exit(2);
                };
                match compare_against_baseline(path) {
                    Ok(()) => {
                        println!("{path}: no regression against baseline");
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("{path}: regression gate failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--crash" => {
                let rows = crash_comparison();
                print!("{}", render_crash_table(&rows));
                let digest = rows.first().map(|r| {
                    format!(
                        "{{\"recoveries\":{},\"torn_crashes\":{},\"gap_crashes\":{},\"duplicates\":{}}}",
                        r.recoveries, r.torn_crashes, r.gap_crashes, r.duplicates
                    )
                });
                if let Some(digest) = digest {
                    println!("{digest}");
                }
                if crash_gate_holds(&rows) {
                    println!("acceptance (checksum parity + exactly-once under the storm): PASS");
                    std::process::exit(0);
                }
                println!("acceptance (checksum parity + exactly-once under the storm): FAIL");
                std::process::exit(1);
            }
            "--brownout" => {
                let rows = brownout_comparison();
                print!("{}", render_brownout_table(&rows));
                if rows.iter().all(BrownoutRow::holds_the_gate) {
                    println!("acceptance (shed keeps accepted p99 within target): PASS");
                    std::process::exit(0);
                }
                println!("acceptance (shed keeps accepted p99 within target): FAIL");
                std::process::exit(1);
            }
            "--check" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--check requires a file path");
                    std::process::exit(2);
                };
                let text = match std::fs::read_to_string(path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                };
                match validate_fleet_json(&text) {
                    Ok(check) => {
                        println!(
                            "{path}: valid ({} scaling rows, {} resolution rows, {} brownout arms, {} cache arms, {} bridge arms, {} crash arms)",
                            check.scaling_rows,
                            check.resolution_rows,
                            check.brownout_rows,
                            check.cache_rows,
                            check.bridge_rows,
                            check.crash_rows
                        );
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("{path}: invalid fleet summary: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "running fleet benchmark: {devices} devices, shard counts {shard_counts:?}, \
         {workers} workers, {rounds} rounds x {ops} ops, seed {seed} ..."
    );
    let mut scaling = run_fleet_scaling(devices, &shard_counts, workers, rounds, ops, seed);
    // One traced configuration at the first shard count: the summary
    // then carries the telemetry-overhead ablation, and its checksum
    // must equal the untraced row's.
    scaling.extend(run_fleet_scaling_with_telemetry(
        devices,
        &shard_counts[..1],
        workers,
        rounds,
        ops,
        seed,
        true,
    ));
    let resolution = run_resolution_comparison(devices.min(64), 50_000);
    let brownout = brownout_comparison();
    let cache = cache_comparison();
    let bridge = bridge_comparison();
    let crash = crash_comparison();

    if let Some(target) = json_out {
        let json = fleet_summary_json(&scaling, &resolution, &brownout, &cache, &bridge, &crash);
        match target {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote fleet summary to {path}");
            }
            None => println!("{json}"),
        }
        return;
    }

    print!("{}", render_fleet_table(&scaling));
    println!();
    print!("{}", render_resolution_table(&resolution));
    if let Some(speedup) = resolution_speedup(&resolution) {
        let verdict = if speedup >= 5.0 { "PASS" } else { "FAIL" };
        println!("acceptance (>= 5x memoized speedup): {verdict}");
    }
    println!();
    print!("{}", render_brownout_table(&brownout));
    println!();
    print!("{}", render_cache_table(&cache));
    let verdict = if cache_gate_holds(&cache) {
        "PASS"
    } else {
        "FAIL"
    };
    println!("acceptance (equal checksums + >= 5x binding-read cut): {verdict}");
    println!();
    print!("{}", render_bridge_table(&bridge));
    let verdict = if bridge_gate_holds(&bridge) {
        "PASS"
    } else {
        "FAIL"
    };
    println!("acceptance (equal checksums + fewer batched crossings): {verdict}");
    println!();
    print!("{}", render_crash_table(&crash));
    let verdict = if crash_gate_holds(&crash) {
        "PASS"
    } else {
        "FAIL"
    };
    println!("acceptance (checksum parity + exactly-once under the storm): {verdict}");
}
