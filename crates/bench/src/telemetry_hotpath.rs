//! Telemetry hot-path ablation (the zero-allocation recording path).
//!
//! Two measurements:
//!
//! 1. **Recording-path comparison** — what one traced proxy call pays
//!    to publish its metrics, in two shapes:
//!    - `per-call-lookup`: the pre-optimization shape. Every call
//!      builds a fresh `(proxy, method, platform)` [`Labels`] set
//!      (heap), interns it, and walks the sharded registry to find its
//!      counter and histogram.
//!    - `cached-handles`: the [`CallInstruments`] shape the traced
//!      decorators now use. Handles are resolved once at wiring time;
//!      each call is two atomic increments and one histogram bucket
//!      add.
//!
//!    The acceptance gate requires the cached path to be at least 5x
//!    the per-call-lookup baseline.
//! 2. **Fleet throughput, telemetry on vs off** — the same
//!    deterministic fleet run with and without the traced decorator
//!    stack, proving tracing changes wall-clock cost only: the
//!    determinism checksums of both runs must be equal.
//!
//! [`CallInstruments`]: mobivine::telemetry

use std::time::Instant;

use mobivine_telemetry::{Counter, Histogram, Labels, MetricsRegistry};

use crate::fleet_bench::{run_fleet_scaling_with_telemetry, FleetScalingRow};

/// One row of the recording-path comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathRow {
    /// `per-call-lookup` or `cached-handles`.
    pub mode: &'static str,
    /// Recording operations timed (each op = 2 counters + 1 histogram).
    pub ops: u64,
    /// Wall-clock recording operations per second (table only — never
    /// committed to a deterministic artifact).
    pub wall_ops_per_sec: f64,
}

/// The method mix a traced proxy publishes, mirroring the decorators.
const SERIES: &[(&str, &str, &str)] = &[
    ("Location", "getLocation", "android"),
    ("SMS", "sendTextMessage", "s60"),
    ("Http", "request", "webview"),
];

/// Times `ops` metric-recording operations in both shapes against one
/// registry: the per-call-lookup baseline first, then the cached-handle
/// path the traced decorators use.
pub fn run_hotpath_comparison(ops: u64) -> Vec<HotpathRow> {
    let registry = MetricsRegistry::new();

    // Baseline: what the decorators paid before handle caching — a
    // fresh label set plus a full registry lookup per recorded call.
    let started = Instant::now();
    for i in 0..ops {
        let (proxy, method, platform) = SERIES[(i % SERIES.len() as u64) as usize];
        let labels = Labels::call(proxy, method, platform);
        registry.counter("proxy_calls_total", &labels).inc();
        registry.counter("proxy_errors_total", &labels).add(0);
        registry.histogram("proxy_call_ms", &labels).record(i % 32);
    }
    let lookup_secs = started.elapsed().as_secs_f64();

    // Cached handles: resolve once (the wiring-time path), then record
    // through pure atomics.
    struct Handles {
        calls: Counter,
        errors: Counter,
        latency: Histogram,
    }
    let handles: Vec<Handles> = SERIES
        .iter()
        .map(|&(proxy, method, platform)| {
            let labels = Labels::call(proxy, method, platform);
            Handles {
                calls: registry.counter("proxy_calls_total", &labels),
                errors: registry.counter("proxy_errors_total", &labels),
                latency: registry.histogram("proxy_call_ms", &labels),
            }
        })
        .collect();
    let started = Instant::now();
    for i in 0..ops {
        let handle = &handles[(i % SERIES.len() as u64) as usize];
        handle.calls.inc();
        handle.errors.add(0);
        handle.latency.record(i % 32);
    }
    let cached_secs = started.elapsed().as_secs_f64();

    let rate = |secs: f64| {
        if secs > 0.0 {
            ops as f64 / secs
        } else {
            f64::INFINITY
        }
    };
    vec![
        HotpathRow {
            mode: "per-call-lookup",
            ops,
            wall_ops_per_sec: rate(lookup_secs),
        },
        HotpathRow {
            mode: "cached-handles",
            ops,
            wall_ops_per_sec: rate(cached_secs),
        },
    ]
}

/// The cached-over-lookup speedup factor, when both rows are present.
pub fn hotpath_speedup(rows: &[HotpathRow]) -> Option<f64> {
    let lookup = rows.iter().find(|r| r.mode == "per-call-lookup")?;
    let cached = rows.iter().find(|r| r.mode == "cached-handles")?;
    if lookup.wall_ops_per_sec > 0.0 {
        Some(cached.wall_ops_per_sec / lookup.wall_ops_per_sec)
    } else {
        None
    }
}

/// Runs the same fleet configuration with telemetry off then on.
///
/// The two rows carry identical determinism checksums — tracing must
/// never change what the fleet computes — which
/// [`render_hotpath_fleet_table`] asserts in its verdict line.
pub fn run_fleet_telemetry_ablation(
    devices: usize,
    shards: usize,
    workers: usize,
    rounds: u64,
    ops_per_round: u32,
    seed: u64,
) -> Vec<FleetScalingRow> {
    let mut rows = run_fleet_scaling_with_telemetry(
        devices,
        &[shards],
        workers,
        rounds,
        ops_per_round,
        seed,
        false,
    );
    rows.extend(run_fleet_scaling_with_telemetry(
        devices,
        &[shards],
        workers,
        rounds,
        ops_per_round,
        seed,
        true,
    ));
    rows
}

/// Renders the recording-path comparison, including the speedup line
/// the acceptance gate reads.
pub fn render_hotpath_table(rows: &[HotpathRow]) -> String {
    let mut out = String::new();
    out.push_str("Telemetry recording path (wall clock; 1 op = 2 counters + 1 histogram)\n");
    out.push_str("mode             |      ops |    ops/sec\n");
    out.push_str("-----------------+----------+-----------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<16} | {:>8} | {:>10.0}\n",
            row.mode, row.ops, row.wall_ops_per_sec,
        ));
    }
    if let Some(speedup) = hotpath_speedup(rows) {
        out.push_str(&format!(
            "cached-handle speedup over per-call lookup: {speedup:.1}x\n"
        ));
    }
    out
}

/// Renders the fleet telemetry-on/off comparison with a determinism
/// verdict.
pub fn render_hotpath_fleet_table(rows: &[FleetScalingRow]) -> String {
    let mut out = String::new();
    out.push_str("Fleet throughput, telemetry off vs on\n");
    out.push_str("telemetry |   ops   | vops/sec |  wall ms | checksum\n");
    out.push_str("----------+---------+----------+----------+-----------------\n");
    for row in rows {
        out.push_str(&format!(
            "{:>9} | {:>7} | {:>8} | {:>8.1} | {:016x}\n",
            row.telemetry, row.total_ops, row.virtual_ops_per_sec, row.wall_ms, row.checksum,
        ));
    }
    let checksums: Vec<u64> = rows.iter().map(|r| r.checksum).collect();
    if checksums.len() >= 2 {
        let verdict = if checksums.windows(2).all(|w| w[0] == w[1]) {
            "PASS"
        } else {
            "FAIL"
        };
        out.push_str(&format!(
            "determinism (telemetry must not change results): {verdict}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_handles_clear_the_speedup_bar() {
        let rows = run_hotpath_comparison(200_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].mode, "per-call-lookup");
        assert_eq!(rows[1].mode, "cached-handles");
        let speedup = hotpath_speedup(&rows).expect("both rows present");
        assert!(
            speedup >= 5.0,
            "cached handles must be >= 5x the per-call-lookup baseline, got {speedup:.1}x"
        );
    }

    #[test]
    fn both_paths_record_the_same_series() {
        // The baseline and cached loops above hit the same registry, so
        // run each against a private one and compare exports.
        let lookup = MetricsRegistry::new();
        let cached = MetricsRegistry::new();
        let labels = Labels::call("Location", "getLocation", "android");
        let handle = cached.counter("proxy_calls_total", &labels);
        for _ in 0..10 {
            lookup.counter("proxy_calls_total", &labels).inc();
            handle.inc();
        }
        assert_eq!(
            lookup.counter_value("proxy_calls_total", &labels),
            cached.counter_value("proxy_calls_total", &labels),
        );
        assert_eq!(lookup.render_prometheus(), cached.render_prometheus());
    }

    #[test]
    fn fleet_ablation_keeps_the_checksum() {
        let rows = run_fleet_telemetry_ablation(24, 2, 2, 1, 1, 3);
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].telemetry);
        assert!(rows[1].telemetry);
        assert_eq!(
            rows[0].checksum, rows[1].checksum,
            "telemetry must not change what the fleet computes"
        );
        assert_eq!(rows[0].total_ops, rows[1].total_ops);
        let table = render_hotpath_fleet_table(&rows);
        assert!(table.contains("PASS"), "{table}");
    }

    #[test]
    fn hotpath_table_renders_both_modes() {
        let table = render_hotpath_table(&run_hotpath_comparison(10_000));
        assert!(table.contains("per-call-lookup"));
        assert!(table.contains("cached-handles"));
        assert!(table.contains("speedup"));
    }
}
