//! Fleet-scale throughput and scaling benchmark.
//!
//! Three measurements, one artifact:
//!
//! 1. **Scaling sweep** — runs the [`mobivine_apps::fleet`] load engine
//!    at a fixed device count across several shard counts, reporting
//!    per-configuration throughput and virtual-latency percentiles.
//!    Everything in these rows except the wall-clock column derives
//!    from virtual time and seeded streams, so the JSON summary
//!    (`mobivine.fleet.v4`) is byte-identical across runs.
//! 2. **Resolution comparison** — acquisition throughput of the
//!    unsharded per-call-construction baseline (a fresh runtime and a
//!    freshly constructed proxy stack per acquisition, the shape of the
//!    pre-redesign accessors) against the sharded + memoized resolver
//!    ([`mobivine::shard::ShardedRegistry::resolve`]). Wall-clock
//!    ops/sec appears only in the human-readable table; the JSON
//!    carries the deterministic fields.
//! 3. **Cache comparison** — the same read-heavy traffic with the
//!    read-through proxy cache on and off: byte-identical checksums,
//!    ≥5x fewer binding-plane read invocations ([`cache_gate_holds`]).

use std::sync::Arc;
use std::time::Instant;

use mobivine::api::LocationProxy;
use mobivine::registry::Mobivine;
use mobivine::shard::ShardedRegistry;
use mobivine_android::{AndroidPlatform, SdkVersion};
use mobivine_apps::fleet::{
    BrownoutConfig, CrashStormConfig, DurabilityFleetConfig, Fleet, FleetConfig,
};
use mobivine_device::Device;

/// One scaling-sweep configuration's results.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScalingRow {
    /// Shard count of this configuration.
    pub shards: usize,
    /// Simulated devices driven.
    pub devices: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Lockstep rounds run.
    pub rounds: u64,
    /// Proxy operations per device per round.
    pub ops_per_round: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Whether the device runtimes carried plane-aware telemetry.
    pub telemetry: bool,
    /// Total proxy operations issued.
    pub total_ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Throughput in ops per virtual second (deterministic).
    pub virtual_ops_per_sec: u64,
    /// Median per-op virtual latency, ms.
    pub p50_ms: u64,
    /// 95th-percentile per-op virtual latency, ms.
    pub p95_ms: u64,
    /// 99th-percentile per-op virtual latency, ms.
    pub p99_ms: u64,
    /// Determinism fingerprint of the run.
    pub checksum: u64,
    /// Wall-clock duration of the run, ms (table only — never in the
    /// JSON, which must be reproducible).
    pub wall_ms: f64,
}

/// One arm of the brownout comparison: the same traffic ramp run with
/// the overload layer on (`admission = true`) or off. Both arms run
/// with the flight recorder and SLO engine on, so each row also carries
/// the incident-debugging evidence (how many deadlines blew, how many
/// of those breaches the recorder promoted a trace for). Every field
/// but `wall_ms` derives from virtual time and seeded streams.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutRow {
    /// Whether the target shard's devices carried the overload layer.
    pub admission: bool,
    /// The ramped shard.
    pub target_shard: usize,
    /// Traffic multiplier applied to the target shard.
    pub ops_multiplier: u32,
    /// Per-batch deadline budget, virtual ms.
    pub deadline_budget_ms: u64,
    /// The accepted-call sojourn p99 bound the gate pins.
    pub p99_target_ms: u64,
    /// Total proxy operations issued fleet-wide.
    pub total_ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Calls rejected by the admission gate or bulkhead.
    pub shed: u64,
    /// Calls served degraded (cached fix / synthetic HTTP accept).
    pub degraded: u64,
    /// Calls failed fast on an exhausted deadline budget.
    pub deadline_exceeded: u64,
    /// Accepted-call sojourn p99 of the ramped shard, virtual ms.
    pub shard_p99_ms: u64,
    /// Calls whose per-batch deadline had expired by the time they
    /// finished (telemetry-independent; derived from flush sojourns).
    pub deadline_blown: u64,
    /// Traces the flight recorder promoted (kept + dropped).
    pub promoted_traces: u64,
    /// Kept promoted traces whose reason is a blown deadline.
    pub promoted_deadline: u64,
    /// Fingerprint of the incident digest (promoted trace ids, reasons
    /// and exemplars); separate from `checksum` by design.
    pub incident_checksum: u64,
    /// Determinism fingerprint of the run.
    pub checksum: u64,
    /// Wall-clock duration, ms (table only).
    pub wall_ms: f64,
}

impl BrownoutRow {
    /// Whether this arm behaved as the overload design promises: with
    /// admission on, excess load was shed and the accepted-call p99 of
    /// the ramped shard stayed within target; with admission off,
    /// nothing was shed, the p99 blew past it, **and** every
    /// deadline-blown call has a promoted trace explaining the breach
    /// (the flight recorder's accountability half of the gate).
    pub fn holds_the_gate(&self) -> bool {
        if self.admission {
            self.shed > 0 && self.shard_p99_ms <= self.p99_target_ms
        } else {
            self.shed == 0
                && self.shard_p99_ms > self.p99_target_ms
                && self.deadline_blown > 0
                && self.promoted_deadline == self.deadline_blown
        }
    }
}

/// One arm of the cache comparison: the same read-heavy traffic run
/// with the read-through proxy cache ([`mobivine::cache`]) on or off.
/// `binding_reads` is what the gate compares — the number of location
/// reads that reached the binding plane: *all* of them in the uncached
/// arm, only the cache misses in the cached arm. Every field but
/// `wall_ms` derives from virtual time and seeded streams.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheRow {
    /// Whether the devices carried the read-through cache.
    pub cached: bool,
    /// Simulated devices driven.
    pub devices: usize,
    /// Total proxy operations issued.
    pub total_ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Location fixes obtained (identical across arms by design).
    pub location_fixes: u64,
    /// Location reads that invoked the binding plane.
    pub binding_reads: u64,
    /// Reads served from cache (zero in the uncached arm).
    pub hits: u64,
    /// Reads that waited on another caller's in-flight fill.
    pub coalesced: u64,
    /// Cached entries discarded by invalidation.
    pub invalidated: u64,
    /// Determinism fingerprint of the run — must equal the other arm's.
    pub checksum: u64,
    /// Wall-clock duration, ms (table only).
    pub wall_ms: f64,
}

/// Whether a cached/uncached arm pair behaves as the cache design
/// promises: byte-identical checksums (caching is invisible to what the
/// fleet computes), a warm cache that actually hits, and at least a 5x
/// cut in binding-plane read invocations.
pub fn cache_gate_holds(rows: &[CacheRow]) -> bool {
    let Some(on) = rows.iter().find(|r| r.cached) else {
        return false;
    };
    let Some(off) = rows.iter().find(|r| !r.cached) else {
        return false;
    };
    on.checksum == off.checksum
        && on.hits > 0
        && on.binding_reads > 0
        && off.binding_reads >= on.binding_reads * 5
}

/// Runs the cache comparison: the same read-heavy traffic (¾ location
/// reads), once with every device runtime carrying the read-through
/// cache and once without. Returns the cached arm first.
///
/// # Panics
///
/// Panics if the fleet cannot be built — a zero in the configuration or
/// a proxy-construction failure, both programming errors here.
pub fn run_fleet_cache(
    devices: usize,
    shards: usize,
    workers: usize,
    rounds: u64,
    ops_per_round: u32,
    seed: u64,
) -> Vec<CacheRow> {
    [true, false]
        .into_iter()
        .map(|cached| {
            let config = FleetConfig {
                devices,
                shards,
                workers,
                rounds,
                tick_ms: 1_000,
                ops_per_round,
                seed,
                read_heavy: true,
                cache: cached,
                telemetry: false,
                span_retention: 16,
                incident_capacity: 256,
                slo: false,
                brownout: None,
                bridge_batch: None,
                durability: None,
                crash_plan: None,
            };
            let fleet = Fleet::build(config).expect("cache configuration is valid");
            let started = Instant::now();
            let report = fleet.run();
            let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
            let digest = report.cache.clone().unwrap_or_default();
            CacheRow {
                cached,
                devices,
                total_ops: report.total_ops,
                errors: report.errors,
                location_fixes: report.location_fixes,
                binding_reads: if cached {
                    digest.misses
                } else {
                    report.location_fixes
                },
                hits: digest.hits,
                coalesced: digest.coalesced,
                invalidated: digest.invalidated,
                checksum: report.checksum,
                wall_ms,
            }
        })
        .collect()
}

/// One arm of the bridge comparison: the same read-heavy traffic with
/// every `LocationFix` widened into a multi-read (fix + power draw),
/// run with WebView bridge batching on or off. `crossings` is what the
/// gate compares — the number of times the fleet's WebView devices
/// crossed the JavaScript bridge: one per multi-read batched, two
/// unbatched. Every field but `wall_ms` derives from virtual time and
/// seeded streams.
#[derive(Debug, Clone, PartialEq)]
pub struct BridgeRow {
    /// Whether the WebView devices batched their multi-reads.
    pub batched: bool,
    /// Simulated devices driven (every third one WebView).
    pub devices: usize,
    /// WebView devices contributing crossings.
    pub webview_devices: u64,
    /// Total proxy operations issued.
    pub total_ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Location fixes obtained (identical across arms by design).
    pub location_fixes: u64,
    /// JavaScript-bridge crossings over the run, warm-up included.
    pub crossings: u64,
    /// Determinism fingerprint of the run — must equal the other arm's.
    pub checksum: u64,
    /// Wall-clock duration, ms (table only).
    pub wall_ms: f64,
}

/// Whether a batched/unbatched arm pair behaves as the wire layer
/// promises: byte-identical checksums (batching is invisible to what
/// the fleet computes) and strictly fewer bridge crossings on the
/// batched arm.
pub fn bridge_gate_holds(rows: &[BridgeRow]) -> bool {
    let Some(on) = rows.iter().find(|r| r.batched) else {
        return false;
    };
    let Some(off) = rows.iter().find(|r| !r.batched) else {
        return false;
    };
    on.checksum == off.checksum && on.crossings > 0 && on.crossings < off.crossings
}

/// Runs the bridge comparison: the same read-heavy multi-read traffic
/// (every location fix also reads the GPS power draw), once with the
/// WebView devices batching the two reads into one bridge crossing and
/// once making two wire calls. Returns the batched arm first.
///
/// # Panics
///
/// Panics if the fleet cannot be built — a zero in the configuration or
/// a proxy-construction failure, both programming errors here.
pub fn run_fleet_bridge(
    devices: usize,
    shards: usize,
    workers: usize,
    rounds: u64,
    ops_per_round: u32,
    seed: u64,
) -> Vec<BridgeRow> {
    [true, false]
        .into_iter()
        .map(|batched| {
            let config = FleetConfig {
                devices,
                shards,
                workers,
                rounds,
                tick_ms: 1_000,
                ops_per_round,
                seed,
                read_heavy: true,
                cache: false,
                telemetry: false,
                span_retention: 16,
                incident_capacity: 256,
                slo: false,
                brownout: None,
                bridge_batch: Some(batched),
                durability: None,
                crash_plan: None,
            };
            let fleet = Fleet::build(config).expect("bridge configuration is valid");
            let started = Instant::now();
            let report = fleet.run();
            let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
            let digest = report.bridge.clone().unwrap_or_default();
            BridgeRow {
                batched,
                devices,
                webview_devices: digest.webview_devices,
                total_ops: report.total_ops,
                errors: report.errors,
                location_fixes: report.location_fixes,
                crossings: digest.crossings,
                checksum: report.checksum,
                wall_ms,
            }
        })
        .collect()
}

/// One arm of the crash-storm comparison: the same durable traffic run
/// with the deterministic crash schedule armed (`stormed = true`) or
/// not. Both arms journal every mutating call, so the gate can pin the
/// storm's recovery work *and* prove it changed nothing the fleet
/// computes. Every field but `wall_ms` derives from virtual time and
/// seeded streams.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRow {
    /// Whether the crash schedule was armed on every shard.
    pub stormed: bool,
    /// Simulated devices driven.
    pub devices: usize,
    /// Shards (each takes `crashes_per_shard` crashes when stormed).
    pub shards: usize,
    /// Crashes injected per shard (zero in the crash-free arm).
    pub crashes_per_shard: usize,
    /// Total proxy operations issued.
    pub total_ops: u64,
    /// Operations that returned an error after retries.
    pub errors: u64,
    /// Middleware recoveries performed (wipe + checkpoint + replay).
    pub recoveries: u64,
    /// Crashes that tore a journal record mid-write.
    pub torn_crashes: u64,
    /// Crashes landing between a durable intent and its effect.
    pub gap_crashes: u64,
    /// Crashes landing after the effect was applied.
    pub effect_crashes: u64,
    /// Journal records replayed across all recoveries.
    pub replayed_records: u64,
    /// Torn tails truncated during recovery.
    pub torn_truncated: u64,
    /// Retries absorbed by idempotency-key dedup.
    pub suppressed_duplicates: u64,
    /// Effects applied more than once (the exactly-once gate: zero).
    pub duplicates: u64,
    /// Median recovery latency, virtual µs.
    pub recovery_p50_us: u64,
    /// 99th-percentile recovery latency, virtual µs.
    pub recovery_p99_us: u64,
    /// Determinism fingerprint of the run — must equal the other arm's.
    pub checksum: u64,
    /// Wall-clock duration, ms (table only).
    pub wall_ms: f64,
}

/// Whether a stormed/crash-free arm pair behaves as the durability
/// design promises: byte-identical checksums (a storm of recovered
/// crashes is invisible to what the fleet computes), zero duplicate
/// effects, and a storm that actually exercised both hard crash points
/// — at least one torn write and one intent/effect gap per shard.
pub fn crash_gate_holds(rows: &[CrashRow]) -> bool {
    let Some(on) = rows.iter().find(|r| r.stormed) else {
        return false;
    };
    let Some(off) = rows.iter().find(|r| !r.stormed) else {
        return false;
    };
    on.checksum == off.checksum
        && on.errors == 0
        && on.duplicates == 0
        && off.duplicates == 0
        && on.recoveries == (on.shards * on.crashes_per_shard) as u64
        && on.torn_crashes >= on.shards as u64
        && on.gap_crashes >= on.shards as u64
        && off.recoveries == 0
}

/// Runs the crash-storm comparison: the same durable traffic (client
/// journals, per-apply server checkpoints, idempotency keys on the
/// wire), once with [`CrashStormConfig`] killing every shard's
/// middleware at deterministic points and once crash-free. Returns the
/// stormed arm first.
///
/// # Panics
///
/// Panics if the fleet cannot be built — a zero in the configuration,
/// too few mutating calls per shard for the requested storm, or a
/// proxy-construction failure, all programming errors here.
pub fn run_fleet_crash(
    devices: usize,
    shards: usize,
    workers: usize,
    rounds: u64,
    ops_per_round: u32,
    seed: u64,
    crashes_per_shard: usize,
) -> Vec<CrashRow> {
    [true, false]
        .into_iter()
        .map(|stormed| {
            let config = FleetConfig {
                devices,
                shards,
                workers,
                rounds,
                tick_ms: 1_000,
                ops_per_round,
                seed,
                read_heavy: false,
                cache: false,
                telemetry: false,
                span_retention: 16,
                incident_capacity: 256,
                slo: false,
                brownout: None,
                bridge_batch: None,
                durability: Some(DurabilityFleetConfig::default()),
                crash_plan: stormed.then_some(CrashStormConfig { crashes_per_shard }),
            };
            let fleet = Fleet::build(config).expect("crash configuration is valid");
            let started = Instant::now();
            let report = fleet.run();
            let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
            let digest = report
                .recovery
                .as_ref()
                .expect("durability is on, so the digest is present");
            CrashRow {
                stormed,
                devices,
                shards,
                crashes_per_shard: if stormed { crashes_per_shard } else { 0 },
                total_ops: report.total_ops,
                errors: report.errors,
                recoveries: digest.recoveries,
                torn_crashes: digest.torn_crashes,
                gap_crashes: digest.gap_crashes,
                effect_crashes: digest.effect_crashes,
                replayed_records: digest.replayed_records,
                torn_truncated: digest.torn_truncated,
                suppressed_duplicates: digest.suppressed_duplicates,
                duplicates: digest.duplicates,
                recovery_p50_us: digest.recovery_p50_us,
                recovery_p99_us: digest.recovery_p99_us,
                checksum: report.checksum,
                wall_ms,
            }
        })
        .collect()
}

/// One row of the resolution-throughput comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolutionRow {
    /// `per-call-construction` or `sharded-memoized`.
    pub mode: &'static str,
    /// Proxy acquisitions timed.
    pub acquisitions: u64,
    /// Distinct device runtimes cycled through.
    pub devices: usize,
    /// Wall-clock acquisitions per second (table only).
    pub wall_ops_per_sec: f64,
}

/// Runs the fleet at `devices` for each entry of `shard_counts`.
///
/// # Panics
///
/// Panics if the fleet cannot be built — a zero in the configuration or
/// a proxy-construction failure, both programming errors here.
pub fn run_fleet_scaling(
    devices: usize,
    shard_counts: &[usize],
    workers: usize,
    rounds: u64,
    ops_per_round: u32,
    seed: u64,
) -> Vec<FleetScalingRow> {
    run_fleet_scaling_with_telemetry(
        devices,
        shard_counts,
        workers,
        rounds,
        ops_per_round,
        seed,
        false,
    )
}

/// [`run_fleet_scaling`] with the telemetry decorators toggled: when
/// `telemetry` is true every device runtime carries the traced proxy
/// stack (span retention 16 per worker sink, the fleet default).
///
/// # Panics
///
/// Panics if the fleet cannot be built — a zero in the configuration or
/// a proxy-construction failure, both programming errors here.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_scaling_with_telemetry(
    devices: usize,
    shard_counts: &[usize],
    workers: usize,
    rounds: u64,
    ops_per_round: u32,
    seed: u64,
    telemetry: bool,
) -> Vec<FleetScalingRow> {
    shard_counts
        .iter()
        .map(|&shards| {
            let config = FleetConfig {
                devices,
                shards,
                workers,
                rounds,
                tick_ms: 1_000,
                ops_per_round,
                seed,
                read_heavy: false,
                cache: false,
                telemetry,
                span_retention: 16,
                incident_capacity: 256,
                slo: false,
                brownout: None,
                bridge_batch: None,
                durability: None,
                crash_plan: None,
            };
            let fleet = Fleet::build(config).expect("fleet configuration is valid");
            let started = Instant::now();
            let report = fleet.run();
            let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
            FleetScalingRow {
                shards,
                devices,
                workers,
                rounds,
                ops_per_round,
                seed,
                telemetry,
                total_ops: report.total_ops,
                errors: report.errors,
                virtual_ops_per_sec: report.virtual_ops_per_sec(),
                p50_ms: report.p50_ms,
                p95_ms: report.p95_ms,
                p99_ms: report.p99_ms,
                checksum: report.checksum,
                wall_ms,
            }
        })
        .collect()
}

/// Runs the brownout comparison: the same traffic ramp against one
/// shard, once with the overload layer protecting the ramped devices
/// and once without. Both arms trace their devices (flight recorder +
/// SLO engine on) so the rows carry the incident evidence the gate
/// audits. Returns the protected arm first.
///
/// # Panics
///
/// Panics if the fleet cannot be built — a zero in the configuration or
/// a proxy-construction failure, both programming errors here.
pub fn run_fleet_brownout(
    devices: usize,
    shards: usize,
    workers: usize,
    rounds: u64,
    ops_per_round: u32,
    seed: u64,
) -> Vec<BrownoutRow> {
    [true, false]
        .into_iter()
        .map(|admission| {
            let brownout = BrownoutConfig {
                target_shard: 1 % shards,
                admission,
                ..BrownoutConfig::default()
            };
            let config = FleetConfig {
                devices,
                shards,
                workers,
                rounds,
                tick_ms: 1_000,
                ops_per_round,
                seed,
                read_heavy: false,
                cache: false,
                telemetry: true,
                span_retention: 16,
                incident_capacity: 256,
                slo: true,
                brownout: Some(brownout.clone()),
                bridge_batch: None,
                durability: None,
                crash_plan: None,
            };
            let fleet = Fleet::build(config).expect("brownout configuration is valid");
            let started = Instant::now();
            let report = fleet.run();
            let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
            let shard_p99_ms = report.per_shard[brownout.target_shard].p99_ms;
            let incidents = report
                .incidents
                .as_ref()
                .expect("telemetry is on, so the digest is present");
            BrownoutRow {
                admission,
                target_shard: brownout.target_shard,
                ops_multiplier: brownout.ops_multiplier,
                deadline_budget_ms: brownout.deadline_budget_ms,
                p99_target_ms: brownout.p99_target_ms,
                total_ops: report.total_ops,
                errors: report.errors,
                shed: report.shed,
                degraded: report.degraded,
                deadline_exceeded: report.deadline_exceeded,
                shard_p99_ms,
                deadline_blown: report.deadline_blown,
                promoted_traces: incidents.promoted_traces,
                promoted_deadline: incidents.promoted_deadline,
                incident_checksum: incidents.incident_checksum,
                checksum: report.checksum,
                wall_ms,
            }
        })
        .collect()
}

/// Times `acquisitions` proxy acquisitions in both modes: the unsharded
/// per-call-construction baseline first, then the sharded + memoized
/// resolver, cycling over `devices` distinct runtimes.
pub fn run_resolution_comparison(devices: usize, acquisitions: u64) -> Vec<ResolutionRow> {
    let devices = devices.max(1);

    // Baseline: every acquisition pays what the pre-redesign accessors
    // paid on a cold registry — runtime assembly (private catalog copy
    // included) plus full proxy-stack construction.
    let contexts: Vec<_> = (0..devices)
        .map(|i| {
            AndroidPlatform::new(Device::builder().seed(i as u64).build(), SdkVersion::M5Rc15)
                .new_context()
        })
        .collect();
    let started = Instant::now();
    for i in 0..acquisitions {
        let runtime = Mobivine::for_android(contexts[(i as usize) % devices].clone());
        let proxy = runtime
            .proxy::<dyn LocationProxy>()
            .expect("android supports Location");
        std::hint::black_box(&proxy);
    }
    let baseline_secs = started.elapsed().as_secs_f64();

    // Sharded + memoized: warm once, then lock-free cache hits.
    let mut registry = ShardedRegistry::new(devices.clamp(1, 8)).expect("shard count is non-zero");
    for ctx in &contexts {
        let ctx = ctx.clone();
        registry
            .push_with(move |b| b.android(ctx))
            .expect("runtime builds");
    }
    let registry = Arc::new(registry);
    registry.warm().expect("warm-up succeeds");
    let started = Instant::now();
    for i in 0..acquisitions {
        let proxy = registry
            .resolve::<dyn LocationProxy>((i as usize) % devices)
            .expect("warmed registry resolves");
        std::hint::black_box(&proxy);
    }
    let memoized_secs = started.elapsed().as_secs_f64();

    let rate = |secs: f64| {
        if secs > 0.0 {
            acquisitions as f64 / secs
        } else {
            f64::INFINITY
        }
    };
    vec![
        ResolutionRow {
            mode: "per-call-construction",
            acquisitions,
            devices,
            wall_ops_per_sec: rate(baseline_secs),
        },
        ResolutionRow {
            mode: "sharded-memoized",
            acquisitions,
            devices,
            wall_ops_per_sec: rate(memoized_secs),
        },
    ]
}

/// The memoized-over-baseline speedup factor, when both rows are
/// present.
pub fn resolution_speedup(rows: &[ResolutionRow]) -> Option<f64> {
    let baseline = rows.iter().find(|r| r.mode == "per-call-construction")?;
    let memoized = rows.iter().find(|r| r.mode == "sharded-memoized")?;
    if baseline.wall_ops_per_sec > 0.0 {
        Some(memoized.wall_ops_per_sec / baseline.wall_ops_per_sec)
    } else {
        None
    }
}

/// Renders the scaling sweep as an aligned text table.
pub fn render_fleet_table(rows: &[FleetScalingRow]) -> String {
    let mut out = String::new();
    out.push_str("Fleet scaling (virtual ops/sec; latencies in virtual ms)\n");
    out.push_str(
        "shards | devices | workers | tel |   ops   | errors | vops/sec | p50 | p95 | p99 |  wall ms\n",
    );
    out.push_str(
        "-------+---------+---------+-----+---------+--------+----------+-----+-----+-----+---------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>6} | {:>7} | {:>7} | {:>3} | {:>7} | {:>6} | {:>8} | {:>3} | {:>3} | {:>3} | {:>8.1}\n",
            row.shards,
            row.devices,
            row.workers,
            if row.telemetry { "on" } else { "off" },
            row.total_ops,
            row.errors,
            row.virtual_ops_per_sec,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.wall_ms,
        ));
    }
    out
}

/// Renders the brownout comparison, including the verdict line per arm.
pub fn render_brownout_table(rows: &[BrownoutRow]) -> String {
    let mut out = String::new();
    out.push_str("Brownout: one shard ramped, overload layer on vs off (virtual ms)\n");
    out.push_str(
        "admission |   ops   | errors |  shed | degraded | dl-exceeded | dl-blown | promoted | shard p99 | target | verdict\n",
    );
    out.push_str(
        "----------+---------+--------+-------+----------+-------------+----------+----------+-----------+--------+--------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>9} | {:>7} | {:>6} | {:>5} | {:>8} | {:>11} | {:>8} | {:>8} | {:>9} | {:>6} | {}\n",
            if row.admission { "on" } else { "off" },
            row.total_ops,
            row.errors,
            row.shed,
            row.degraded,
            row.deadline_exceeded,
            row.deadline_blown,
            row.promoted_traces,
            row.shard_p99_ms,
            row.p99_target_ms,
            if row.holds_the_gate() {
                "holds"
            } else {
                "FAILS"
            },
        ));
    }
    out
}

/// Renders the cache comparison, including the verdict line the
/// acceptance gate reads.
pub fn render_cache_table(rows: &[CacheRow]) -> String {
    let mut out = String::new();
    out.push_str("Read-through cache: read-heavy fleet, cache on vs off\n");
    out.push_str(
        "cache |   ops   | fixes | binding reads |  hits | coalesced | invalidated |     checksum     |  wall ms\n",
    );
    out.push_str(
        "------+---------+-------+---------------+-------+-----------+-------------+------------------+---------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>5} | {:>7} | {:>5} | {:>13} | {:>5} | {:>9} | {:>11} | {:016x} | {:>8.1}\n",
            if row.cached { "on" } else { "off" },
            row.total_ops,
            row.location_fixes,
            row.binding_reads,
            row.hits,
            row.coalesced,
            row.invalidated,
            row.checksum,
            row.wall_ms,
        ));
    }
    if let (Some(on), Some(off)) = (
        rows.iter().find(|r| r.cached),
        rows.iter().find(|r| !r.cached),
    ) {
        if on.binding_reads > 0 {
            out.push_str(&format!(
                "binding-plane read reduction: {:.1}x\n",
                off.binding_reads as f64 / on.binding_reads as f64
            ));
        }
    }
    out
}

/// Renders the bridge comparison, including the crossing-reduction
/// line the acceptance gate reads.
pub fn render_bridge_table(rows: &[BridgeRow]) -> String {
    let mut out = String::new();
    out.push_str("WebView bridge batching: read-heavy multi-read fleet, batching on vs off\n");
    out.push_str("batch |   ops   | fixes | webviews | crossings |     checksum     |  wall ms\n");
    out.push_str("------+---------+-------+----------+-----------+------------------+---------\n");
    for row in rows {
        out.push_str(&format!(
            "{:>5} | {:>7} | {:>5} | {:>8} | {:>9} | {:016x} | {:>8.1}\n",
            if row.batched { "on" } else { "off" },
            row.total_ops,
            row.location_fixes,
            row.webview_devices,
            row.crossings,
            row.checksum,
            row.wall_ms,
        ));
    }
    if let (Some(on), Some(off)) = (
        rows.iter().find(|r| r.batched),
        rows.iter().find(|r| !r.batched),
    ) {
        if on.crossings > 0 {
            out.push_str(&format!(
                "bridge-crossing reduction: {:.2}x\n",
                off.crossings as f64 / on.crossings as f64
            ));
        }
    }
    out
}

/// Renders the crash-storm comparison, including the verdict line the
/// acceptance gate reads.
pub fn render_crash_table(rows: &[CrashRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Crash storm: durable fleet, deterministic crashes on vs off (recovery in virtual µs)\n",
    );
    out.push_str(
        "storm |   ops   | errors | recoveries | torn | gap | post | replayed | dedup | dups | rec p50 | rec p99 |     checksum     |  wall ms\n",
    );
    out.push_str(
        "------+---------+--------+------------+------+-----+------+----------+-------+------+---------+---------+------------------+---------\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>5} | {:>7} | {:>6} | {:>10} | {:>4} | {:>3} | {:>4} | {:>8} | {:>5} | {:>4} | {:>7} | {:>7} | {:016x} | {:>8.1}\n",
            if row.stormed { "on" } else { "off" },
            row.total_ops,
            row.errors,
            row.recoveries,
            row.torn_crashes,
            row.gap_crashes,
            row.effect_crashes,
            row.replayed_records,
            row.suppressed_duplicates,
            row.duplicates,
            row.recovery_p50_us,
            row.recovery_p99_us,
            row.checksum,
            row.wall_ms,
        ));
    }
    out.push_str(&format!(
        "exactly-once gate: {}\n",
        if crash_gate_holds(rows) {
            "holds"
        } else {
            "FAILS"
        }
    ));
    out
}

/// Renders the resolution comparison, including the speedup line the
/// acceptance gate reads.
pub fn render_resolution_table(rows: &[ResolutionRow]) -> String {
    let mut out = String::new();
    out.push_str("Proxy acquisition throughput (wall clock)\n");
    out.push_str("mode                  | acquisitions | devices |   ops/sec\n");
    out.push_str("----------------------+--------------+---------+----------\n");
    for row in rows {
        out.push_str(&format!(
            "{:<21} | {:>12} | {:>7} | {:>9.0}\n",
            row.mode, row.acquisitions, row.devices, row.wall_ops_per_sec,
        ));
    }
    if let Some(speedup) = resolution_speedup(rows) {
        out.push_str(&format!(
            "sharded+memoized speedup over per-call construction: {speedup:.1}x\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_are_deterministic_across_runs() {
        let first = run_fleet_scaling(60, &[1, 4], 3, 2, 2, 5);
        let second = run_fleet_scaling(60, &[1, 4], 3, 2, 2, 5);
        assert_eq!(first.len(), 2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(a.total_ops, b.total_ops);
            assert_eq!(a.virtual_ops_per_sec, b.virtual_ops_per_sec);
            assert_eq!(
                (a.p50_ms, a.p95_ms, a.p99_ms),
                (b.p50_ms, b.p95_ms, b.p99_ms)
            );
        }
        assert_eq!(first[0].total_ops, 60 * 2 * 2);
    }

    #[test]
    fn brownout_rows_pin_the_overload_gate() {
        let rows = run_fleet_brownout(30, 4, 3, 3, 2, 11);
        assert_eq!(rows.len(), 2);
        let (on, off) = (&rows[0], &rows[1]);
        assert!(on.admission && !off.admission);
        assert!(on.holds_the_gate(), "protected arm: {on:?}");
        assert!(off.holds_the_gate(), "unprotected arm: {off:?}");
        assert!(on.shed > 0 && on.degraded > 0 && on.deadline_exceeded > 0);

        // The accountability half: the unprotected arm blew deadlines
        // and the recorder promoted a trace for every one of them.
        assert!(off.deadline_blown > 0, "unprotected arm: {off:?}");
        assert_eq!(off.promoted_deadline, off.deadline_blown);
        assert!(off.promoted_traces >= off.promoted_deadline);
        assert!(off.incident_checksum != 0, "digest fingerprint missing");

        // Deterministic: a re-run reproduces both arms exactly.
        let again = run_fleet_brownout(30, 4, 3, 3, 2, 11);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(a.incident_checksum, b.incident_checksum);
            assert_eq!(
                (a.shed, a.degraded, a.deadline_exceeded, a.shard_p99_ms),
                (b.shed, b.degraded, b.deadline_exceeded, b.shard_p99_ms)
            );
            assert_eq!(
                (a.deadline_blown, a.promoted_traces, a.promoted_deadline),
                (b.deadline_blown, b.promoted_traces, b.promoted_deadline)
            );
        }

        let table = render_brownout_table(&rows);
        assert!(table.contains("holds"), "{table}");
        assert!(!table.contains("FAILS"), "{table}");
    }

    #[test]
    fn cache_rows_hold_the_gate_and_are_deterministic() {
        let rows = run_fleet_cache(30, 4, 3, 4, 6, 11);
        assert_eq!(rows.len(), 2);
        let (on, off) = (&rows[0], &rows[1]);
        assert!(on.cached && !off.cached);
        assert_eq!(
            on.checksum, off.checksum,
            "caching changed what the fleet computes: {on:?} vs {off:?}"
        );
        assert_eq!(on.location_fixes, off.location_fixes);
        assert_eq!(off.hits, 0, "no cache, no hits");
        assert!(on.hits > 0, "cached arm must hit: {on:?}");
        assert!(
            cache_gate_holds(&rows),
            "≥5x binding-read cut required: {rows:?}"
        );

        let again = run_fleet_cache(30, 4, 3, 4, 6, 11);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(
                (a.binding_reads, a.hits, a.coalesced, a.invalidated),
                (b.binding_reads, b.hits, b.coalesced, b.invalidated)
            );
        }

        let table = render_cache_table(&rows);
        assert!(table.contains("reduction"), "{table}");
    }

    #[test]
    fn bridge_rows_hold_the_gate_and_are_deterministic() {
        let rows = run_fleet_bridge(30, 4, 3, 4, 6, 11);
        assert_eq!(rows.len(), 2);
        let (on, off) = (&rows[0], &rows[1]);
        assert!(on.batched && !off.batched);
        assert_eq!(
            on.checksum, off.checksum,
            "batching changed what the fleet computes: {on:?} vs {off:?}"
        );
        assert_eq!(on.location_fixes, off.location_fixes);
        assert!(
            bridge_gate_holds(&rows),
            "batched arm must cut crossings: {rows:?}"
        );

        let again = run_fleet_bridge(30, 4, 3, 4, 6, 11);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(a.crossings, b.crossings);
        }

        let table = render_bridge_table(&rows);
        assert!(table.contains("reduction"), "{table}");
    }

    #[test]
    fn bridge_gate_rejects_a_missing_or_drifted_arm() {
        let rows = run_fleet_bridge(30, 4, 3, 4, 6, 11);
        assert!(
            !bridge_gate_holds(&rows[..1]),
            "one arm is not a comparison"
        );
        let mut drifted = rows.clone();
        drifted[0].checksum ^= 1;
        assert!(
            !bridge_gate_holds(&drifted),
            "a checksum drift must fail the gate"
        );
        let mut inflated = rows;
        inflated[0].crossings = inflated[1].crossings;
        assert!(
            !bridge_gate_holds(&inflated),
            "equal crossings must fail the gate"
        );
    }

    #[test]
    fn cache_gate_rejects_a_missing_or_cold_arm() {
        let rows = run_fleet_cache(30, 4, 3, 4, 6, 11);
        assert!(!cache_gate_holds(&rows[..1]), "one arm is not a comparison");
        let mut cold = rows.clone();
        cold[0].hits = 0;
        assert!(!cache_gate_holds(&cold), "a cold cache must fail the gate");
        let mut drifted = rows;
        drifted[0].checksum ^= 1;
        assert!(
            !cache_gate_holds(&drifted),
            "a checksum drift must fail the gate"
        );
    }

    #[test]
    fn crash_rows_hold_the_gate_and_are_deterministic() {
        let rows = run_fleet_crash(30, 4, 3, 3, 2, 11, 3);
        assert_eq!(rows.len(), 2);
        let (on, off) = (&rows[0], &rows[1]);
        assert!(on.stormed && !off.stormed);
        assert_eq!(
            on.checksum, off.checksum,
            "the storm changed what the fleet computes: {on:?} vs {off:?}"
        );
        assert_eq!(on.duplicates, 0, "exactly-once violated: {on:?}");
        assert_eq!(on.recoveries, 12, "3 crashes on each of 4 shards");
        assert!(crash_gate_holds(&rows), "{rows:?}");

        let again = run_fleet_crash(30, 4, 3, 3, 2, 11, 3);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.checksum, b.checksum);
            assert_eq!(
                (
                    a.recoveries,
                    a.torn_crashes,
                    a.gap_crashes,
                    a.effect_crashes
                ),
                (
                    b.recoveries,
                    b.torn_crashes,
                    b.gap_crashes,
                    b.effect_crashes
                )
            );
            assert_eq!(
                (a.replayed_records, a.recovery_p50_us, a.recovery_p99_us),
                (b.replayed_records, b.recovery_p50_us, b.recovery_p99_us)
            );
        }

        let table = render_crash_table(&rows);
        assert!(table.contains("holds"), "{table}");
        assert!(!table.contains("FAILS"), "{table}");
    }

    #[test]
    fn crash_gate_rejects_a_missing_or_drifted_arm() {
        let rows = run_fleet_crash(30, 4, 3, 3, 2, 11, 3);
        assert!(!crash_gate_holds(&rows[..1]), "one arm is not a comparison");
        let mut drifted = rows.clone();
        drifted[0].checksum ^= 1;
        assert!(
            !crash_gate_holds(&drifted),
            "a checksum drift must fail the gate"
        );
        let mut duplicated = rows;
        duplicated[0].duplicates = 1;
        assert!(
            !crash_gate_holds(&duplicated),
            "a duplicate effect must fail the gate"
        );
    }

    #[test]
    fn resolution_comparison_clears_the_speedup_bar() {
        let rows = run_resolution_comparison(16, 2_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].mode, "per-call-construction");
        assert_eq!(rows[1].mode, "sharded-memoized");
        let speedup = resolution_speedup(&rows).expect("both rows present");
        assert!(
            speedup >= 5.0,
            "memoized resolution must be >= 5x the construction baseline, got {speedup:.1}x"
        );
    }

    #[test]
    fn tables_render_both_rows() {
        let rows = run_resolution_comparison(4, 200);
        let table = render_resolution_table(&rows);
        assert!(table.contains("per-call-construction"));
        assert!(table.contains("sharded-memoized"));
        assert!(table.contains("speedup"));

        let scaling = run_fleet_scaling(30, &[2], 2, 1, 1, 3);
        let table = render_fleet_table(&scaling);
        assert!(table.contains("vops/sec"));
        assert!(table.contains(" 30 "), "{table}");
    }
}
