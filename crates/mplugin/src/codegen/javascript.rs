//! JavaScript snippet generation — the style of the paper's Fig. 9.

use crate::codegen::{class_name, instance_name, render_literal};
use crate::dialog::ConfigurationDialog;

/// Generates the JavaScript snippet for a completed dialog.
pub fn generate(dialog: &ConfigurationDialog) -> String {
    let class = class_name(dialog);
    let var = instance_name(dialog);
    let mut out = String::new();
    out.push_str("try {\n");
    out.push_str(&format!("    var {var} = new {class}();\n"));
    for property in dialog.properties() {
        if let Some(value) = property.effective_value() {
            out.push_str(&format!(
                "    {var}.setProperty(\"{}\", {});\n",
                property.name,
                render_literal(&property.type_name, value)
            ));
        }
    }
    let args: Vec<String> = dialog
        .variables()
        .iter()
        .map(|v| {
            let value = v.value.as_deref().unwrap_or("/* unset */");
            if v.type_name == "function" {
                value.to_owned()
            } else {
                render_literal(&v.type_name, value)
            }
        })
        .collect();
    out.push_str(&format!("    {var}.{}({});\n", dialog.api, args.join(", ")));
    out.push_str("} catch (ex) {\n");
    out.push_str(&format!(
        "    // Handle {} specific exceptions via ex.errorCode\n",
        dialog.platform.id()
    ));
    out.push_str("}\n");
    if dialog.callback.is_some() {
        let callback_name = dialog
            .variables()
            .iter()
            .find(|v| v.type_name == "function")
            .and_then(|v| v.value.clone())
            .unwrap_or_else(|| "callback".to_owned());
        out.push_str(&format!(
            "\nfunction {callback_name}(refLatitude, refLongitude, refAltitude, currentLocation, entering) {{\n    /* business logic for handling proximity events */\n}}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialog::ConfigurationDialog;
    use mobivine_proxydl::{catalog, PlatformId};

    fn configured_webview_dialog() -> ConfigurationDialog {
        let mut dialog = ConfigurationDialog::for_api(
            &catalog::location(),
            PlatformId::AndroidWebView,
            "addProximityAlert",
        )
        .unwrap();
        for (name, value) in [
            ("latitude", "28.5355"),
            ("longitude", "77.3910"),
            ("altitude", "0"),
            ("radius", "100"),
            ("timer", "-1"),
            ("proximityListener", "proximityEvent"),
        ] {
            dialog.set_variable(name, value).unwrap();
        }
        dialog.set_property("provider", "gps").unwrap();
        dialog
    }

    #[test]
    fn golden_webview_proximity_snippet() {
        let source = generate(&configured_webview_dialog());
        let expected = "try {\n    var loc = new LocationProxyImpl();\n    loc.setProperty(\"provider\", \"gps\");\n    loc.setProperty(\"pollInterval\", 200);\n    loc.addProximityAlert(28.5355, 77.3910, 0, 100, -1, proximityEvent);\n} catch (ex) {\n    // Handle android-webview specific exceptions via ex.errorCode\n}\n\nfunction proximityEvent(refLatitude, refLongitude, refAltitude, currentLocation, entering) {\n    /* business logic for handling proximity events */\n}\n";
        assert_eq!(source, expected);
    }

    #[test]
    fn callback_values_render_bare() {
        let source = generate(&configured_webview_dialog());
        assert!(source.contains(", proximityEvent);"));
        assert!(!source.contains("\"proximityEvent\""));
    }

    #[test]
    fn dialog_source_preview_dispatches_to_javascript() {
        let dialog = configured_webview_dialog();
        assert_eq!(dialog.source_preview().unwrap(), generate(&dialog));
    }
}
