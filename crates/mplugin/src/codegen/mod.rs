//! Snippet generation (M-Proxy configuration, §3.2 feature 3).
//!
//! "It also generates code for invoking the configured proxy interface
//! taking into consideration all user inputs, and offers preview of the
//! generated code." Two generators exist, one per syntactic-plane
//! language: [`java`] produces the style of the paper's Fig. 8,
//! [`javascript`] the style of Fig. 9.

pub mod java;
pub mod javascript;

use crate::dialog::ConfigurationDialog;

/// The short local-variable name used for the proxy instance
/// (`loc`, `sms`, …).
pub(crate) fn instance_name(dialog: &ConfigurationDialog) -> String {
    let lower = dialog.proxy.to_lowercase();
    match lower.as_str() {
        "location" => "loc".to_owned(),
        other => other.chars().take(4).collect(),
    }
}

/// The constructor/class name derived from the binding plane's
/// implementation module (`com.ibm…LocationProxyImpl` →
/// `LocationProxyImpl`, `js/proxies/LocationProxyImpl.js` →
/// `LocationProxyImpl`).
pub(crate) fn class_name(dialog: &ConfigurationDialog) -> String {
    let tail = dialog
        .implementation_class
        .rsplit(['.', '/'])
        .find(|seg| !seg.is_empty() && *seg != "js")
        .unwrap_or(&dialog.implementation_class);
    tail.to_owned()
}

/// Renders a variable or property value as a literal of the given
/// declared type. Object-typed values (the Android `context`, callback
/// parameters) render bare; strings are quoted; numerics pass through.
pub(crate) fn render_literal(type_name: &str, value: &str) -> String {
    let is_stringy = matches!(type_name, "java.lang.String" | "string" | "String");
    if is_stringy {
        format!("\"{value}\"")
    } else {
        value.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_proxydl::{catalog, PlatformId};

    #[test]
    fn class_name_strips_packages_and_extensions() {
        let dialog = crate::dialog::ConfigurationDialog::for_api(
            &catalog::location(),
            PlatformId::Android,
            "getLocation",
        )
        .unwrap();
        assert_eq!(class_name(&dialog), "LocationProxyImpl");
        let js = crate::dialog::ConfigurationDialog::for_api(
            &catalog::location(),
            PlatformId::AndroidWebView,
            "getLocation",
        )
        .unwrap();
        assert_eq!(
            class_name(&js),
            "LocationProxyImpl.js".trim_end_matches(".js")
        );
    }

    #[test]
    fn instance_names_are_short() {
        let dialog = crate::dialog::ConfigurationDialog::for_api(
            &catalog::location(),
            PlatformId::Android,
            "getLocation",
        )
        .unwrap();
        assert_eq!(instance_name(&dialog), "loc");
    }

    #[test]
    fn literals_quote_strings_only() {
        assert_eq!(render_literal("java.lang.String", "gps"), "\"gps\"");
        assert_eq!(render_literal("string", "gps"), "\"gps\"");
        assert_eq!(render_literal("double", "28.5"), "28.5");
        assert_eq!(render_literal("object", "this"), "this");
    }
}
