//! Java snippet generation — the style of the paper's Fig. 8.

use crate::codegen::{class_name, instance_name, render_literal};
use crate::dialog::ConfigurationDialog;

/// Generates the Java snippet for a completed dialog.
pub fn generate(dialog: &ConfigurationDialog) -> String {
    let class = class_name(dialog);
    let var = instance_name(dialog);
    let mut out = String::new();
    out.push_str("try {\n");
    out.push_str(&format!("    {class} {var} = new {class}();\n"));
    for property in dialog.properties() {
        if let Some(value) = property.effective_value() {
            out.push_str(&format!(
                "    {var}.setProperty(\"{}\", {});\n",
                property.name,
                render_literal(&property.type_name, value)
            ));
        }
    }
    let args: Vec<String> = dialog
        .variables()
        .iter()
        .map(|v| render_literal(&v.type_name, v.value.as_deref().unwrap_or("/* unset */")))
        .collect();
    out.push_str(&format!("    {var}.{}({});\n", dialog.api, args.join(", ")));
    out.push_str("} catch (Exception e) {\n");
    out.push_str(&format!(
        "    // Handle {} specific exceptions:\n",
        dialog.platform.id()
    ));
    for exception in &dialog.exceptions {
        out.push_str(&format!("    //   {exception}\n"));
    }
    out.push_str("}\n");
    if let Some((type_name, method)) = &dialog.callback {
        out.push_str(&format!(
            "\n// Implement {type_name} on the enclosing class:\n"
        ));
        out.push_str(&format!(
            "public void {method}(double refLatitude, double refLongitude, double refAltitude,\n        Location currentLocation, boolean entering) {{\n    /* business logic for handling proximity events */\n}}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialog::ConfigurationDialog;
    use mobivine_proxydl::{catalog, PlatformId};

    fn configured_s60_dialog() -> ConfigurationDialog {
        let mut dialog = ConfigurationDialog::for_api(
            &catalog::location(),
            PlatformId::NokiaS60,
            "addProximityAlert",
        )
        .unwrap();
        for (name, value) in [
            ("latitude", "28.5355"),
            ("longitude", "77.3910"),
            ("altitude", "0"),
            ("radius", "100"),
            ("timer", "-1"),
            ("proximityListener", "this"),
        ] {
            dialog.set_variable(name, value).unwrap();
        }
        dialog.set_property("powerConsumption", "Low").unwrap();
        dialog
    }

    #[test]
    fn golden_s60_proximity_snippet() {
        let source = generate(&configured_s60_dialog());
        let expected = "try {\n    LocationProxy loc = new LocationProxy();\n    loc.setProperty(\"preferredResponseTime\", -1);\n    loc.setProperty(\"powerConsumption\", \"Low\");\n    loc.setProperty(\"verticalAccuracy\", 50);\n    loc.addProximityAlert(28.5355, 77.3910, 0, 100, -1, this);\n} catch (Exception e) {\n    // Handle s60 specific exceptions:\n    //   javax.microedition.location.LocationException\n    //   java.lang.SecurityException\n    //   java.lang.IllegalArgumentException\n    //   java.lang.NullPointerException\n}\n\n// Implement com.ibm.telecom.proxy.ProximityListener on the enclosing class:\npublic void proximityEvent(double refLatitude, double refLongitude, double refAltitude,\n        Location currentLocation, boolean entering) {\n    /* business logic for handling proximity events */\n}\n";
        assert_eq!(source, expected);
    }

    #[test]
    fn android_snippet_includes_context_property() {
        let mut dialog =
            ConfigurationDialog::for_api(&catalog::location(), PlatformId::Android, "getLocation")
                .unwrap();
        dialog.set_property("context", "this").unwrap();
        dialog.set_property("provider", "gps").unwrap();
        let source = generate(&dialog);
        assert!(source.contains("loc.setProperty(\"context\", this);"));
        assert!(source.contains("loc.setProperty(\"provider\", \"gps\");"));
        assert!(source.contains("loc.getLocation();"));
        assert!(source.contains("// Handle android specific exceptions:"));
        assert!(!source.contains("Implement"), "getLocation has no callback");
    }

    #[test]
    fn dialog_source_preview_dispatches_to_java() {
        let dialog = configured_s60_dialog();
        assert_eq!(dialog.source_preview().unwrap(), generate(&dialog));
    }
}
