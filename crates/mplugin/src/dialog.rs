//! The Proxy Configuration dialog (paper Fig. 7(b)).
//!
//! "While parameters of the common proxy interface are presented under
//! the Variables column, S60 platform specific Properties are presented
//! under the Properties column. Associated default value, allowed
//! values and description is also provided for each parameter and
//! property."

use std::fmt;

use mobivine_proxydl::{Language, PlatformId, ProxyDescriptor};

/// A common-interface parameter row (the *Variables* column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariableField {
    /// Parameter name from the semantic plane.
    pub name: String,
    /// Concrete type from the syntactic plane for the platform's
    /// language.
    pub type_name: String,
    /// Human description from the semantic plane.
    pub description: String,
    /// Allowed values (empty = unconstrained).
    pub allowed_values: Vec<String>,
    /// The user-entered value, if any.
    pub value: Option<String>,
}

/// A platform-specific property row (the *Properties* column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyField {
    /// Property key from the binding plane.
    pub name: String,
    /// Data type.
    pub type_name: String,
    /// Human description.
    pub description: String,
    /// Declared default.
    pub default_value: Option<String>,
    /// Allowed values (empty = unconstrained).
    pub allowed_values: Vec<String>,
    /// The user-entered value, if any (falls back to the default).
    pub value: Option<String>,
}

impl PropertyField {
    /// The value code generation will use: explicit, else default.
    pub fn effective_value(&self) -> Option<&str> {
        self.value.as_deref().or(self.default_value.as_deref())
    }
}

/// Errors raised while configuring a dialog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DialogError {
    /// The descriptor has no such API.
    UnknownApi(String),
    /// The descriptor has no binding for the platform.
    UnsupportedPlatform(String),
    /// Set of a variable/property the dialog does not show.
    UnknownField(String),
    /// A value outside the field's allowed set.
    DisallowedValue {
        /// The field being set.
        field: String,
        /// The rejected value.
        value: String,
    },
    /// Code generation requested with unset variables.
    Incomplete {
        /// Variables still without values.
        missing: Vec<String>,
    },
}

impl fmt::Display for DialogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DialogError::UnknownApi(a) => write!(f, "unknown api {a}"),
            DialogError::UnsupportedPlatform(p) => {
                write!(f, "proxy has no binding for platform {p}")
            }
            DialogError::UnknownField(n) => write!(f, "dialog has no field {n}"),
            DialogError::DisallowedValue { field, value } => {
                write!(f, "value '{value}' not allowed for {field}")
            }
            DialogError::Incomplete { missing } => {
                write!(f, "variables not set: {}", missing.join(", "))
            }
        }
    }
}

impl std::error::Error for DialogError {}

/// The configuration dialog for one (proxy, API, platform) triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurationDialog {
    /// The proxy name.
    pub proxy: String,
    /// The API being configured.
    pub api: String,
    /// Target platform.
    pub platform: PlatformId,
    /// Language of the generated snippet.
    pub language: Language,
    /// Implementation module from the binding plane (drives the
    /// constructor name in generated code).
    pub implementation_class: String,
    /// The platform's exception set (rendered into the catch comment).
    pub exceptions: Vec<String>,
    /// Callback binding for this API, if any:
    /// `(type name, callback method)`.
    pub callback: Option<(String, String)>,
    variables: Vec<VariableField>,
    properties: Vec<PropertyField>,
}

impl ConfigurationDialog {
    /// Builds the dialog from a descriptor: variables from the
    /// semantic+syntactic planes, properties from the binding plane.
    ///
    /// # Errors
    ///
    /// [`DialogError::UnknownApi`] or
    /// [`DialogError::UnsupportedPlatform`].
    pub fn for_api(
        descriptor: &ProxyDescriptor,
        platform: PlatformId,
        api: &str,
    ) -> Result<Self, DialogError> {
        let method = descriptor
            .semantic
            .find_method(api)
            .ok_or_else(|| DialogError::UnknownApi(api.to_owned()))?;
        let binding = descriptor
            .binding_for(&platform)
            .ok_or_else(|| DialogError::UnsupportedPlatform(platform.id().to_owned()))?;
        let language = binding.language();
        let types = descriptor.syntax_for(language);
        let variables = method
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| VariableField {
                name: p.name.clone(),
                type_name: types
                    .and_then(|t| t.find_method(api))
                    .and_then(|m| m.param_types.get(i).cloned())
                    .unwrap_or_else(|| "unknown".to_owned()),
                description: p.meaning.clone(),
                allowed_values: p.allowed_values.clone(),
                value: None,
            })
            .collect();
        let properties = binding
            .properties
            .iter()
            .map(|p| PropertyField {
                name: p.name.clone(),
                type_name: p.data_type.clone(),
                description: p.description.clone(),
                default_value: p.default_value.clone(),
                allowed_values: p.allowed_values.clone(),
                value: None,
            })
            .collect();
        let callback = types
            .and_then(|t| t.find_method(api))
            .and_then(|m| m.callback.as_ref())
            .map(|cb| (cb.type_name.clone(), cb.method.clone()));
        Ok(Self {
            proxy: descriptor.name.clone(),
            api: api.to_owned(),
            platform,
            language,
            implementation_class: binding.implementation_class.clone(),
            exceptions: binding.exceptions.clone(),
            callback,
            variables,
            properties,
        })
    }

    /// The Variables column.
    pub fn variables(&self) -> &[VariableField] {
        &self.variables
    }

    /// The Properties column.
    pub fn properties(&self) -> &[PropertyField] {
        &self.properties
    }

    /// Sets a variable value.
    ///
    /// # Errors
    ///
    /// [`DialogError::UnknownField`] or [`DialogError::DisallowedValue`].
    pub fn set_variable(&mut self, name: &str, value: &str) -> Result<(), DialogError> {
        let field = self
            .variables
            .iter_mut()
            .find(|v| v.name == name)
            .ok_or_else(|| DialogError::UnknownField(name.to_owned()))?;
        if !field.allowed_values.is_empty() && !field.allowed_values.iter().any(|a| a == value) {
            return Err(DialogError::DisallowedValue {
                field: name.to_owned(),
                value: value.to_owned(),
            });
        }
        field.value = Some(value.to_owned());
        Ok(())
    }

    /// Sets a property value.
    ///
    /// # Errors
    ///
    /// [`DialogError::UnknownField`] or [`DialogError::DisallowedValue`].
    pub fn set_property(&mut self, name: &str, value: &str) -> Result<(), DialogError> {
        let field = self
            .properties
            .iter_mut()
            .find(|p| p.name == name)
            .ok_or_else(|| DialogError::UnknownField(name.to_owned()))?;
        if !field.allowed_values.is_empty() && !field.allowed_values.iter().any(|a| a == value) {
            return Err(DialogError::DisallowedValue {
                field: name.to_owned(),
                value: value.to_owned(),
            });
        }
        field.value = Some(value.to_owned());
        Ok(())
    }

    /// Variables still missing values.
    pub fn missing_variables(&self) -> Vec<String> {
        self.variables
            .iter()
            .filter(|v| v.value.is_none())
            .map(|v| v.name.clone())
            .collect()
    }

    /// Whether every variable has a value (properties may rely on
    /// defaults).
    pub fn is_complete(&self) -> bool {
        self.missing_variables().is_empty()
    }

    /// The *Source* view: the generated code preview for the current
    /// configuration (paper Fig. 7(b), Source tab).
    ///
    /// # Errors
    ///
    /// [`DialogError::Incomplete`] when variables are unset.
    pub fn source_preview(&self) -> Result<String, DialogError> {
        if !self.is_complete() {
            return Err(DialogError::Incomplete {
                missing: self.missing_variables(),
            });
        }
        Ok(match self.language {
            Language::Java => crate::codegen::java::generate(self),
            Language::JavaScript => crate::codegen::javascript::generate(self),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_proxydl::catalog;

    fn s60_proximity_dialog() -> ConfigurationDialog {
        ConfigurationDialog::for_api(
            &catalog::location(),
            PlatformId::NokiaS60,
            "addProximityAlert",
        )
        .unwrap()
    }

    #[test]
    fn variables_from_semantic_types_from_syntactic() {
        let dialog = s60_proximity_dialog();
        let names: Vec<&str> = dialog.variables().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "latitude",
                "longitude",
                "altitude",
                "radius",
                "timer",
                "proximityListener"
            ]
        );
        assert_eq!(dialog.variables()[0].type_name, "double");
        assert_eq!(dialog.variables()[3].type_name, "float");
        assert_eq!(dialog.language, Language::Java);
    }

    #[test]
    fn properties_from_binding_plane_with_defaults() {
        let dialog = s60_proximity_dialog();
        let power = dialog
            .properties()
            .iter()
            .find(|p| p.name == "powerConsumption")
            .unwrap();
        assert_eq!(power.default_value.as_deref(), Some("NoRequirement"));
        assert_eq!(power.allowed_values.len(), 4);
        assert_eq!(power.effective_value(), Some("NoRequirement"));
    }

    #[test]
    fn allowed_values_enforced() {
        let mut dialog = s60_proximity_dialog();
        assert!(dialog.set_property("powerConsumption", "Low").is_ok());
        assert!(matches!(
            dialog.set_property("powerConsumption", "Turbo"),
            Err(DialogError::DisallowedValue { .. })
        ));
        assert!(matches!(
            dialog.set_property("ghost", "x"),
            Err(DialogError::UnknownField(_))
        ));
    }

    #[test]
    fn completeness_tracking() {
        let mut dialog = s60_proximity_dialog();
        assert!(!dialog.is_complete());
        assert_eq!(dialog.missing_variables().len(), 6);
        for (name, value) in [
            ("latitude", "28.5355"),
            ("longitude", "77.3910"),
            ("altitude", "0"),
            ("radius", "100"),
            ("timer", "-1"),
            ("proximityListener", "this"),
        ] {
            dialog.set_variable(name, value).unwrap();
        }
        assert!(dialog.is_complete());
    }

    #[test]
    fn source_preview_requires_completeness() {
        let dialog = s60_proximity_dialog();
        assert!(matches!(
            dialog.source_preview(),
            Err(DialogError::Incomplete { .. })
        ));
    }

    #[test]
    fn unsupported_platform_and_api_rejected() {
        assert!(matches!(
            ConfigurationDialog::for_api(&catalog::call(), PlatformId::NokiaS60, "makeACall"),
            Err(DialogError::UnsupportedPlatform(_))
        ));
        assert!(matches!(
            ConfigurationDialog::for_api(&catalog::location(), PlatformId::Android, "fly"),
            Err(DialogError::UnknownApi(_))
        ));
    }

    #[test]
    fn webview_dialog_uses_javascript_types() {
        let dialog = ConfigurationDialog::for_api(
            &catalog::location(),
            PlatformId::AndroidWebView,
            "addProximityAlert",
        )
        .unwrap();
        assert_eq!(dialog.language, Language::JavaScript);
        assert_eq!(dialog.variables()[0].type_name, "number");
        assert_eq!(dialog.variables()[5].type_name, "function");
    }
}
