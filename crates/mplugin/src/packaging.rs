//! Platform-specific extensions (M-Proxy embedding, §3.2 feature 4 and
//! §4.2 "Platform Specific Extensions").
//!
//! - **S60**: "functionality is also provided to merge jars of all
//!   chosen proxies with the application jar before deployment, since
//!   the platform requires the application to be bundled as a single
//!   J2ME MIDlet jar" — [`S60Extension`].
//! - **Android**: "these extensions deal with absorbing the proxy
//!   implementation jars in the resource structure - including
//!   classpath - of the corresponding projects" — [`AndroidExtension`].
//! - **WebView**: "extensions are provided for incorporating JavaScript
//!   proxy implementations within a WebView project, as well as for
//!   injecting the associated Java 'Wrapper' objects through the
//!   `addJavaScriptInterface()` calls" — [`WebViewExtension`].

use std::collections::BTreeSet;

use mobivine_s60::packaging::{JadDescriptor, Jar, MidletSuite, PackagingError};

/// Which proxy interfaces an application selected in the toolkit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxySelection {
    /// The chosen proxy names (`Location`, `SMS`, …).
    pub proxies: Vec<String>,
}

impl ProxySelection {
    /// Builds a selection from proxy names.
    pub fn new(proxies: &[&str]) -> Self {
        Self {
            proxies: proxies.iter().map(|p| (*p).to_owned()).collect(),
        }
    }
}

/// The S60 platform-specific extension.
#[derive(Debug)]
pub struct S60Extension;

impl S60Extension {
    /// Produces the implementation jar for one proxy (the proxy
    /// drawer's "associated implementation modules").
    ///
    /// # Errors
    ///
    /// Propagates [`PackagingError`] if a generated entry name
    /// conflicts — e.g. a proxy name that lowercases onto another
    /// proxy's package path.
    pub fn proxy_jar(proxy: &str) -> Result<Jar, PackagingError> {
        let mut jar = Jar::new(&format!("{}-proxy.jar", proxy.to_lowercase()));
        let class = format!("com/ibm/S60/{}/{}Proxy.class", proxy.to_lowercase(), proxy);
        jar.add_entry(&class, format!("{proxy} proxy bytecode").into_bytes())?;
        jar.add_entry(
            &format!("com/ibm/telecom/proxy/{proxy}Types.class"),
            b"common types".to_vec(),
        )?;
        Ok(jar)
    }

    /// Merges the selected proxies' jars into the application jar and
    /// re-derives the descriptor, returning a deployable single-jar
    /// MIDlet suite.
    ///
    /// # Errors
    ///
    /// Propagates [`PackagingError`] on entry conflicts or descriptor
    /// problems.
    pub fn package(
        app_jar: Jar,
        jad: JadDescriptor,
        selection: &ProxySelection,
    ) -> Result<MidletSuite, PackagingError> {
        let mut merged = app_jar;
        for proxy in &selection.proxies {
            merged.merge(&Self::proxy_jar(proxy)?)?;
        }
        let mut jad = jad;
        jad.jar_size = merged.byte_size();
        let suite = MidletSuite { jar: merged, jad };
        suite.validate()?;
        Ok(suite)
    }
}

/// A minimal Android project model (resource structure + classpath).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AndroidProject {
    /// Project name.
    pub name: String,
    /// Classpath entries.
    pub classpath: Vec<String>,
    /// Bundled libraries under `libs/`.
    pub libs: BTreeSet<String>,
}

/// The Android platform-specific extension.
#[derive(Debug)]
pub struct AndroidExtension;

impl AndroidExtension {
    /// Absorbs the selected proxies' implementation jars into the
    /// project's resource structure and classpath. Idempotent.
    pub fn integrate(project: &mut AndroidProject, selection: &ProxySelection) {
        for proxy in &selection.proxies {
            let lib = format!("libs/{}-proxy.jar", proxy.to_lowercase());
            if project.libs.insert(lib.clone()) {
                project.classpath.push(lib);
            }
        }
    }
}

/// A minimal WebView project model: HTML pages plus bundled scripts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WebViewProject {
    /// Project name.
    pub name: String,
    /// Bundled JavaScript files.
    pub scripts: BTreeSet<String>,
    /// `addJavaScriptInterface` injection statements the host activity
    /// must execute.
    pub injections: Vec<String>,
}

/// The WebView platform-specific extension.
#[derive(Debug)]
pub struct WebViewExtension;

impl WebViewExtension {
    /// Incorporates the JavaScript proxy implementations and the
    /// wrapper-injection calls into the project. Idempotent.
    pub fn integrate(project: &mut WebViewProject, selection: &ProxySelection) {
        for proxy in &selection.proxies {
            let script = format!("js/proxies/{proxy}ProxyImpl.js");
            if project.scripts.insert(script) {
                project.injections.push(format!(
                    "webView.addJavascriptInterface(new {proxy}Wrapper(), \"{proxy}Wrapper\");"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app_jar() -> Jar {
        let mut jar = Jar::new("wfm.jar");
        jar.add_entry("com/acme/WorkForceManagement.class", b"app".to_vec())
            .unwrap();
        jar
    }

    #[test]
    fn s60_merges_selected_proxies_into_single_jar() {
        let jar = app_jar();
        let jad = JadDescriptor::for_jar(&jar, "WorkForce", "ACME", "1.0");
        let suite =
            S60Extension::package(jar, jad, &ProxySelection::new(&["Location", "SMS", "Http"]))
                .unwrap();
        assert!(suite
            .jar
            .contains("com/ibm/S60/location/LocationProxy.class"));
        assert!(suite.jar.contains("com/ibm/S60/sms/SMSProxy.class"));
        assert!(suite.jar.contains("com/acme/WorkForceManagement.class"));
        // The descriptor size was re-derived after the merge.
        suite.validate().unwrap();
        assert_eq!(suite.jad.jar_size, suite.jar.byte_size());
    }

    #[test]
    fn s60_shared_type_entries_merge_idempotently() {
        // Both Location and SMS proxies carry common-type classes; the
        // overlapping entries must merge without conflict... they have
        // distinct names here, so simulate a duplicate selection.
        let jar = app_jar();
        let jad = JadDescriptor::for_jar(&jar, "W", "V", "1.0");
        let suite =
            S60Extension::package(jar, jad, &ProxySelection::new(&["Location", "Location"]))
                .unwrap();
        assert!(suite
            .jar
            .contains("com/ibm/S60/location/LocationProxy.class"));
    }

    #[test]
    fn android_classpath_integration_is_idempotent() {
        let mut project = AndroidProject {
            name: "wfm".into(),
            ..AndroidProject::default()
        };
        let selection = ProxySelection::new(&["Location", "SMS"]);
        AndroidExtension::integrate(&mut project, &selection);
        AndroidExtension::integrate(&mut project, &selection);
        assert_eq!(project.classpath.len(), 2);
        assert!(project.libs.contains("libs/location-proxy.jar"));
        assert!(project.libs.contains("libs/sms-proxy.jar"));
    }

    #[test]
    fn webview_injects_scripts_and_wrappers() {
        let mut project = WebViewProject {
            name: "wfm-web".into(),
            ..WebViewProject::default()
        };
        WebViewExtension::integrate(&mut project, &ProxySelection::new(&["SMS", "Location"]));
        assert!(project.scripts.contains("js/proxies/SMSProxyImpl.js"));
        assert_eq!(project.injections.len(), 2);
        assert!(project.injections[0].contains("addJavascriptInterface"));
        // Idempotent.
        WebViewExtension::integrate(&mut project, &ProxySelection::new(&["SMS"]));
        assert_eq!(project.injections.len(), 2);
    }
}
