//! The Proxy Drawer (paper Fig. 7(a)).
//!
//! "The Proxy Drawer is a store of proxies … Proxies are organized in
//! the drawer as categories, whereby each proxy is shown as a category
//! with the APIs of the proxy presented as items."

use std::fmt;

use mobivine_proxydl::{PlatformId, ProxyDescriptor};

/// One drag-and-droppable item: a single proxy API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrawerItem {
    /// The owning proxy (category) name.
    pub proxy: String,
    /// The API (semantic method) name.
    pub api: String,
    /// Display label.
    pub label: String,
}

/// One drawer category: a proxy with its API items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrawerCategory {
    /// The proxy name.
    pub proxy: String,
    /// The drawer grouping the descriptor declares (e.g. `Telecom`).
    pub group: String,
    /// The proxy's APIs.
    pub items: Vec<DrawerItem>,
}

/// The drawer for one platform's toolkit.
#[derive(Clone, PartialEq, Eq)]
pub struct ProxyDrawer {
    platform: PlatformId,
    categories: Vec<DrawerCategory>,
}

impl fmt::Debug for ProxyDrawer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyDrawer")
            .field("platform", &self.platform.id().to_owned())
            .field("categories", &self.categories.len())
            .finish()
    }
}

impl ProxyDrawer {
    /// Builds the drawer for `platform` from a descriptor catalog —
    /// only proxies with a binding for the platform are *visible*
    /// (M-Proxy visibility, §3.2 feature 1).
    pub fn from_catalog(catalog: &[ProxyDescriptor], platform: PlatformId) -> Self {
        let categories = catalog
            .iter()
            .filter(|d| d.binding_for(&platform).is_some())
            .map(|d| DrawerCategory {
                proxy: d.name.clone(),
                group: d.category.clone(),
                items: d
                    .semantic
                    .methods
                    .iter()
                    .map(|m| DrawerItem {
                        proxy: d.name.clone(),
                        api: m.name.clone(),
                        label: format!("{} :: {}", d.name, m.name),
                    })
                    .collect(),
            })
            .collect();
        Self {
            platform,
            categories,
        }
    }

    /// The platform this drawer serves.
    pub fn platform(&self) -> &PlatformId {
        &self.platform
    }

    /// The visible categories, in catalog order.
    pub fn categories(&self) -> &[DrawerCategory] {
        &self.categories
    }

    /// Looks a category up by proxy name.
    pub fn category(&self, proxy: &str) -> Option<&DrawerCategory> {
        self.categories.iter().find(|c| c.proxy == proxy)
    }

    /// Looks an item up by proxy and API name (what a double-click or
    /// drag-and-drop resolves to).
    pub fn find_item(&self, proxy: &str, api: &str) -> Option<&DrawerItem> {
        self.category(proxy)
            .and_then(|c| c.items.iter().find(|i| i.api == api))
    }

    /// Total number of droppable items.
    pub fn item_count(&self) -> usize {
        self.categories.iter().map(|c| c.items.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_proxydl::catalog::standard_catalog;

    #[test]
    fn s60_drawer_hides_call() {
        let drawer = ProxyDrawer::from_catalog(&standard_catalog(), PlatformId::NokiaS60);
        assert!(drawer.category("Location").is_some());
        assert!(drawer.category("SMS").is_some());
        assert!(drawer.category("Http").is_some());
        assert!(drawer.category("Call").is_none(), "no Call binding on S60");
    }

    #[test]
    fn android_drawer_shows_everything() {
        let drawer = ProxyDrawer::from_catalog(&standard_catalog(), PlatformId::Android);
        assert_eq!(drawer.categories().len(), 6);
    }

    #[test]
    fn items_are_the_semantic_methods() {
        let drawer = ProxyDrawer::from_catalog(&standard_catalog(), PlatformId::Android);
        let location = drawer.category("Location").unwrap();
        let apis: Vec<&str> = location.items.iter().map(|i| i.api.as_str()).collect();
        assert_eq!(
            apis,
            vec!["addProximityAlert", "getLocation", "removeProximityAlert"]
        );
        assert_eq!(location.group, "Telecom");
    }

    #[test]
    fn find_item_resolves_drag_targets() {
        let drawer = ProxyDrawer::from_catalog(&standard_catalog(), PlatformId::AndroidWebView);
        let item = drawer.find_item("SMS", "sendTextMessage").unwrap();
        assert_eq!(item.label, "SMS :: sendTextMessage");
        assert!(drawer.find_item("SMS", "teleport").is_none());
        assert!(drawer.find_item("Ghost", "x").is_none());
    }

    #[test]
    fn item_count_matches_platform_coverage() {
        let android = ProxyDrawer::from_catalog(&standard_catalog(), PlatformId::Android);
        let s60 = ProxyDrawer::from_catalog(&standard_catalog(), PlatformId::NokiaS60);
        assert!(android.item_count() > s60.item_count());
    }
}
