//! A minimal editor-buffer model for snippet insertion.
//!
//! "Through the drawer, any proxy API can be added to the code either
//! by dragging and dropping the corresponding item to the desired
//! location, or by double clicking the item to insert at the current
//! cursor location." (paper §4.2, Proxy Drawer) This module models the
//! target of that interaction: a text buffer with a cursor, into which
//! the configured snippet is embedded.

use std::fmt;

/// A text buffer with a byte-offset cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditorBuffer {
    text: String,
    cursor: usize,
}

/// Errors from buffer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditorError {
    /// An offset beyond the buffer or not on a character boundary.
    BadOffset(usize),
}

impl fmt::Display for EditorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditorError::BadOffset(o) => write!(f, "offset {o} is not a valid insertion point"),
        }
    }
}

impl std::error::Error for EditorError {}

impl EditorBuffer {
    /// Opens a buffer with the cursor at the start.
    pub fn new(text: &str) -> Self {
        Self {
            text: text.to_owned(),
            cursor: 0,
        }
    }

    /// The buffer contents.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The cursor position (byte offset).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Moves the cursor.
    ///
    /// # Errors
    ///
    /// [`EditorError::BadOffset`] if `offset` is out of bounds or not a
    /// character boundary.
    pub fn set_cursor(&mut self, offset: usize) -> Result<(), EditorError> {
        if offset > self.text.len() || !self.text.is_char_boundary(offset) {
            return Err(EditorError::BadOffset(offset));
        }
        self.cursor = offset;
        Ok(())
    }

    /// Places the cursor just after the first occurrence of `marker` —
    /// how a developer positions for insertion inside a method body.
    ///
    /// # Errors
    ///
    /// [`EditorError::BadOffset`] if the marker is absent.
    pub fn cursor_after(&mut self, marker: &str) -> Result<(), EditorError> {
        match self.text.find(marker) {
            Some(i) => {
                self.cursor = i + marker.len();
                Ok(())
            }
            None => Err(EditorError::BadOffset(usize::MAX)),
        }
    }

    /// Double-click insertion: embeds `snippet` at the cursor, leaving
    /// the cursor after the inserted text.
    pub fn insert_at_cursor(&mut self, snippet: &str) {
        self.text.insert_str(self.cursor, snippet);
        self.cursor += snippet.len();
    }

    /// Drag-and-drop insertion: embeds `snippet` at `offset`.
    ///
    /// # Errors
    ///
    /// [`EditorError::BadOffset`] for invalid drop targets.
    pub fn insert_at(&mut self, offset: usize, snippet: &str) -> Result<(), EditorError> {
        if offset > self.text.len() || !self.text.is_char_boundary(offset) {
            return Err(EditorError::BadOffset(offset));
        }
        self.text.insert_str(offset, snippet);
        if self.cursor >= offset {
            self.cursor += snippet.len();
        }
        Ok(())
    }

    /// Number of lines in the buffer.
    pub fn line_count(&self) -> usize {
        self.text.lines().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialog::ConfigurationDialog;
    use mobivine_proxydl::{catalog, PlatformId};

    const APP_SKELETON: &str = "public class WorkForceManagement extends Activity {\n    public void onCreate() {\n        // INSERT HERE\n    }\n}\n";

    #[test]
    fn double_click_inserts_at_cursor() {
        let mut buffer = EditorBuffer::new(APP_SKELETON);
        buffer.cursor_after("// INSERT HERE").unwrap();
        buffer.insert_at_cursor("\n        int x = 1;");
        assert!(buffer.text().contains("// INSERT HERE\n        int x = 1;"));
    }

    #[test]
    fn drag_drop_inserts_at_offset_and_tracks_cursor() {
        let mut buffer = EditorBuffer::new("abcdef");
        buffer.set_cursor(4).unwrap();
        buffer.insert_at(2, "XY").unwrap();
        assert_eq!(buffer.text(), "abXYcdef");
        // Cursor shifted with the insertion before it.
        assert_eq!(buffer.cursor(), 6);
        // Insertion after the cursor leaves it alone.
        buffer.insert_at(7, "Z").unwrap();
        assert_eq!(buffer.cursor(), 6);
    }

    #[test]
    fn invalid_targets_rejected() {
        let mut buffer = EditorBuffer::new("héllo");
        assert!(buffer.set_cursor(100).is_err());
        assert!(buffer.set_cursor(2).is_err(), "inside a multi-byte char");
        assert!(buffer.insert_at(100, "x").is_err());
        assert!(buffer.cursor_after("missing").is_err());
    }

    #[test]
    fn full_drawer_to_editor_flow() {
        // The §4.2 interaction: pick an item, configure it, drop the
        // generated snippet into the open editor.
        let catalog = catalog::standard_catalog();
        let descriptor = catalog.iter().find(|d| d.name == "Location").unwrap();
        let mut dialog =
            ConfigurationDialog::for_api(descriptor, PlatformId::Android, "getLocation").unwrap();
        dialog.set_property("context", "this").unwrap();
        let snippet = dialog.source_preview().unwrap();

        let mut buffer = EditorBuffer::new(APP_SKELETON);
        buffer.cursor_after("// INSERT HERE").unwrap();
        buffer.insert_at_cursor(&format!("\n{snippet}"));
        assert!(buffer.text().contains("loc.getLocation();"));
        assert!(buffer
            .text()
            .starts_with("public class WorkForceManagement"));
        assert!(buffer.line_count() > 10);
    }
}
