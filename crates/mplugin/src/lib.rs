#![warn(missing_docs)]
//! M-Plugin: MobiVine's toolkit-integration layer.
//!
//! "The gap between M-Proxies and an existing toolkit is bridged by a
//! M(obiVine) Plugin" (paper §3.2). The paper implements its plug-ins on
//! Eclipse; this crate reproduces the plug-in's *model* — everything the
//! Eclipse UI renders and every transformation it performs — as a
//! library with golden-text tests:
//!
//! - [`drawer`] — the **Proxy Drawer** (Fig. 7(a)): proxies as
//!   categories, their APIs as items, filtered to the target platform
//!   (M-Proxy *visibility*);
//! - [`dialog`] — the **Proxy Configuration** dialog (Fig. 7(b)):
//!   common-interface *Variables* and platform-specific *Properties*
//!   with defaults, allowed values and descriptions (M-Proxy
//!   *presentation* and *configuration*);
//! - [`codegen`] — snippet generation with source preview, Java-style
//!   for Android/S60 and JavaScript-style for WebView, matching the
//!   paper's Figs. 8 and 9;
//! - [`packaging`] — the **platform-specific extensions** (M-Proxy
//!   *embedding*): merging proxy jars into the single S60 MIDlet-suite
//!   jar, classpath integration for Android projects, and JS-proxy
//!   injection with `addJavaScriptInterface` wiring for WebView
//!   projects;
//! - [`manifest`] — the `plugin.xml` contribution model the Snippet
//!   Contributor extension point consumes.

pub mod codegen;
pub mod dialog;
pub mod drawer;
pub mod editor;
pub mod manifest;
pub mod packaging;

pub use dialog::ConfigurationDialog;
pub use drawer::ProxyDrawer;
