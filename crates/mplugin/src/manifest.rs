//! The plug-in contribution manifest.
//!
//! "Contents of the drawer, i.e. proxies and APIs in the form of
//! categories and items respectively, are specified in `plugin.xml`
//! file of the plug-in" (§4.2). This module renders and parses that
//! contribution file, in the shape the Eclipse Snippet Contributor
//! extension point consumes.

use std::fmt;

use mobivine_proxydl::xml::{XmlError, XmlNode};
use mobivine_proxydl::PlatformId;

use crate::drawer::ProxyDrawer;

/// A parsed or rendered `plugin.xml` contribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluginManifest {
    /// Plug-in identifier, e.g. `com.ibm.mobivine.s60`.
    pub id: String,
    /// Target platform.
    pub platform: PlatformId,
    /// Contributed categories: `(proxy, apis)`.
    pub categories: Vec<(String, Vec<String>)>,
}

/// Error parsing a manifest document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The XML did not parse.
    Xml(XmlError),
    /// The XML parsed but is not a MobiVine plug-in manifest.
    Malformed(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Xml(e) => write!(f, "{e}"),
            ManifestError::Malformed(m) => write!(f, "malformed manifest: {m}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl PluginManifest {
    /// Derives the manifest from a drawer — the plug-in build step that
    /// turns the proxy store into `plugin.xml`.
    pub fn from_drawer(id: &str, drawer: &ProxyDrawer) -> Self {
        Self {
            id: id.to_owned(),
            platform: drawer.platform().clone(),
            categories: drawer
                .categories()
                .iter()
                .map(|c| {
                    (
                        c.proxy.clone(),
                        c.items.iter().map(|i| i.api.clone()).collect(),
                    )
                })
                .collect(),
        }
    }

    /// Renders the `plugin.xml` text.
    pub fn render(&self) -> String {
        let mut extension = XmlNode::new("extension").attr(
            "point",
            "org.eclipse.wst.common.snippets.SnippetContributions",
        );
        for (proxy, apis) in &self.categories {
            let mut category = XmlNode::new("category")
                .attr("id", &format!("{}.{}", self.id, proxy.to_lowercase()))
                .attr("label", proxy);
            for api in apis {
                category = category.child(
                    XmlNode::new("item")
                        .attr(
                            "id",
                            &format!("{}.{}.{}", self.id, proxy.to_lowercase(), api),
                        )
                        .attr("label", api),
                );
            }
            extension = extension.child(category);
        }
        XmlNode::new("plugin")
            .attr("id", &self.id)
            .attr("platform", self.platform.id())
            .child(extension)
            .render()
    }

    /// Parses a `plugin.xml` text.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] for XML or structural problems.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let root = XmlNode::parse(text).map_err(ManifestError::Xml)?;
        if root.name != "plugin" {
            return Err(ManifestError::Malformed(format!(
                "expected <plugin>, found <{}>",
                root.name
            )));
        }
        let id = root
            .attribute("id")
            .ok_or_else(|| ManifestError::Malformed("plugin missing id".into()))?
            .to_owned();
        let platform = PlatformId::from_id(
            root.attribute("platform")
                .ok_or_else(|| ManifestError::Malformed("plugin missing platform".into()))?,
        );
        let extension = root
            .find("extension")
            .ok_or_else(|| ManifestError::Malformed("plugin missing extension".into()))?;
        let categories = extension
            .find_all("category")
            .map(|c| {
                let label = c.attribute("label").unwrap_or_default().to_owned();
                let items = c
                    .find_all("item")
                    .map(|i| i.attribute("label").unwrap_or_default().to_owned())
                    .collect();
                (label, items)
            })
            .collect();
        Ok(Self {
            id,
            platform,
            categories,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobivine_proxydl::catalog::standard_catalog;

    fn manifest() -> PluginManifest {
        let drawer = ProxyDrawer::from_catalog(&standard_catalog(), PlatformId::NokiaS60);
        PluginManifest::from_drawer("com.ibm.mobivine.s60", &drawer)
    }

    #[test]
    fn derived_from_drawer_excludes_call_on_s60() {
        let m = manifest();
        assert!(m.categories.iter().any(|(p, _)| p == "Location"));
        assert!(!m.categories.iter().any(|(p, _)| p == "Call"));
    }

    #[test]
    fn render_parse_round_trip() {
        let m = manifest();
        let text = m.render();
        assert!(text.contains("SnippetContributions"));
        let back = PluginManifest::parse(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_rejects_non_manifests() {
        assert!(matches!(
            PluginManifest::parse("<other/>"),
            Err(ManifestError::Malformed(_))
        ));
        assert!(matches!(
            PluginManifest::parse("not xml"),
            Err(ManifestError::Xml(_))
        ));
        assert!(matches!(
            PluginManifest::parse("<plugin id=\"x\" platform=\"s60\"/>"),
            Err(ManifestError::Malformed(_))
        ));
    }

    #[test]
    fn item_ids_are_namespaced() {
        let text = manifest().render();
        assert!(text.contains("com.ibm.mobivine.s60.location.addProximityAlert"));
    }
}
