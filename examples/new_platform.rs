//! The extension demonstration (paper §3.3): absorbing a new platform
//! means publishing **only** a binding plane per proxy — the semantic
//! and syntactic planes, the proxy drawer, the configuration dialog,
//! the code generators and the plug-in manifest all apply unchanged.
//!
//! Run with: `cargo run --example new_platform`

use mobivine_repro::mplugin::dialog::ConfigurationDialog;
use mobivine_repro::mplugin::drawer::ProxyDrawer;
use mobivine_repro::mplugin::manifest::PluginManifest;
use mobivine_repro::proxydl::schema::validate_descriptor;
use mobivine_repro::proxydl::{catalog, PlatformBinding, PlatformId, PropertySpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iphone = PlatformId::Custom("iphone".to_owned());

    // 1. Publish an iPhone binding for the Location proxy.
    let mut location = catalog::location();
    println!(
        "Location proxy before: bindings for {:?}",
        location
            .platforms()
            .iter()
            .map(|p| p.id().to_owned())
            .collect::<Vec<_>>()
    );
    location.extend_platform(
        PlatformBinding::new(iphone.clone(), "com.ibm.proxies.iphone.LocationProxyImpl")
            .exception("NSInvalidArgumentException")
            .property(
                PropertySpec::new("desiredAccuracy", "string", "CLLocationAccuracy constant")
                    .default_value("best")
                    .allowed(&["best", "nearestTenMeters", "hundredMeters"]),
            ),
    )?;
    println!(
        "Location proxy after:  bindings for {:?}",
        location
            .platforms()
            .iter()
            .map(|p| p.id().to_owned())
            .collect::<Vec<_>>()
    );

    // 2. The five schemas still hold.
    let errors = validate_descriptor(&location);
    assert!(errors.is_empty(), "{errors:?}");
    println!("all five schemas validate the extended descriptor");

    // 3. The common plug-in machinery serves the new platform as-is.
    let catalog = vec![location, catalog::sms(), catalog::call(), catalog::http()];
    let drawer = ProxyDrawer::from_catalog(&catalog, iphone.clone());
    println!(
        "iphone proxy drawer: {:?}",
        drawer
            .categories()
            .iter()
            .map(|c| c.proxy.as_str())
            .collect::<Vec<_>>()
    );

    let descriptor = catalog.iter().find(|d| d.name == "Location").unwrap();
    let mut dialog = ConfigurationDialog::for_api(descriptor, iphone.clone(), "getLocation")?;
    dialog.set_property("desiredAccuracy", "hundredMeters")?;
    println!(
        "\ngenerated snippet for the new platform:\n{}",
        dialog.source_preview()?
    );

    let manifest = PluginManifest::from_drawer("com.ibm.mobivine.iphone", &drawer);
    println!("derived plugin.xml:\n{}", manifest.render());
    Ok(())
}
