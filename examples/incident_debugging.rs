//! Incident debugging with the flight recorder: from a struggling
//! runtime to a promoted trace, an exemplar-carrying histogram, and a
//! burning SLO — the loop the README's "Incident debugging" walkthrough
//! narrates.
//!
//! The runtime keeps only a small ring of recent spans (cheap, fixed
//! memory), but when a call ends interestingly — here: a blown batch
//! deadline and a GPS outage — the whole trace tree is promoted into a
//! bounded incident store. The Prometheus page then links the latency
//! histogram to the promoted trace via an OpenMetrics exemplar, and the
//! SLO engine reports which objective is burning.
//!
//! Run with: `cargo run --example incident_debugging`

use std::sync::Arc;

use mobivine_repro::android::{AndroidPlatform, SdkVersion};
use mobivine_repro::device::gps::GpsAvailability;
use mobivine_repro::device::{Device, GeoPoint};
use mobivine_repro::mobivine::overload::{with_deadline, Deadline};
use mobivine_repro::mobivine::registry::Mobivine;
use mobivine_repro::mobivine::LocationProxy;
use mobivine_repro::telemetry::slo::{links_from_incidents, slo_report_json};
use mobivine_repro::telemetry::{SloEngine, SloObjective, SloTarget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::builder()
        .msisdn("+91-98-AGENT-7")
        .position(GeoPoint::new(28.5355, 77.3910))
        .build();
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);

    // One availability objective over the call we are about to hurt.
    let engine = Arc::new(SloEngine::new(vec![SloObjective {
        name: "avail:Location.getLocation@android".to_owned(),
        proxy: "Location".to_owned(),
        method: "getLocation".to_owned(),
        platform: "android".to_owned(),
        target: SloTarget::Availability {
            target_ppm: 999_000,
        },
    }]));
    let runtime = Mobivine::for_android(platform.new_context())
        .with_telemetry()
        .with_slo(Arc::clone(&engine));
    let proxy = runtime.proxy::<dyn LocationProxy>()?;

    // Healthy traffic: nothing is promoted, the ring just recycles.
    for _ in 0..5 {
        proxy.get_location()?;
        device.clock().advance_ms(100);
    }

    // Incident 1: a batch deadline expires before the call runs.
    let deadline = Deadline::after(device.clock().now_ms(), 5);
    device.clock().advance_ms(50);
    let _ = with_deadline(deadline, || proxy.get_location());

    // Incident 2: a GPS outage fails the next calls outright.
    device
        .gps()
        .set_availability(GpsAvailability::TemporarilyUnavailable);
    for _ in 0..3 {
        let _ = proxy.get_location();
        device.clock().advance_ms(100);
    }

    // The incident store now explains both: whole trace trees, each
    // tagged with why it was promoted.
    let store = runtime.incidents().expect("recorder is on by default");
    println!(
        "promoted {} traces ({} evicted spans never mattered):",
        store.len(),
        runtime.tracer().expect("telemetry on").evicted_spans()
    );
    for trace in store.traces() {
        println!(
            "  trace {:016x}: {} spans, root {:?}, promoted for {:?}",
            trace.trace_id.0,
            trace.spans.len(),
            trace.root_name,
            trace.reason,
        );
    }

    // The Prometheus page carries the evidence outward: bucket lines
    // with `# {trace_id="…"}` exemplars, plus the recorder counters.
    let page = runtime
        .telemetry_metrics()
        .expect("telemetry on")
        .render_prometheus();
    for line in page.lines().filter(|l| l.contains("trace_id=")) {
        println!("exemplar: {line}");
    }
    for line in page
        .lines()
        .filter(|l| l.starts_with("telemetry_") && !l.starts_with('#'))
    {
        println!("counter:  {line}");
    }

    // And the SLO report names the burning objective, linking back to
    // the promoted traces.
    let report = engine.report(device.clock().now_ms());
    let links = links_from_incidents(std::slice::from_ref(store));
    println!("slo: {}", slo_report_json(&report, &links));
    Ok(())
}
