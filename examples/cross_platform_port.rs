//! The portability demonstration (paper §5 Q1): the identical proxy
//! application source runs on all three platforms and produces the
//! identical event log — porting is a one-line change.
//!
//! Run with: `cargo run --example cross_platform_port`

use std::sync::Arc;

use mobivine_repro::android::{AndroidPlatform, SdkVersion};
use mobivine_repro::apps::logic::AppEvents;
use mobivine_repro::apps::metrics::{analyze, similarity, variant_sources};
use mobivine_repro::apps::proxy_app::ProxyWorkforceApp;
use mobivine_repro::apps::scenario::Scenario;
use mobivine_repro::mobivine::registry::Mobivine;
use mobivine_repro::s60::S60Platform;
use mobivine_repro::webview::WebView;

fn run_on(make: impl FnOnce(&Scenario) -> Mobivine) -> Vec<String> {
    let scenario = Scenario::two_site_patrol(11);
    let runtime = make(&scenario);
    let events = AppEvents::new();
    let mut app =
        ProxyWorkforceApp::new(runtime, scenario.config.clone(), Arc::clone(&events)).unwrap();
    app.start().unwrap();
    scenario.device.advance_ms(scenario.patrol_duration_ms());
    events.snapshot()
}

fn main() {
    let android_log = run_on(|s| {
        let p = AndroidPlatform::new(s.device.clone(), SdkVersion::M5Rc15);
        Mobivine::for_android(p.new_context())
    });
    let s60_log = run_on(|s| Mobivine::for_s60(S60Platform::new(s.device.clone())));
    let webview_log = run_on(|s| {
        let p = AndroidPlatform::new(s.device.clone(), SdkVersion::M5Rc15);
        Mobivine::for_webview(Arc::new(WebView::new(p.new_context())))
    });

    println!("event log of the SAME application source on three platforms:");
    println!(
        "{:<28} {:<10} {:<10} {:<10}",
        "event", "android", "s60", "webview"
    );
    for (i, event) in android_log.iter().enumerate() {
        println!(
            "{:<28} {:<10} {:<10} {:<10}",
            event,
            "x",
            if s60_log.get(i) == Some(event) {
                "x"
            } else {
                "DIFF"
            },
            if webview_log.get(i) == Some(event) {
                "x"
            } else {
                "DIFF"
            },
        );
    }
    assert_eq!(android_log, s60_log);
    assert_eq!(android_log, webview_log);
    println!("\nevent logs are identical across platforms");

    println!("\nfor contrast, the native variants (three separate codebases):");
    let sources = variant_sources();
    for v in sources.iter().filter(|v| !v.uses_proxies) {
        println!("  {}: {} loc", v.name, analyze(v.source).loc);
    }
    let android_src = sources.iter().find(|v| v.name == "native-android").unwrap();
    let s60_src = sources.iter().find(|v| v.name == "native-s60").unwrap();
    println!(
        "  shared lines between native android and native s60: {:.0}%",
        similarity(android_src.source, s60_src.source) * 100.0
    );
}
