//! Proxy enrichment (paper §3.3): extra functionality layered on top of
//! the native interface — unit conversion for location output, retry
//! coordination for calls, and a security/policy module — without
//! touching application code or platform bindings.
//!
//! Run with: `cargo run --example enrichment`

use std::sync::Arc;

use mobivine_repro::android::{AndroidPlatform, SdkVersion};
use mobivine_repro::device::call::CalleeProfile;
use mobivine_repro::device::{Device, GeoPoint};
use mobivine_repro::mobivine::enrich::{
    AccessPolicy, PolicySmsProxy, RetryingCallProxy, UnitLocationProxy,
};
use mobivine_repro::mobivine::registry::Mobivine;
use mobivine_repro::mobivine::types::AngleUnit;
use mobivine_repro::mobivine::{CallProxy, LocationProxy, SmsProxy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::builder()
        .msisdn("+91-98-AGENT-7")
        .position(GeoPoint::new(28.5355, 77.3910))
        .build();
    device.gps().set_noise_enabled(false);
    device.smsc().register_address("+91-98-SUPERVISOR");
    device
        .call_switch()
        .set_callee_profile("+91-98-SUPERVISOR", CalleeProfile::Unreachable);
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());

    // 1. Unit conversion: "proxy for fetching location information can
    //    be made to offer output in various formats".
    let in_radians =
        UnitLocationProxy::new(runtime.proxy::<dyn LocationProxy>()?, AngleUnit::Radians);
    let (lat_rad, lon_rad) = in_radians.get_coordinates()?;
    println!("position in radians: ({lat_rad:.6}, {lon_rad:.6})");
    let in_degrees =
        UnitLocationProxy::new(runtime.proxy::<dyn LocationProxy>()?, AngleUnit::Degrees);
    let (lat_deg, lon_deg) = in_degrees.get_coordinates()?;
    println!("position in degrees: ({lat_deg:.4}, {lon_deg:.4})");

    // 2. Call retry coordination: "the utility for coordinating the
    //    number of retries in case the callee is unreachable".
    let retrying = RetryingCallProxy::new(runtime.proxy::<dyn CallProxy>()?, device.clone(), 2)
        .with_settle_ms(5_000);
    let (_id, attempts, connected) = retrying.call_with_retries("+91-98-SUPERVISOR")?;
    println!("supervisor unreachable: {attempts} attempts made, connected={connected}");

    // 3. Security / policy module: "a layer of trust, authentication
    //    and access control".
    let policy = Arc::new(AccessPolicy::new());
    let gated_sms = PolicySmsProxy::new(runtime.proxy::<dyn SmsProxy>()?, Arc::clone(&policy));
    gated_sms.send_text_message("+91-98-SUPERVISOR", "first message", None)?;
    policy.deny("sms");
    let denied = gated_sms.send_text_message("+91-98-SUPERVISOR", "second message", None);
    println!(
        "after policy.deny(\"sms\"): {}",
        denied
            .map(|_| "sent".to_owned())
            .unwrap_or_else(|e| e.to_string())
    );
    println!("policy audit trail: {:?}", policy.audit_log());
    Ok(())
}
