//! A mixed-platform fleet: three field agents on three *different*
//! platforms (Android, S60, WebView) running the *same* proxy-based
//! application against one shared server — the deployment the paper's
//! introduction motivates ("it is desirable to roll out the workforce
//! management solution to multiple platforms").
//!
//! Run with: `cargo run --example fleet`

use std::sync::Arc;

use mobivine_repro::android::{AndroidPlatform, SdkVersion};
use mobivine_repro::apps::logic::AppEvents;
use mobivine_repro::apps::model::{AgentConfig, Task};
use mobivine_repro::apps::proxy_app::ProxyWorkforceApp;
use mobivine_repro::apps::server::WfmServer;
use mobivine_repro::device::movement::MovementModel;
use mobivine_repro::device::{Device, GeoPoint};
use mobivine_repro::mobivine::registry::Mobivine;
use mobivine_repro::s60::S60Platform;
use mobivine_repro::webview::WebView;

const REGION: GeoPoint = GeoPoint {
    latitude: 28.5355,
    longitude: 77.3910,
    altitude: 0.0,
};

fn agent_device(config: &AgentConfig, bearing: f64) -> Device {
    // Each agent approaches their site from a different direction.
    let site = REGION.destination(bearing, 600.0);
    let start = site.destination(bearing, 500.0);
    let device = Device::builder()
        .msisdn(&config.msisdn)
        .position(start)
        .movement(MovementModel::waypoints(
            vec![start, site.destination((bearing + 180.0) % 360.0, 500.0)],
            10.0,
        ))
        .build();
    device.gps().set_noise_enabled(false);
    device.smsc().register_address(&config.supervisor_msisdn);
    device
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One server, shared by the whole fleet (installed on each agent's
    // serving network).
    let server = WfmServer::new();

    let mut worlds = Vec::new();
    for (agent_id, bearing, platform_name) in [
        (1u64, 0.0f64, "android"),
        (2, 120.0, "s60"),
        (3, 240.0, "webview"),
    ] {
        let config = AgentConfig::for_agent(agent_id);
        let device = agent_device(&config, bearing);
        server.install(device.network(), &config.server_host);
        let site = REGION.destination(bearing, 600.0);
        server.assign_task(
            agent_id,
            Task {
                id: agent_id * 10,
                latitude: site.latitude,
                longitude: site.longitude,
                radius_m: 100.0,
                description: format!("site for agent {agent_id}"),
            },
        );

        // The one platform-specific line per agent:
        let runtime = match platform_name {
            "android" => {
                let p = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
                Mobivine::for_android(p.new_context())
            }
            "s60" => Mobivine::for_s60(S60Platform::new(device.clone())),
            _ => {
                let p = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
                Mobivine::for_webview(Arc::new(WebView::new(p.new_context())))
            }
        };
        let events = AppEvents::new();
        let mut app = ProxyWorkforceApp::new(runtime, config.clone(), Arc::clone(&events))?;
        app.start()?;
        println!(
            "agent {agent_id} ({platform_name}): fetched {} task(s)",
            app.tasks().len()
        );
        worlds.push((device, config, events, platform_name, app));
    }

    // Everyone patrols for three virtual minutes.
    for (device, ..) in &worlds {
        device.advance_ms(180_000);
    }

    println!("\nper-agent device-side logs:");
    for (_device, config, events, platform_name, _app) in &worlds {
        println!(
            "  agent {} ({platform_name}): {:?}",
            config.agent_id,
            events.snapshot()
        );
    }

    println!("\nshared server activity log:");
    for entry in server.activity_log() {
        println!("  agent {}: {}", entry.agent_id, entry.event);
    }

    for (_, config, ..) in &worlds {
        assert_eq!(server.completed_tasks(config.agent_id).len(), 1);
    }
    println!("\nall three agents, on three platforms, completed their tasks through one codebase");
    Ok(())
}
