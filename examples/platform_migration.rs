//! The maintenance demonstration (paper §5 Q3): Android 1.0 replaced
//! the `Intent` parameter of `addProximityAlert` with a
//! `PendingIntent`. Application code written against the native m5
//! API stops working; the proxy application is untouched because the
//! Android binding module absorbs the difference.
//!
//! Run with: `cargo run --example platform_migration`

use std::sync::Arc;

use mobivine_repro::android::intent::Intent;
use mobivine_repro::android::pending_intent::PendingIntent;
use mobivine_repro::android::{AndroidPlatform, SdkVersion};
use mobivine_repro::device::Device;
use mobivine_repro::mobivine::registry::Mobivine;
use mobivine_repro::mobivine::types::ProximityEvent;
use mobivine_repro::mobivine::LocationProxy;

fn main() {
    for version in [SdkVersion::M5Rc15, SdkVersion::V1_0] {
        println!("=== Android SDK {version} ===");
        let platform = AndroidPlatform::new(Device::builder().build(), version);
        let ctx = platform.new_context();

        // Native code path, written the m5 way (Fig. 2(a)).
        let native = ctx.location_manager().add_proximity_alert(
            28.5355,
            77.3910,
            100.0,
            -1,
            Intent::new("NATIVE"),
        );
        println!(
            "  native addProximityAlert(Intent):        {}",
            match &native {
                Ok(_) => "ok".to_owned(),
                Err(e) => format!("FAILS — {e}"),
            }
        );

        // Native code path, rewritten the 1.0 way.
        let rewritten = ctx.location_manager().add_proximity_alert_pending(
            28.5355,
            77.3910,
            100.0,
            -1,
            PendingIntent::get_broadcast(Intent::new("NATIVE")),
        );
        println!(
            "  native addProximityAlert(PendingIntent): {}",
            match &rewritten {
                Ok(_) => "ok".to_owned(),
                Err(e) => format!("FAILS — {e}"),
            }
        );

        // Proxy code path — the same source on both SDKs.
        let runtime = Mobivine::for_android(ctx);
        let proxied = runtime.proxy::<dyn LocationProxy>().and_then(|location| {
            location.add_proximity_alert(
                28.5355,
                77.3910,
                0.0,
                100.0,
                -1,
                Arc::new(|_e: &ProximityEvent| {}),
            )
        });
        println!(
            "  proxy addProximityAlert(...):             {}",
            match &proxied {
                Ok(_) => "ok (unchanged application code)".to_owned(),
                Err(e) => format!("FAILS — {e}"),
            }
        );
        println!();
    }
    println!(
        "the proxy absorbs the API evolution inside the binding module:\n\
         applications written against MobiVine survived the m5 -> 1.0 migration unchanged"
    );
}
