//! Quickstart: boot a simulated Android handset, obtain MobiVine
//! proxies, read the location, watch a proximity region and send an
//! SMS — all through the platform-neutral APIs.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use mobivine_repro::android::{AndroidPlatform, SdkVersion};
use mobivine_repro::device::movement::MovementModel;
use mobivine_repro::device::{Device, GeoPoint};
use mobivine_repro::mobivine::registry::Mobivine;
use mobivine_repro::mobivine::types::ProximityEvent;
use mobivine_repro::mobivine::{LocationProxy, SmsProxy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated handset: starts 500 m west of the office and
    //    walks east at 10 m/s.
    let office = GeoPoint::new(28.5355, 77.3910);
    let start = office.destination(270.0, 500.0);
    let device = Device::builder()
        .msisdn("+91-98-AGENT-7")
        .position(start)
        .movement(MovementModel::linear(start, 90.0, 10.0))
        .build();
    device.gps().set_noise_enabled(false);
    device.smsc().register_address("+91-98-SUPERVISOR");

    // 2. Boot Android middleware on it and bind a MobiVine runtime.
    let platform = AndroidPlatform::new(device.clone(), SdkVersion::M5Rc15);
    let runtime = Mobivine::for_android(platform.new_context());

    // 3. Read the current location through the uniform Location proxy.
    let location = runtime.proxy::<dyn LocationProxy>()?;
    let fix = location.get_location()?;
    println!("current position: {fix}");

    // 4. Watch a 100 m region around the office. The same callback
    //    signature works on Android, S60 and WebView.
    location.add_proximity_alert(
        office.latitude,
        office.longitude,
        0.0,
        100.0,
        -1,
        Arc::new(|event: &ProximityEvent| {
            println!(
                "proximity alert: {} the office region at t={} ms",
                if event.entering { "entered" } else { "left" },
                event.current_location.timestamp_ms
            );
        }),
    )?;

    // 5. Send the supervisor a message through the uniform SMS proxy.
    let sms = runtime.proxy::<dyn SmsProxy>()?;
    let message_id = sms.send_text_message("+91-98-SUPERVISOR", "heading to the office", None)?;
    println!("sms submitted: message id {message_id}");

    // 6. Let two virtual minutes elapse: the walk crosses the region.
    device.advance_ms(120_000);
    println!(
        "supervisor inbox: {:?}",
        device
            .smsc()
            .inbox("+91-98-SUPERVISOR")
            .iter()
            .map(|m| m.body.as_str())
            .collect::<Vec<_>>()
    );
    Ok(())
}
