//! The S60 deployment story end to end: the M-Plugin merges the chosen
//! proxies into the single MIDlet-suite jar, the suite is published for
//! Over-The-Air download, and the device fetches, validates and
//! installs it (paper §2's deployment constraints + §4.2's platform-
//! specific extension).
//!
//! Run with: `cargo run --example ota_deploy`

use mobivine_repro::device::Device;
use mobivine_repro::mplugin::packaging::{ProxySelection, S60Extension};
use mobivine_repro::s60::ota::{AppManager, OtaServer};
use mobivine_repro::s60::packaging::{JadDescriptor, Jar};
use mobivine_repro::s60::S60Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application jar as the developer built it.
    let mut app_jar = Jar::new("workforce.jar");
    app_jar.add_entry(
        "com/acme/WorkForceManagement.class",
        b"app bytecode".to_vec(),
    )?;
    app_jar.add_entry("META-INF/MANIFEST.MF", b"Manifest-Version: 1.0".to_vec())?;
    println!(
        "application jar: {} entries, {} bytes",
        app_jar.len(),
        app_jar.byte_size()
    );

    // 2. The M-Plugin's S60 extension merges the selected proxies and
    //    derives the descriptor (single-jar rule, size re-computed).
    let mut jad = JadDescriptor::for_jar(&app_jar, "WorkForce", "ACME Field Ops", "1.0.0");
    jad.jar_url = "http://ota.example/workforce.jar".to_owned();
    jad.permissions = vec![
        "javax.microedition.location.Location".to_owned(),
        "javax.wireless.messaging.sms.send".to_owned(),
        "javax.microedition.io.Connector.http".to_owned(),
    ];
    let suite = S60Extension::package(
        app_jar,
        jad,
        &ProxySelection::new(&["Location", "SMS", "Http"]),
    )?;
    println!(
        "packaged suite: {} entries, {} bytes (proxy jars merged)",
        suite.jar.len(),
        suite.jar.byte_size()
    );
    println!("\ndescriptor (JAD):\n{}", suite.jad.render());

    // 3. Publish over-the-air on the simulated network.
    let device = Device::builder().build();
    let jad_url = OtaServer::publish(device.network(), "ota.example", &suite);
    println!("published at {jad_url}");

    // 4. Device-side install: fetch JAD -> fetch jar -> validate ->
    //    record.
    let platform = S60Platform::new(device);
    let manager = AppManager::new();
    let name = manager.install_from_url(&platform, &jad_url)?;
    println!("\ninstalled '{name}': {:?}", manager.installed());
    let installed = manager.suite(&name).expect("just installed");
    println!("suite contents:");
    for path in installed.jar.entry_paths() {
        println!("  {path}");
    }
    Ok(())
}
